//! **Ablation (DESIGN.md §7.2)** — optimal band allocation vs the two §2.3
//! strawmen: *equal share* and *base-layer-only* buffer distributions.
//!
//! For a sweep of draining scenarios (same total buffering, different
//! splits), simulate the draining phase and measure: could the
//! distribution deliver the deficit (no forced drop), and how many layers
//! survive? The optimal banding should dominate both strawmen, reproducing
//! the failure modes the paper describes in prose.

use laqa_bench::outdir;
use laqa_core::draining::plan_draining;
use laqa_core::geometry::band_allocation;
use laqa_core::StateSequence;
use laqa_trace::{RunSummary, Table};

/// Simulate a complete draining phase (rate recovering at slope `s`) with
/// per-period planning against `bufs`; returns the number of periods that
/// had an uncovered shortfall.
fn shortfall_periods(
    seq: &StateSequence,
    mut bufs: Vec<f64>,
    mut rate: f64,
    n: usize,
    c: f64,
    s: f64,
) -> usize {
    let dt = 0.05;
    let mut bad = 0;
    while rate < n as f64 * c {
        let plan = plan_draining(seq, &bufs, rate, dt, 1.0);
        if plan.shortfall > 1.0 {
            bad += 1;
        }
        for (buf, drain) in bufs.iter_mut().zip(&plan.drain) {
            *buf = (*buf - drain).max(0.0);
        }
        rate += s * dt;
    }
    bad
}

fn main() {
    let c = 10_000.0;
    let s = 12_500.0;
    let mut tbl = Table::new(
        "Ablation: buffer distribution vs draining success",
        &["n_a", "R", "total buf", "optimal", "equal", "base-only"],
    );
    let dir = outdir("ablation_allocation");
    let mut opt_wins = 0;
    let mut cases = 0;

    for n in [3usize, 4, 5] {
        for rate_mult in [1.2f64, 1.5, 1.9] {
            let rate = rate_mult * n as f64 * c;
            let post = rate / 2.0;
            let deficit = (n as f64 * c - post).max(0.0);
            if deficit <= 0.0 {
                continue;
            }
            let optimal = band_allocation(deficit, c, s, n);
            let total: f64 = optimal.iter().sum();
            let equal = vec![total / n as f64; n];
            let mut base_only = vec![0.0; n];
            base_only[0] = total;
            let seq = StateSequence::build(rate, n, c, s, 1);

            let r_opt = shortfall_periods(&seq, optimal, post, n, c, s);
            let r_eq = shortfall_periods(&seq, equal, post, n, c, s);
            let r_base = shortfall_periods(&seq, base_only, post, n, c, s);
            cases += 1;
            if r_opt <= r_eq && r_opt <= r_base {
                opt_wins += 1;
            }
            tbl.row(vec![
                n.to_string(),
                format!("{rate:.0}"),
                format!("{total:.0}"),
                format!("{r_opt} bad periods"),
                format!("{r_eq} bad periods"),
                format!("{r_base} bad periods"),
            ]);
        }
    }

    println!("{}", tbl.render());
    println!("optimal allocation never loses: {opt_wins}/{cases} cases");
    println!("expected shape: the optimal banding always covers the draining");
    println!("phase; base-only fails whenever the deficit spans >1 layer's");
    println!("drain-rate cap (§2.3's 'insufficient distribution' example).");

    let mut summary = RunSummary::new("ablation_allocation");
    summary
        .metric("cases", cases as f64)
        .metric("optimal_wins", opt_wins as f64);
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());
}
