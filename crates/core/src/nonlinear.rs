//! Non-linear layer spacing — the paper's §7 future work ("quality
//! adaptation with a non-linear distribution of bandwidth among layers"),
//! worked out.
//!
//! The §2 analysis assumes every layer consumes the same rate `C`. Real
//! hierarchical codecs often space layers exponentially (each enhancement
//! doubling the rate). The deficit-triangle geometry generalizes cleanly:
//! stack the layers with the base at the bottom — layer `i` occupies the
//! bandwidth band `[H_i, H_i + c_i)` where `H_i = Σ_{j<i} c_j` — and serve
//! the top of the stack from the network, the bottom `d(t)` from buffers.
//! Layer `i` then drains at `clamp(d(t) − H_i, 0, c_i)` and its optimal
//! buffer share is the area of its (now unequal-height) band of the
//! triangle.
//!
//! Everything below reduces exactly to the linear-case functions of
//! [`crate::geometry`]/[`crate::scenario`] when all rates are equal
//! (cross-checked by tests and property tests).

use crate::scenario::Scenario;

/// A heterogeneous layer stack (bytes/s per layer, base first).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerRates {
    rates: Vec<f64>,
    /// Cumulative heights: `heights[i] = Σ_{j<i} rates[j]`, plus the total
    /// as the final element.
    heights: Vec<f64>,
}

impl LayerRates {
    /// Build from per-layer rates; every rate must be finite and positive.
    pub fn new(rates: Vec<f64>) -> Option<Self> {
        if rates.is_empty() || rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
            return None;
        }
        let mut heights = Vec::with_capacity(rates.len() + 1);
        let mut acc = 0.0;
        for &r in &rates {
            heights.push(acc);
            acc += r;
        }
        heights.push(acc);
        Some(LayerRates { rates, heights })
    }

    /// Uniform stack (the paper's linear spacing).
    pub fn linear(n: usize, c: f64) -> Option<Self> {
        Self::new(vec![c; n])
    }

    /// Exponential stack: layer `i` consumes `base · factor^i`.
    pub fn exponential(n: usize, base: f64, factor: f64) -> Option<Self> {
        Self::new((0..n).map(|i| base * factor.powi(i as i32)).collect())
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when there are no layers (cannot happen for a constructed
    /// value; kept for clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Per-layer rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Rate of layer `i`.
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Height of the bottom of layer `i`'s band (`Σ_{j<i} c_j`).
    pub fn height(&self, i: usize) -> f64 {
        self.heights[i]
    }

    /// Aggregate consumption of the lowest `n` layers.
    pub fn consumption(&self, n: usize) -> f64 {
        self.heights[n.min(self.rates.len())]
    }

    /// Aggregate consumption of the full stack.
    pub fn total(&self) -> f64 {
        *self.heights.last().unwrap()
    }
}

/// Area of layer `i`'s band of a deficit triangle with initial deficit
/// `d0` and recovery slope `slope`:
/// `(1/S) · ∫₀^{d0} clamp(x − H_i, 0, c_i) dx`.
pub fn nl_band_area(rates: &LayerRates, i: usize, d0: f64, slope: f64) -> f64 {
    debug_assert!(slope > 0.0);
    if d0 <= 0.0 {
        return 0.0;
    }
    let lo = rates.height(i);
    let hi = lo + rates.rate(i);
    let c = rates.rate(i);
    if d0 <= lo {
        return 0.0;
    }
    let area_x = if d0 >= hi {
        // Full wedge c²/2 plus the rectangle above the band.
        c * c / 2.0 + (d0 - hi) * c
    } else {
        let h = d0 - lo;
        h * h / 2.0
    };
    area_x / slope
}

/// Optimal per-layer buffer shares for the `n` lowest layers against a
/// deficit `d0` (generalizes [`crate::geometry::band_allocation`]). Any
/// part of the triangle above the covered stack is folded into the base
/// layer so total protection is preserved.
pub fn nl_band_allocation(rates: &LayerRates, n: usize, d0: f64, slope: f64) -> Vec<f64> {
    let n = n.min(rates.len());
    let mut shares: Vec<f64> = (0..n).map(|i| nl_band_area(rates, i, d0, slope)).collect();
    if n > 0 && d0 > rates.consumption(n) {
        let covered: f64 = shares.iter().sum();
        let total = d0 * d0 / (2.0 * slope);
        let missing = total - covered;
        if missing > 0.0 {
            shares[0] += missing;
        }
    }
    shares
}

/// Instantaneous per-layer drain rates at deficit `d` (generalizes
/// [`crate::geometry::band_drain_rates`]).
pub fn nl_band_drain_rates(rates: &LayerRates, n: usize, d: f64) -> Vec<f64> {
    let n = n.min(rates.len());
    (0..n)
        .map(|i| (d - rates.height(i)).clamp(0.0, rates.rate(i)))
        .collect()
}

/// Smallest number of backoffs `k₁ ≥ 1` bringing `rate` strictly below the
/// consumption of the `n` lowest layers.
pub fn nl_min_backoffs_below(rates: &LayerRates, n: usize, rate: f64) -> u32 {
    let consumption = rates.consumption(n);
    debug_assert!(consumption > 0.0);
    let mut k = 1u32;
    let mut r = rate / 2.0;
    while r >= consumption && k < 64 {
        r /= 2.0;
        k += 1;
    }
    k
}

/// Total buffering to survive `k` backoffs in `scenario` with the `n`
/// lowest layers active (generalizes [`crate::scenario::buf_total`]).
pub fn nl_buf_total(
    rates: &LayerRates,
    n: usize,
    scenario: Scenario,
    k: u32,
    rate: f64,
    slope: f64,
) -> f64 {
    let consumption = rates.consumption(n);
    if consumption <= 0.0 || k == 0 {
        return 0.0;
    }
    let k1 = nl_min_backoffs_below(rates, n, rate);
    if k < k1 {
        return 0.0;
    }
    let tri = |d: f64| if d > 0.0 { d * d / (2.0 * slope) } else { 0.0 };
    match scenario {
        Scenario::One => tri(consumption - rate / 2f64.powi(k as i32)),
        Scenario::Two => {
            let first = tri(consumption - rate / 2f64.powi(k1 as i32));
            first + (k - k1) as f64 * tri(consumption / 2.0)
        }
    }
}

/// Per-layer optimal targets to survive `k` backoffs in `scenario`
/// (generalizes [`crate::scenario::per_layer`]). Sums to
/// [`nl_buf_total`].
pub fn nl_per_layer(
    rates: &LayerRates,
    n: usize,
    scenario: Scenario,
    k: u32,
    rate: f64,
    slope: f64,
) -> Vec<f64> {
    let n = n.min(rates.len());
    if n == 0 {
        return Vec::new();
    }
    let consumption = rates.consumption(n);
    if consumption <= 0.0 || k == 0 {
        return vec![0.0; n];
    }
    let k1 = nl_min_backoffs_below(rates, n, rate);
    if k < k1 {
        return vec![0.0; n];
    }
    match scenario {
        Scenario::One => {
            let d0 = (consumption - rate / 2f64.powi(k as i32)).max(0.0);
            nl_band_allocation(rates, n, d0, slope)
        }
        Scenario::Two => {
            let d_first = (consumption - rate / 2f64.powi(k1 as i32)).max(0.0);
            let mut shares = nl_band_allocation(rates, n, d_first, slope);
            if k > k1 {
                let rec = nl_band_allocation(rates, n, consumption / 2.0, slope);
                let mult = (k - k1) as f64;
                for (s, r) in shares.iter_mut().zip(rec) {
                    *s += mult * r;
                }
            }
            shares
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{band_allocation, band_drain_rates, deficit, triangle_area};
    use crate::scenario::{buf_total, min_backoffs_below, per_layer};

    const C: f64 = 10_000.0;
    const S: f64 = 12_500.0;

    fn linear(n: usize) -> LayerRates {
        LayerRates::linear(n, C).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(LayerRates::new(vec![]).is_none());
        assert!(LayerRates::new(vec![1.0, -1.0]).is_none());
        assert!(LayerRates::new(vec![1.0, f64::NAN]).is_none());
        let r = LayerRates::exponential(3, 4_000.0, 2.0).unwrap();
        assert_eq!(r.rates(), &[4_000.0, 8_000.0, 16_000.0]);
        assert_eq!(r.total(), 28_000.0);
        assert_eq!(r.height(2), 12_000.0);
        assert!(!r.is_empty());
    }

    #[test]
    fn reduces_to_linear_band_allocation() {
        let r = linear(5);
        for &d0 in &[3_000.0, 10_000.0, 27_500.0, 48_000.0] {
            let nl = nl_band_allocation(&r, 5, d0, S);
            let lin = band_allocation(d0, C, S, 5);
            for (a, b) in nl.iter().zip(lin.iter()) {
                assert!((a - b).abs() < 1e-6, "d0={d0}: {nl:?} vs {lin:?}");
            }
        }
    }

    #[test]
    fn reduces_to_linear_drain_rates() {
        let r = linear(4);
        for &d in &[0.0, 5_000.0, 23_000.0, 100_000.0] {
            let nl = nl_band_drain_rates(&r, 4, d);
            let lin = band_drain_rates(d, C, 4);
            assert_eq!(nl, lin, "d={d}");
        }
    }

    #[test]
    fn reduces_to_linear_scenarios() {
        let r = linear(3);
        for k in 1..=5u32 {
            for &scenario in &Scenario::ALL {
                let nl = nl_buf_total(&r, 3, scenario, k, 40_000.0, S);
                let lin = buf_total(scenario, k, 40_000.0, 3, C, S);
                assert!((nl - lin).abs() < 1e-6, "{scenario} k={k}");
                let nlp = nl_per_layer(&r, 3, scenario, k, 40_000.0, S);
                let linp = per_layer(scenario, k, 40_000.0, 3, C, S);
                for (a, b) in nlp.iter().zip(linp.iter()) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        }
        assert_eq!(
            nl_min_backoffs_below(&r, 3, 130_000.0),
            min_backoffs_below(130_000.0, 30_000.0)
        );
    }

    #[test]
    fn exponential_bands_tile_triangle() {
        let r = LayerRates::exponential(4, 2_000.0, 2.0).unwrap(); // 2,4,8,16 K
        let total = r.total(); // 30 KB/s
        for &d0 in &[1_500.0, 6_000.0, 14_000.0, total] {
            let shares = nl_band_allocation(&r, 4, d0, S);
            let sum: f64 = shares.iter().sum();
            let area = triangle_area(deficit(d0, 0.0), S);
            assert!((sum - area).abs() < 1e-6 * area.max(1.0), "d0={d0}");
        }
    }

    #[test]
    fn exponential_band_matches_numeric_integral() {
        let r = LayerRates::exponential(4, 2_000.0, 2.0).unwrap();
        let d0 = 11_000.0;
        let t_end = d0 / S;
        let steps = 100_000;
        let dt = t_end / steps as f64;
        for i in 0..4 {
            let mut acc = 0.0;
            for k in 0..steps {
                let t = (k as f64 + 0.5) * dt;
                let d = d0 - S * t;
                acc += (d - r.height(i)).clamp(0.0, r.rate(i)) * dt;
            }
            let closed = nl_band_area(&r, i, d0, S);
            assert!((acc - closed).abs() < 1.0, "layer {i}: {acc} vs {closed}");
        }
    }

    #[test]
    fn base_layer_protected_most_in_time_terms() {
        // With exponential spacing the *byte* shares are no longer
        // monotone, but the base layer still drains for the longest time:
        // its share divided by its rate (seconds of protection) dominates.
        let r = LayerRates::exponential(4, 2_000.0, 2.0).unwrap();
        let d0 = 20_000.0;
        let shares = nl_band_allocation(&r, 4, d0, S);
        let secs: Vec<f64> = shares.iter().zip(r.rates()).map(|(s, c)| s / c).collect();
        for w in secs.windows(2) {
            assert!(
                w[0] + 1e-9 >= w[1],
                "protection seconds must decrease: {secs:?}"
            );
        }
    }

    #[test]
    fn drain_rates_cover_deficit_up_to_stack() {
        let r = LayerRates::exponential(3, 3_000.0, 2.0).unwrap(); // 3,6,12 K
        for &d in &[2_000.0, 8_000.0, 25_000.0] {
            let rates = nl_band_drain_rates(&r, 3, d);
            let sum: f64 = rates.iter().sum();
            assert!((sum - d.min(r.total())).abs() < 1e-9, "d={d}: {rates:?}");
        }
    }

    #[test]
    fn excess_deficit_folds_into_base() {
        let r = LayerRates::exponential(2, 3_000.0, 2.0).unwrap(); // 3,6 K
        let d0 = 15_000.0; // above the 9 K stack
        let shares = nl_band_allocation(&r, 2, d0, S);
        let sum: f64 = shares.iter().sum();
        let area = d0 * d0 / (2.0 * S);
        assert!((sum - area).abs() < 1e-6 * area);
    }

    #[test]
    fn per_layer_sums_to_total_exponential() {
        let r = LayerRates::exponential(5, 1_500.0, 1.7).unwrap();
        for &scenario in &Scenario::ALL {
            for k in 1..=6u32 {
                for n in 1..=5usize {
                    let shares = nl_per_layer(&r, n, scenario, k, 30_000.0, S);
                    let sum: f64 = shares.iter().sum();
                    let total = nl_buf_total(&r, n, scenario, k, 30_000.0, S);
                    assert!(
                        (sum - total).abs() < 1e-6 * total.max(1.0),
                        "{scenario} k={k} n={n}: {sum} vs {total}"
                    );
                }
            }
        }
    }
}
