//! Evaluation metrics and event log (§5: Tables 1 and 2, figure 12).
//!
//! The paper scores the mechanism on:
//!
//! * **Buffering efficiency** (Table 1): on every drop event,
//!   `e = (buf_total − buf_drop) / buf_total` — the fraction of the
//!   receiver's buffered data that remains useful after the drop. A
//!   maximally efficient allocation strands (almost) no data in dropped
//!   layers, so `e ≈ 1`.
//! * **Drops due to poor distribution** (Table 2): the percentage of drop
//!   events where the *total* buffering would have sufficed for recovery
//!   had it been distributed differently across layers.
//! * **Quality changes** (figure 12): the number of add + drop events, the
//!   quantity the smoothing factor `K_max` trades against short-term
//!   quality.


/// Why a layer was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DropReason {
    /// §2.2 rule: total buffering below the recovery deficit at backoff.
    InsufficientTotalBuffer,
    /// A draining period could not be covered even though draining was
    /// planned — the §2.3 "insufficient distribution" failure, or a
    /// critical situation from extra backoffs / slope misestimation.
    DistributionShortfall,
    /// A layer's own buffer ran dry while its allocated bandwidth was below
    /// its consumption rate (receiver-side underflow).
    Underflow,
}

impl DropReason {
    /// Stable snake_case label used in observability exports and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::InsufficientTotalBuffer => "insufficient_total_buffer",
            DropReason::DistributionShortfall => "distribution_shortfall",
            DropReason::Underflow => "underflow",
        }
    }
}

/// One quality-adaptation event.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QaEvent {
    /// A layer was added; `n_active` is the count *after* the add.
    LayerAdded {
        /// Event time (seconds).
        time: f64,
        /// Active layer count after the add.
        n_active: usize,
    },
    /// A layer was dropped; `n_active` is the count *after* the drop.
    LayerDropped {
        /// Event time (seconds).
        time: f64,
        /// Index of the dropped layer (== `n_active` after the drop).
        layer: usize,
        /// Active layer count after the drop.
        n_active: usize,
        /// Total buffered bytes across all layers at drop time (including
        /// the dropped layer's share).
        buf_total: f64,
        /// Buffered bytes stranded in the dropped layer.
        buf_drop: f64,
        /// Recovery buffering the §2.2 rule required at that instant.
        required: f64,
        /// Why the layer was dropped.
        reason: DropReason,
    },
    /// The base layer's buffer ran dry during a deficit: playback stalled.
    BaseStall {
        /// Event time (seconds).
        time: f64,
    },
}

/// Accumulates [`QaEvent`]s and derives the paper's evaluation metrics.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetricsCollector {
    events: Vec<QaEvent>,
}

impl MetricsCollector {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event.
    pub fn record(&mut self, event: QaEvent) {
        self.events.push(event);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[QaEvent] {
        &self.events
    }

    /// Drain the event log (used by streaming exporters).
    pub fn take_events(&mut self) -> Vec<QaEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of layer-add events.
    pub fn adds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, QaEvent::LayerAdded { .. }))
            .count()
    }

    /// Number of layer-drop events.
    pub fn drops(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, QaEvent::LayerDropped { .. }))
            .count()
    }

    /// Total quality changes (adds + drops) — the figure-12 smoothness
    /// measure.
    pub fn quality_changes(&self) -> usize {
        self.adds() + self.drops()
    }

    /// Number of base-layer stalls (must be zero in a healthy run).
    pub fn stalls(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, QaEvent::BaseStall { .. }))
            .count()
    }

    /// Table-1 buffering efficiency: mean of `(buf_total − buf_drop) /
    /// buf_total` over all drop events with `buf_total > 0`. `None` when no
    /// such drop occurred (a run with no drops is trivially efficient).
    pub fn efficiency(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for e in &self.events {
            if let QaEvent::LayerDropped {
                buf_total,
                buf_drop,
                ..
            } = e
            {
                if *buf_total > 0.0 {
                    sum += (buf_total - buf_drop) / buf_total;
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Table-2 metric: fraction of drop events that a different distribution
    /// of the same total buffering would have avoided — drops whose recorded
    /// total buffering met the §2.2 requirement yet the layer was dropped
    /// anyway (distribution shortfall / underflow). `None` when there were
    /// no drops at all.
    pub fn avoidable_drop_fraction(&self) -> Option<f64> {
        let mut avoidable = 0usize;
        let mut total = 0usize;
        for e in &self.events {
            if let QaEvent::LayerDropped {
                buf_total,
                required,
                reason,
                ..
            } = e
            {
                total += 1;
                let had_enough_total = buf_total >= required;
                if had_enough_total
                    && matches!(
                        reason,
                        DropReason::DistributionShortfall | DropReason::Underflow
                    )
                {
                    avoidable += 1;
                }
            }
        }
        (total > 0).then(|| avoidable as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_event(buf_total: f64, buf_drop: f64, required: f64, reason: DropReason) -> QaEvent {
        QaEvent::LayerDropped {
            time: 1.0,
            layer: 2,
            n_active: 2,
            buf_total,
            buf_drop,
            required,
            reason,
        }
    }

    #[test]
    fn efficiency_none_without_drops() {
        let m = MetricsCollector::new();
        assert_eq!(m.efficiency(), None);
    }

    #[test]
    fn efficiency_averages_over_drop_events() {
        let mut m = MetricsCollector::new();
        m.record(drop_event(
            1000.0,
            0.0,
            2000.0,
            DropReason::InsufficientTotalBuffer,
        ));
        m.record(drop_event(
            1000.0,
            100.0,
            2000.0,
            DropReason::InsufficientTotalBuffer,
        ));
        let e = m.efficiency().unwrap();
        assert!((e - 0.95).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn efficiency_ignores_zero_total_drops() {
        let mut m = MetricsCollector::new();
        m.record(drop_event(
            0.0,
            0.0,
            500.0,
            DropReason::InsufficientTotalBuffer,
        ));
        assert_eq!(m.efficiency(), None);
    }

    #[test]
    fn quality_changes_counts_adds_and_drops() {
        let mut m = MetricsCollector::new();
        m.record(QaEvent::LayerAdded {
            time: 0.5,
            n_active: 2,
        });
        m.record(QaEvent::LayerAdded {
            time: 1.5,
            n_active: 3,
        });
        m.record(drop_event(
            10.0,
            0.0,
            50.0,
            DropReason::InsufficientTotalBuffer,
        ));
        assert_eq!(m.adds(), 2);
        assert_eq!(m.drops(), 1);
        assert_eq!(m.quality_changes(), 3);
    }

    #[test]
    fn avoidable_fraction_classifies_by_reason_and_required() {
        let mut m = MetricsCollector::new();
        // Unavoidable: total below requirement.
        m.record(drop_event(
            100.0,
            0.0,
            500.0,
            DropReason::InsufficientTotalBuffer,
        ));
        // Avoidable: total met the requirement but distribution failed.
        m.record(drop_event(
            1000.0,
            50.0,
            500.0,
            DropReason::DistributionShortfall,
        ));
        // Not avoidable even though shortfall: total genuinely short.
        m.record(drop_event(
            100.0,
            0.0,
            500.0,
            DropReason::DistributionShortfall,
        ));
        // Underflow with sufficient total: avoidable.
        m.record(drop_event(800.0, 10.0, 500.0, DropReason::Underflow));
        let f = m.avoidable_drop_fraction().unwrap();
        assert!((f - 0.5).abs() < 1e-12, "f = {f}");
    }

    #[test]
    fn avoidable_fraction_none_without_drops() {
        let mut m = MetricsCollector::new();
        m.record(QaEvent::LayerAdded {
            time: 0.0,
            n_active: 2,
        });
        assert_eq!(m.avoidable_drop_fraction(), None);
    }

    #[test]
    fn stalls_counted() {
        let mut m = MetricsCollector::new();
        m.record(QaEvent::BaseStall { time: 3.0 });
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn take_events_drains_log() {
        let mut m = MetricsCollector::new();
        m.record(QaEvent::BaseStall { time: 3.0 });
        assert_eq!(m.take_events().len(), 1);
        assert!(m.events().is_empty());
    }
}
