//! A slab arena: stable `u32` handles into a growable vector with an
//! intrusive free list.
//!
//! The event engine allocates one record per scheduled event (a timer, a
//! packet arrival, a link-done marker). Pushing those records through a
//! global `BinaryHeap` both heap-allocates on growth and moves the full
//! record on every sift; the timer-wheel scheduler instead parks each
//! record here once and circulates only `(time_ns, seq, slot)` keys.
//! Freed slots are recycled in LIFO order, so a steady-state simulation
//! reaches a fixed footprint and stops allocating entirely.
//!
//! Determinism: slot assignment depends only on the sequence of
//! `insert`/`remove` calls, never on addresses or hashing.

/// A slab of `T` records addressed by stable `u32` handles.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the free list (`NO_SLOT` when empty).
    free_head: u32,
    live: usize,
}

#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    /// Free slot, pointing at the next free slot (`NO_SLOT` ends the list).
    Free(u32),
}

/// Sentinel for "no slot" in the free list.
const NO_SLOT: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// New empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: NO_SLOT,
            live: 0,
        }
    }

    /// New slab with room for `cap` records before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free_head: NO_SLOT,
            live: 0,
        }
    }

    /// Grow the backing vector so `additional` more records fit without
    /// reallocating (free-list slots count toward the headroom). The
    /// megasession engine pre-sizes its shared event arena this way before
    /// absorbing a batch of sessions.
    pub fn reserve(&mut self, additional: usize) {
        let free = self.entries.len() - self.live;
        self.entries.reserve(additional.saturating_sub(free));
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Store `item`, returning its handle. Recycles a freed slot when one
    /// exists; grows the backing vector otherwise.
    #[inline]
    pub fn insert(&mut self, item: T) -> u32 {
        self.live += 1;
        if self.free_head != NO_SLOT {
            let idx = self.free_head;
            match self.entries[idx as usize] {
                Entry::Free(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.entries[idx as usize] = Entry::Occupied(item);
            idx
        } else {
            assert!(
                self.entries.len() < NO_SLOT as usize,
                "slab exhausted u32 handle space"
            );
            self.entries.push(Entry::Occupied(item));
            (self.entries.len() - 1) as u32
        }
    }

    /// Borrow the record at `idx`, if live.
    #[inline]
    pub fn get(&self, idx: u32) -> Option<&T> {
        match self.entries.get(idx as usize) {
            Some(Entry::Occupied(item)) => Some(item),
            _ => None,
        }
    }

    /// Mutably borrow the record at `idx`, if live.
    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut T> {
        match self.entries.get_mut(idx as usize) {
            Some(Entry::Occupied(item)) => Some(item),
            _ => None,
        }
    }

    /// Remove and return the record at `idx`, if live. The slot goes to
    /// the head of the free list for reuse.
    #[inline]
    pub fn remove(&mut self, idx: u32) -> Option<T> {
        match self.entries.get_mut(idx as usize) {
            Some(entry @ Entry::Occupied(_)) => {
                let taken = std::mem::replace(entry, Entry::Free(self.free_head));
                self.free_head = idx;
                self.live -= 1;
                match taken {
                    Entry::Occupied(item) => Some(item),
                    Entry::Free(_) => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Drop every record and reset to the empty state, keeping the backing
    /// allocation for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free_head = NO_SLOT;
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None, "double remove is a no-op");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // LIFO: b's slot first, then a's — and no vector growth.
        assert_eq!(s.insert(3), b);
        assert_eq!(s.insert(4), a);
        assert_eq!(s.entries.len(), 2);
    }

    #[test]
    fn steady_state_stops_growing() {
        let mut s = Slab::new();
        let mut handles = Vec::new();
        for i in 0..64 {
            handles.push(s.insert(i));
        }
        let footprint = s.entries.len();
        for _ in 0..1000 {
            let h = handles.remove(0);
            s.remove(h);
            handles.push(s.insert(0));
        }
        assert_eq!(s.entries.len(), footprint, "churn must not grow the slab");
    }

    #[test]
    fn clear_resets() {
        let mut s = Slab::new();
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);
        let h = s.insert(9);
        assert_eq!(s.get(h), Some(&9));
    }
}
