//! Warm-pool correctness for trace-driven (TraceLink) cells.
//!
//! A recycled link shell must start the next session with no stale
//! schedule and no mid-trace cursor — [`laqa_sim::Link::reset`] discards
//! the [`laqa_sim::LinkTraceState`] when `World::add_link` hands the
//! shell out again. If it didn't, a hostile cell retired into the pool
//! could bleed its half-replayed schedule into whichever session reuses
//! the shell next. This suite pins both layers of that contract:
//!
//! - engine-level: after salvage + rebuild, the recycled link carries no
//!   trace state until the new session attaches one;
//! - campaign-level: warm, cold, and mega executors produce
//!   fingerprint-identical results on a mixed traced/untraced grid, in
//!   both interleavings (traced-then-steady and steady-then-traced).

use laqa_sim::{
    run_campaign_opts, run_session_pooled, run_session_with, CampaignOptions, CampaignSpec,
    LinkConfig, SchedulerKind, SessionSpec, TestKind, TraceKind, TraceSchedule, Transport, World,
    WorldPool,
};

fn spec(seed: u64, trace: Option<TraceKind>) -> SessionSpec {
    SessionSpec {
        test: TestKind::T1,
        k_max: 2,
        seed,
        duration: 6.0,
        fault_intensity: None,
        transport: Transport::Rap,
        trace,
    }
}

#[test]
fn recycled_link_shells_carry_no_trace_state() {
    let mut w = World::new(7);
    let link = w.add_link(LinkConfig::default());
    w.set_link_trace(link, TraceSchedule::lte(7, 100_000.0, 10.0));
    assert!(w.link_trace(link).is_some());

    // Rebuild from the salvage, exactly like a warm campaign worker.
    let salvage = w.salvage();
    let mut w = World::with_salvage(21, SchedulerKind::Wheel, salvage);
    let link = w.add_link(LinkConfig::default());
    assert!(
        w.link_trace(link).is_none(),
        "Link::reset must discard the previous session's schedule and cursor"
    );
}

#[test]
fn traced_sessions_replay_identically_through_a_warm_pool() {
    let traced = spec(11, Some(TraceKind::Lte));
    let steady = spec(11, None);
    let mut pool = WorldPool::new();

    // Interleave traced and steady sessions through ONE pool so every
    // session after the first runs on recycled shells from the other
    // kind, then compare each against its cold standalone twin.
    let warm: Vec<u64> = [&traced, &steady, &traced, &steady, &traced]
        .iter()
        .map(|s| run_session_pooled(s, SchedulerKind::Wheel, &mut pool).trace_hash)
        .collect();
    let cold_traced = run_session_with(&traced, SchedulerKind::Wheel).trace_hash;
    let cold_steady = run_session_with(&steady, SchedulerKind::Wheel).trace_hash;
    assert_eq!(
        warm,
        vec![cold_traced, cold_steady, cold_traced, cold_steady, cold_traced],
        "warm-pool reuse must be invisible to traced and steady cells alike"
    );
}

#[test]
fn hostile_campaign_fingerprints_agree_warm_cold_and_mega() {
    // Mixed grid: every trace family plus an untraced control, same seed,
    // so executor shells get recycled across cell kinds.
    let mut sessions = vec![spec(11, None)];
    sessions.extend(TraceKind::ALL.iter().map(|&t| spec(11, Some(t))));
    let grid = CampaignSpec { sessions };

    let warm = run_campaign_opts(&grid, CampaignOptions::new(1));
    let cold = run_campaign_opts(&grid, CampaignOptions::new(1).cold());
    let mega = run_campaign_opts(&grid, CampaignOptions::new(1).mega());
    assert_eq!(
        warm.fingerprint(),
        cold.fingerprint(),
        "warm pools must not perturb hostile cells"
    );
    assert_eq!(
        warm.fingerprint(),
        mega.fingerprint(),
        "mega executor must not perturb hostile cells"
    );
}
