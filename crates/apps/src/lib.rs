//! # laqa-apps
//!
//! Host crate for the workspace's top-level `examples/` (runnable binaries
//! exercising the public API) and `tests/` (integration tests spanning
//! crates). It has no library code of its own — see the examples:
//!
//! * `quickstart` — drive a [`laqa_core::QaController`] by hand;
//! * `streaming_session` — real tokio/UDP streaming through the loopback
//!   bottleneck shaper;
//! * `congested_backbone` — the paper's T1 workload in the simulator;
//! * `smoothing_tradeoff` — sweep the smoothing factor `K_max`.
//!
//! Run one with `cargo run -p laqa-apps --example quickstart`.

#![warn(missing_docs)]
#![deny(unsafe_code)]
