//! **Figures 8–10** — Scenario-1/2 buffer states for k = 1..5, their
//! ordering by total buffering, and the monotone (figure 10) step
//! sequence actually traversed during filling.
//!
//! The paper's figures are bar diagrams of per-layer shares; we print the
//! same data as tables: one row per state, one column per layer, in raw
//! form (fig. 8), sorted (fig. 9) and clamped (fig. 10) — including the
//! paper's observation that a naive sort would require *draining* a layer
//! between consecutive states.

use laqa_bench::outdir;
use laqa_core::StateSequence;
use laqa_trace::{RunSummary, Table};

fn main() {
    let c = 10_000.0;
    let s = 12_500.0;
    let n_a = 5;
    let rate = 60_000.0;
    let k_max = 5;

    let seq = StateSequence::build(rate, n_a, c, s, k_max);
    println!("== Figures 8-10: buffer states (n_a={n_a}, C={c:.0}, S={s:.0}, R={rate:.0}) ==");
    println!(
        "k1 = {} backoffs needed to drop below consumption\n",
        seq.k1
    );

    let headers = ["state", "k", "total", "L0", "L1", "L2", "L3", "L4"];
    let mut raw_tbl = Table::new("Figure 9: states sorted by raw total", &headers);
    for st in &seq.states {
        let mut row = vec![
            format!("{}", st.scenario),
            format!("{}", st.k),
            format!("{:.0}", st.raw_total()),
        ];
        for i in 0..n_a {
            row.push(format!("{:.0}", st.raw_per_layer[i]));
        }
        raw_tbl.row(row);
    }
    println!("{}", raw_tbl.render());

    // Detect the fig-9 phenomenon: raw per-layer decreases along the sort.
    let mut violations = 0;
    for w in seq.states.windows(2) {
        for i in 0..n_a {
            if w[1].raw_per_layer[i] < w[0].raw_per_layer[i] - 1e-6 {
                println!(
                    "naive order would DRAIN L{i}: {}k{} {:.0} -> {}k{} {:.0}",
                    w[0].scenario,
                    w[0].k,
                    w[0].raw_per_layer[i],
                    w[1].scenario,
                    w[1].k,
                    w[1].raw_per_layer[i]
                );
                violations += 1;
            }
        }
    }
    println!();

    let mut clamped_tbl = Table::new("Figure 10: monotone step sequence (clamped)", &headers);
    for st in &seq.states {
        let mut row = vec![
            format!("{}", st.scenario),
            format!("{}", st.k),
            format!("{:.0}", st.total()),
        ];
        for i in 0..n_a {
            row.push(format!("{:.0}", st.per_layer[i]));
        }
        clamped_tbl.row(row);
    }
    println!("{}", clamped_tbl.render());
    println!("expected shape: totals increase along the path; after the clamp");
    println!("every per-layer column is monotone too (no drain-during-fill).");
    println!("naive-order drain violations found: {violations}");

    let dir = outdir("fig10");
    std::fs::write(dir.join("states_raw.csv"), raw_tbl.to_csv()).expect("csv");
    std::fs::write(dir.join("states_monotone.csv"), clamped_tbl.to_csv()).expect("csv");
    let mut summary = RunSummary::new("fig10");
    summary
        .param("n_a", n_a)
        .param("rate", rate)
        .param("k_max", k_max)
        .metric("k1", seq.k1 as f64)
        .metric("n_states", seq.states.len() as f64)
        .metric("naive_drain_violations", violations as f64);
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    println!("wrote {}", dir.display());
}
