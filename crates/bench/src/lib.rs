//! Shared plumbing for the experiment regenerators: output directories,
//! terminal plots, and common run-analysis helpers.

use laqa_trace::TimeSeries;
use std::path::PathBuf;

pub mod cli;
pub mod timing;

/// Directory where experiment `id` writes its CSVs/JSON:
/// `<workspace>/results/<id>/`.
pub fn outdir(id: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("results").join(id);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Render a series as a compact ASCII strip chart (one row, `width`
/// buckets, bucket = time-mean, glyph = value quantile) so the shape is
/// visible straight from the terminal.
pub fn ascii_plot(series: &TimeSeries, width: usize) -> String {
    const GLYPHS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.points.len() < 2 || width == 0 {
        return String::new();
    }
    let t0 = series.points.first().unwrap().0;
    let t1 = series.points.last().unwrap().0;
    let span = (t1 - t0).max(1e-9);
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0usize; width];
    for &(t, v) in &series.points {
        let idx = (((t - t0) / span) * width as f64).min(width as f64 - 1.0) as usize;
        sums[idx] += v;
        counts[idx] += 1;
    }
    let buckets: Vec<Option<f64>> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| (c > 0).then(|| s / c as f64))
        .collect();
    let max = buckets.iter().flatten().cloned().fold(f64::MIN, f64::max);
    let min = buckets.iter().flatten().cloned().fold(f64::MAX, f64::min);
    let range = (max - min).max(1e-12);
    buckets
        .iter()
        .map(|b| match b {
            None => ' ',
            Some(v) => {
                let q = ((v - min) / range * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[q.min(GLYPHS.len() - 1)]
            }
        })
        .collect()
}

/// Mean of the values of a series within `[t_lo, t_hi)`.
pub fn window_mean(series: &TimeSeries, t_lo: f64, t_hi: f64) -> Option<f64> {
    let vals: Vec<f64> = series
        .points
        .iter()
        .filter(|&&(t, _)| t >= t_lo && t < t_hi)
        .map(|&(_, v)| v)
        .collect();
    (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
}

/// Count value changes of a (step) series within `[t_lo, t_hi)`.
pub fn window_changes(series: &TimeSeries, t_lo: f64, t_hi: f64) -> usize {
    let vals: Vec<f64> = series
        .points
        .iter()
        .filter(|&&(t, _)| t >= t_lo && t < t_hi)
        .map(|&(_, v)| v)
        .collect();
    vals.windows(2)
        .filter(|w| (w[0] - w[1]).abs() > 1e-9)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_plot_shapes() {
        let mut s = TimeSeries::new("x");
        for i in 0..100 {
            s.push(i as f64, i as f64);
        }
        let plot = ascii_plot(&s, 10);
        assert_eq!(plot.chars().count(), 10);
        let first = plot.chars().next().unwrap();
        let last = plot.chars().last().unwrap();
        assert_ne!(first, last, "ramp should span glyphs: {plot}");
    }

    #[test]
    fn ascii_plot_degenerate_inputs() {
        let s = TimeSeries::new("x");
        assert_eq!(ascii_plot(&s, 10), "");
    }

    #[test]
    fn window_helpers() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 1.0);
        s.push(2.0, 2.0);
        s.push(3.0, 3.0);
        assert_eq!(window_mean(&s, 0.0, 2.0), Some(1.0));
        assert_eq!(window_changes(&s, 0.0, 4.0), 2);
        assert_eq!(window_mean(&s, 10.0, 20.0), None);
    }
}
