//! **Ablation** — drop-tail vs RED at the bottleneck.
//!
//! The paper assumes near-random loss (§3, citing Bolot) and evaluates
//! over drop-tail queues. RED actively randomizes drops and keeps the
//! average queue short — which also shrinks the RTT and therefore *raises*
//! the AIMD slope `S = pkt/srtt²`, shrinking the buffer requirements. This
//! ablation quantifies both effects on the same T1 workload.

use laqa_bench::outdir;
use laqa_sim::{run_scenario, QueueKind, RedConfig, ScenarioConfig};
use laqa_trace::{RunSummary, Table};

fn main() {
    let duration = 60.0;
    let mut tbl = Table::new(
        "Ablation: bottleneck discipline (T1, K_max = 2, mean of 3 seeds)",
        &[
            "discipline",
            "mean queue (pkts)",
            "peak queue",
            "backoffs",
            "quality changes",
            "stalls",
        ],
    );
    let dir = outdir("ablation_red");

    for (name, kind) in [
        ("drop-tail", QueueKind::DropTail),
        ("RED", QueueKind::Red(RedConfig::for_queue(150))),
    ] {
        let mut mean_q = 0.0;
        let mut peak_q: f64 = 0.0;
        let mut backoffs = 0u64;
        let mut changes = 0usize;
        let mut stalls = 0usize;
        let seeds = [7u64, 21, 42];
        for &seed in &seeds {
            let mut cfg = ScenarioConfig::t1(2, duration, seed);
            cfg.dumbbell.queue_kind = kind;
            let out = run_scenario(&cfg);
            mean_q += out.queue_trace.time_weighted_mean().unwrap_or(0.0);
            peak_q = peak_q.max(out.queue_trace.max().unwrap_or(0.0));
            backoffs += out.backoffs;
            changes += out.metrics.quality_changes();
            stalls += out.metrics.stalls();
        }
        let n = seeds.len() as f64;
        tbl.row(vec![
            name.into(),
            format!("{:.1}", mean_q / n),
            format!("{peak_q:.0}"),
            format!("{:.1}", backoffs as f64 / n),
            format!("{:.1}", changes as f64 / n),
            format!("{stalls}"),
        ]);
        let mut summary = RunSummary::new(format!("ablation_red/{name}"));
        summary
            .metric("mean_queue", mean_q / n)
            .metric("peak_queue", peak_q)
            .metric("backoffs", backoffs as f64 / n)
            .metric("quality_changes", changes as f64 / n);
        summary
            .write_json(dir.join(format!("summary_{}.json", name.replace('-', "_"))))
            .expect("summary");
    }

    println!("{}", tbl.render());
    println!("expected shape: RED keeps the average queue well below the");
    println!("drop-tail level (shorter RTT → steeper AIMD slope → smaller");
    println!("buffer requirements) at the cost of more frequent, less");
    println!("synchronized loss events; the base layer must not stall under");
    println!("either discipline.");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());
}
