//! The RAP sender state machine.
//!
//! Transport-agnostic: the owner (the simulator's RAP agent, or the tokio
//! sender task) provides the clock and the wire; this type provides the
//! protocol — pacing, per-SRTT additive increase, ACK processing, loss
//! detection with cluster suppression, and timeout collapse.
//!
//! # Driving it
//!
//! ```text
//! loop:
//!   poll_timers(now)                      // AIMD step + timeout checks
//!   if now >= next_send_time():
//!       seq = register_send(now, size, tag)
//!       put packet(seq) on the wire
//!   on ACK arrival: on_ack(now, info)
//!   drain take_events() → rate changes, backoffs, losses
//! ```
//!
//! One **backoff per loss event**: when a loss triggers a backoff, further
//! losses among packets already in flight (sequence at or below the highest
//! sent at backoff time) are reported but do not halve the rate again —
//! they belong to the same congestion event (cluster-loss suppression).

use crate::aimd::AimdState;
use crate::finegrain::FineGrain;
use crate::history::{LostPacket, PacketRecord, TransmissionHistory};
use crate::receiver::AckInfo;
use crate::rtt::RttEstimator;

/// RAP sender configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RapConfig {
    /// Payload bytes per packet.
    pub packet_size: f64,
    /// Initial transmission rate (bytes/s). RAP starts slowly — one or two
    /// packets per assumed RTT.
    pub initial_rate: f64,
    /// Initial RTT guess (seconds) before the first sample.
    pub initial_rtt: f64,
    /// Packets after a hole before it is declared lost.
    pub reorder_threshold: u64,
    /// Enable the fine-grain (delay-based) IPG modulation. The paper's
    /// evaluation uses `false`.
    pub fine_grain: bool,
    /// Optional rate ceiling (bytes/s), `INFINITY` for none.
    pub max_rate: f64,
}

impl Default for RapConfig {
    fn default() -> Self {
        RapConfig {
            packet_size: 1_000.0,
            initial_rate: 2_000.0,
            initial_rtt: 0.2,
            reorder_threshold: 3,
            fine_grain: false,
            max_rate: f64::INFINITY,
        }
    }
}

/// Why a backoff happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BackoffCause {
    /// ACK-inferred packet loss.
    Loss,
    /// Retransmission-style timeout (no ACK progress for an RTO).
    Timeout,
}

/// Protocol events for the owner to act on.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RapEvent {
    /// Multiplicative decrease happened; `rate` is the post-backoff rate.
    Backoff {
        /// Event time.
        time: f64,
        /// Rate after the decrease (bytes/s).
        rate: f64,
        /// Rate immediately before the decrease (bytes/s), so consumers
        /// can recover the *actual* decrease factor `rate / pre_rate` —
        /// controllers other than RAP do not halve, and even RAP's floor
        /// clamp makes the realized factor differ from the nominal ½.
        pre_rate: f64,
        /// Additive-increase slope at the moment of the backoff
        /// (bytes/s²). The QA drop rule runs against the slope *now*, not
        /// the one sampled at the last allocation tick; an SRTT swing
        /// inside a tick would otherwise skew the recovery geometry.
        slope: f64,
        /// What triggered it.
        cause: BackoffCause,
    },
    /// A per-SRTT additive-increase step completed.
    RateIncrease {
        /// Event time.
        time: f64,
        /// Rate after the increase (bytes/s).
        rate: f64,
    },
    /// A packet's delivery was confirmed by the ACK stream. The QA layer
    /// credits receiver buffers on this event — crediting at *send* time
    /// would count bytes still sitting in the bottleneck queue as buffered
    /// and systematically overestimate the receiver's protection.
    PacketAcked {
        /// Event time.
        time: f64,
        /// Sequence of the acknowledged packet.
        seq: u64,
        /// Payload size (bytes).
        size: f64,
        /// Application tag attached at send time.
        tag: u32,
    },
    /// A packet was declared lost (reported even during cluster
    /// suppression so buffer accounting stays correct).
    PacketLost {
        /// Event time.
        time: f64,
        /// Sequence of the lost packet.
        seq: u64,
        /// Payload size (bytes).
        size: f64,
        /// Application tag attached at send time.
        tag: u32,
    },
}

/// RAP sender. See module docs for the driving loop.
#[derive(Debug, Clone)]
pub struct RapSender {
    cfg: RapConfig,
    aimd: AimdState,
    rtt: RttEstimator,
    history: TransmissionHistory,
    fine: Option<FineGrain>,
    next_seq: u64,
    next_send: f64,
    next_step: f64,
    /// Highest sequence sent when the last backoff fired; losses at or
    /// below it are the same congestion event.
    recovery_seq: Option<u64>,
    /// Time of last ACK progress (for the timeout clock).
    last_progress: f64,
    /// Consecutive timeouts (stats only; the RTO backoff itself lives in
    /// the estimator so it stays capped and clamped in one place).
    timeouts_in_row: u32,
    events: Vec<RapEvent>,
}

impl RapSender {
    /// Create a sender whose clock starts at `now`.
    pub fn new(cfg: RapConfig, now: f64) -> Self {
        let mut aimd = AimdState::new(cfg.packet_size, cfg.initial_rate);
        aimd.set_max_rate(cfg.max_rate);
        let rtt = RttEstimator::new(cfg.initial_rtt);
        let srtt = rtt.srtt();
        RapSender {
            fine: cfg.fine_grain.then(FineGrain::new),
            history: TransmissionHistory::new(cfg.reorder_threshold),
            aimd,
            rtt,
            next_seq: 0,
            next_send: now,
            next_step: now + srtt,
            recovery_seq: None,
            last_progress: now,
            timeouts_in_row: 0,
            events: Vec::new(),
            cfg,
        }
    }

    /// Current transmission rate (bytes/s).
    pub fn rate(&self) -> f64 {
        self.aimd.rate()
    }

    /// Smoothed RTT (seconds).
    pub fn srtt(&self) -> f64 {
        self.rtt.srtt()
    }

    /// Additive-increase slope `S = packet_size / srtt²` (bytes/s²) — what
    /// the quality-adaptation layer needs for its deficit geometry.
    pub fn slope(&self) -> f64 {
        self.aimd.slope(self.rtt.srtt())
    }

    /// Packets currently unresolved.
    pub fn in_flight(&self) -> usize {
        self.history.outstanding()
    }

    /// Consecutive timeouts without intervening ACK progress.
    pub fn timeouts_in_row(&self) -> u32 {
        self.timeouts_in_row
    }

    /// Configured packet size (bytes).
    pub fn packet_size(&self) -> f64 {
        self.cfg.packet_size
    }

    /// The configuration this sender was built with.
    pub fn config(&self) -> &RapConfig {
        &self.cfg
    }

    /// Earliest time the next packet may be transmitted.
    pub fn next_send_time(&self) -> f64 {
        self.next_send
    }

    /// The next timer deadline (step or timeout) the owner should poll at.
    pub fn next_timer(&self) -> f64 {
        let timeout = self.timeout_deadline();
        self.next_step.min(timeout)
    }

    fn timeout_deadline(&self) -> f64 {
        if self.history.outstanding() == 0 {
            return f64::INFINITY;
        }
        // The estimator's RTO already carries the capped exponential
        // backoff and the [min_rto, max_rto] clamp — multiplying again
        // here compounded the backoff and could push the deadline far
        // past the intended ceiling.
        self.last_progress + self.rtt.rto()
    }

    /// Register a transmission of `size` bytes tagged `tag`; returns the
    /// sequence number to put on the wire and schedules the next send per
    /// the current IPG.
    pub fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.history.on_send(
            seq,
            PacketRecord {
                send_time: now,
                size,
                tag,
            },
        );
        let mut ipg = self.aimd.ipg();
        if let Some(f) = &self.fine {
            ipg *= f.ipg_factor();
        }
        // Pace from the scheduled time, not `now`, so jitter in the owner's
        // loop does not accumulate rate error; but never fall behind by more
        // than one gap.
        self.next_send = self.next_send.max(now - ipg) + ipg;
        if self.history.outstanding() == 1 {
            // First packet in flight re-arms the timeout clock.
            self.last_progress = now;
        }
        seq
    }

    /// Process an arriving ACK.
    pub fn on_ack(&mut self, now: f64, ack: AckInfo) {
        self.last_progress = now;
        self.timeouts_in_row = 0;
        // ACK progress ends the RTO backoff (same eager reset the sender
        // has always applied to its consecutive-timeout counter — the
        // exponent merely lives in the estimator now).
        self.rtt.reset_backoff();
        // RTT sample from the acked packet, if it was still outstanding.
        if let Some(record) = self.history.mark_received(ack.ack_seq) {
            let sample = now - record.send_time;
            self.rtt.sample(sample);
            laqa_obs::counter!("rap.rtt_samples").inc();
            laqa_obs::histogram!(
                "rap.rtt_ms",
                &[10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0]
            )
            .observe(sample * 1e3);
            if let Some(f) = &mut self.fine {
                f.sample(sample);
            }
            self.events.push(RapEvent::PacketAcked {
                time: now,
                seq: ack.ack_seq,
                size: record.size,
                tag: record.tag,
            });
        }
        if ack.cum_seq != u64::MAX {
            let events = &mut self.events;
            self.history
                .for_each_received_upto(ack.cum_seq, |seq, record| {
                    events.push(RapEvent::PacketAcked {
                        time: now,
                        seq,
                        size: record.size,
                        tag: record.tag,
                    });
                });
        }
        // Mask-proven receptions: walk set bits only (bit `i` names
        // sequence `highest - 1 - i`; bits at or above `highest` are
        // invalid and masked off). Ascending bit order, same as the old
        // 0..64 scan.
        if ack.highest >= 1 {
            let valid = if ack.highest >= 64 {
                u64::MAX
            } else {
                (1u64 << ack.highest) - 1
            };
            let mut bits = ack.mask & valid;
            while bits != 0 {
                let i = u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                if let Some(record) = self.history.mark_received(ack.highest - 1 - i) {
                    self.events.push(RapEvent::PacketAcked {
                        time: now,
                        seq: ack.highest - 1 - i,
                        size: record.size,
                        tag: record.tag,
                    });
                }
            }
        }
        let losses = self.history.detect_losses();
        self.handle_losses(now, losses, BackoffCause::Loss);
    }

    /// Poll the per-SRTT increase timer and the timeout clock. Call at
    /// least as often as [`next_timer`](Self::next_timer) suggests.
    pub fn poll_timers(&mut self, now: f64) {
        // Timeout first: a dead flow must not keep increasing.
        if now >= self.timeout_deadline() {
            let losses = self.history.flush_all_as_lost();
            for l in &losses {
                self.events.push(RapEvent::PacketLost {
                    time: now,
                    seq: l.seq,
                    size: l.record.size,
                    tag: l.record.tag,
                });
            }
            self.rtt.on_timeout();
            self.timeouts_in_row = self.timeouts_in_row.saturating_add(1);
            let pre_rate = self.aimd.rate();
            let rate = self.aimd.collapse();
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.last_progress = now;
            self.events.push(RapEvent::Backoff {
                time: now,
                rate,
                pre_rate,
                slope: self.aimd.slope(self.rtt.srtt()),
                cause: BackoffCause::Timeout,
            });
            laqa_obs::counter!("rap.backoffs_timeout").inc();
            if laqa_obs::flight::enabled() {
                laqa_obs::flight::instant("rap.backoff_timeout", now, rate);
            }
            laqa_obs::event!(
                laqa_obs::Level::Warn,
                "rap.timeout",
                now,
                "rate" => rate,
                "lost" => losses.len(),
            );
        }
        while now >= self.next_step {
            self.aimd.increase_step(self.rtt.srtt());
            laqa_obs::counter!("rap.increase_steps").inc();
            self.events.push(RapEvent::RateIncrease {
                time: self.next_step,
                rate: self.aimd.rate(),
            });
            self.next_step += self.rtt.srtt().max(1e-3);
        }
    }

    fn handle_losses(&mut self, now: f64, losses: Vec<LostPacket>, cause: BackoffCause) {
        if losses.is_empty() {
            return;
        }
        let mut new_event = false;
        for l in &losses {
            self.events.push(RapEvent::PacketLost {
                time: now,
                seq: l.seq,
                size: l.record.size,
                tag: l.record.tag,
            });
            let suppressed = self.recovery_seq.is_some_and(|r| l.seq <= r);
            if !suppressed {
                new_event = true;
            }
        }
        if new_event {
            let pre_rate = self.aimd.rate();
            let rate = self.aimd.backoff();
            // Everything already in flight belongs to this congestion event.
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.events.push(RapEvent::Backoff {
                time: now,
                rate,
                pre_rate,
                slope: self.aimd.slope(self.rtt.srtt()),
                cause,
            });
            laqa_obs::counter!("rap.backoffs_loss").inc();
            if laqa_obs::flight::enabled() {
                laqa_obs::flight::instant("rap.backoff_loss", now, rate);
            }
            laqa_obs::event!(
                laqa_obs::Level::Info,
                "rap.backoff",
                now,
                "rate" => rate,
                "losses" => losses.len(),
            );
        }
    }

    /// Drain accumulated protocol events.
    pub fn take_events(&mut self) -> Vec<RapEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drain accumulated protocol events into `out`, preserving both
    /// buffers' capacity — the zero-allocation alternative to
    /// [`take_events`](Self::take_events) for per-tick polling loops.
    pub fn drain_events_into(&mut self, out: &mut Vec<RapEvent>) {
        out.append(&mut self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::RapReceiverState;

    fn sender() -> RapSender {
        RapSender::new(
            RapConfig {
                initial_rate: 10_000.0,
                initial_rtt: 0.1,
                ..RapConfig::default()
            },
            0.0,
        )
    }

    /// Run a lossless send/ack loop for `dur` seconds with one-way delay
    /// `owd`; returns the final sender.
    fn run_clean(mut s: RapSender, dur: f64, owd: f64) -> RapSender {
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut in_flight: Vec<(f64, u64)> = Vec::new(); // (deliver_time, seq)
        while now < dur {
            s.poll_timers(now);
            // Deliver ACKs whose time has come (data owd + ack owd).
            while let Some(&(t, seq)) = in_flight.first() {
                if t <= now {
                    in_flight.remove(0);
                    let ack = rx.on_data(seq);
                    s.on_ack(t + owd, ack);
                } else {
                    break;
                }
            }
            if now >= s.next_send_time() {
                let seq = s.register_send(now, s.packet_size(), 0);
                in_flight.push((now + owd, seq));
            }
            now += 0.001;
        }
        s
    }

    #[test]
    fn rate_increases_linearly_without_loss() {
        let s = sender();
        let r0 = s.rate();
        let s = run_clean(s, 2.0, 0.05);
        // ~0.1 s SRTT → ~20 steps of +10 KB/s each over 2 s.
        assert!(s.rate() > r0 + 100_000.0, "rate {} after 2 s", s.rate());
    }

    #[test]
    fn srtt_converges_to_path_rtt() {
        let s = run_clean(sender(), 2.0, 0.05);
        assert!((s.srtt() - 0.1).abs() < 0.02, "srtt {}", s.srtt());
    }

    #[test]
    fn loss_triggers_single_backoff_for_cluster() {
        let mut s = sender();
        let mut rx = RapReceiverState::new();
        // Send 10 packets at t=0..0.9; drop seqs 3 and 5 (one congestion
        // event); ACK the rest in order at t=1.0+.
        for i in 0..10u64 {
            let seq = s.register_send(i as f64 * 0.1, 1_000.0, 0);
            assert_eq!(seq, i);
        }
        let mut now = 1.0;
        let mut backoffs = 0;
        let mut losses = 0;
        for seq in (0..10u64).filter(|s| *s != 3 && *s != 5) {
            let ack = rx.on_data(seq);
            s.on_ack(now, ack);
            now += 0.01;
        }
        for e in s.take_events() {
            match e {
                RapEvent::Backoff { .. } => backoffs += 1,
                RapEvent::PacketLost { .. } => losses += 1,
                _ => {}
            }
        }
        assert_eq!(losses, 2, "both losses reported");
        assert_eq!(backoffs, 1, "one backoff per congestion event");
    }

    #[test]
    fn separate_loss_events_backoff_twice() {
        let mut s = sender();
        let mut rx = RapReceiverState::new();
        // First cluster: send 0..5, lose 1.
        for i in 0..5u64 {
            s.register_send(i as f64 * 0.01, 1_000.0, 0);
        }
        for seq in [0u64, 2, 3, 4] {
            s.on_ack(0.2, rx.on_data(seq));
        }
        let backoffs1 = s
            .take_events()
            .iter()
            .filter(|e| matches!(e, RapEvent::Backoff { .. }))
            .count();
        assert_eq!(backoffs1, 1);
        // Second cluster: new packets sent after the backoff, lose 6.
        for i in 5..10u64 {
            s.register_send(0.3 + (i - 5) as f64 * 0.01, 1_000.0, 0);
        }
        for seq in [5u64, 7, 8, 9] {
            s.on_ack(0.5, rx.on_data(seq));
        }
        let backoffs2 = s
            .take_events()
            .iter()
            .filter(|e| matches!(e, RapEvent::Backoff { .. }))
            .count();
        assert_eq!(backoffs2, 1, "a loss after recovery is a new event");
    }

    #[test]
    fn timeout_collapses_rate_and_flushes() {
        let mut s = sender();
        for i in 0..5u64 {
            s.register_send(i as f64 * 0.01, 1_000.0, 7);
        }
        let rate_before = s.rate();
        // No ACKs; poll far past the RTO.
        s.poll_timers(10.0);
        let events = s.take_events();
        let lost: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, RapEvent::PacketLost { .. }))
            .collect();
        assert_eq!(lost.len(), 5);
        let backoff = events.iter().find_map(|e| match e {
            RapEvent::Backoff { rate, cause, .. } => Some((*rate, *cause)),
            _ => None,
        });
        let (rate, cause) = backoff.expect("timeout must back off");
        assert_eq!(cause, BackoffCause::Timeout);
        assert!(rate < rate_before);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn rto_storm_backs_off_capped_then_recovers_on_ack() {
        // An unreachable receiver produces timeout after timeout: the gap
        // between consecutive RTOs must grow exponentially, saturate at the
        // cap instead of running away, and snap back once an ACK arrives.
        let mut s = sender();
        let mut now = 0.0;
        let mut gaps: Vec<f64> = Vec::new();
        for round in 0..9 {
            s.register_send(now, 1_000.0, 0); // re-arms the timeout clock
            let start = now;
            loop {
                now += 0.05;
                s.poll_timers(now);
                let fired = s.take_events().iter().any(|e| {
                    matches!(
                        e,
                        RapEvent::Backoff {
                            cause: BackoffCause::Timeout,
                            ..
                        }
                    )
                });
                if fired {
                    break;
                }
                assert!(
                    now - start < 120.0,
                    "round {round}: timeout never fired (deadline runaway)"
                );
            }
            gaps.push(now - start);
        }
        assert_eq!(s.timeouts_in_row(), 9);
        // Exponential growth until the 2^6 cap (base RTO 0.3 s → 19.2 s):
        for i in 0..5 {
            assert!(
                gaps[i + 1] > gaps[i] * 1.5,
                "gap {} -> {} did not back off",
                gaps[i],
                gaps[i + 1]
            );
        }
        assert!(
            (gaps[7] - gaps[6]).abs() < 0.11 && (gaps[8] - gaps[7]).abs() < 0.11,
            "backoff must saturate at the cap: {gaps:?}"
        );
        assert!(gaps[8] < 60.0, "RTO stays under the hard ceiling");
        // One ACK clears the storm: the next timeout is prompt again.
        let mut rx = RapReceiverState::new();
        let seq = s.register_send(now, 1_000.0, 0);
        s.on_ack(now + 0.1, rx.on_data(seq));
        assert_eq!(s.timeouts_in_row(), 0);
        let start = now;
        s.register_send(now, 1_000.0, 0);
        loop {
            now += 0.05;
            s.poll_timers(now);
            let fired = s
                .take_events()
                .iter()
                .any(|e| matches!(e, RapEvent::Backoff { .. }));
            if fired {
                break;
            }
            assert!(now - start < 10.0, "post-recovery timeout must be prompt");
        }
        assert!(
            now - start < 1.0,
            "backoff did not reset after ACK: gap {}",
            now - start
        );
    }

    #[test]
    fn pacing_respects_ipg() {
        let mut s = sender(); // 10 KB/s, 1 KB packets → IPG 0.1 s
        let t0 = s.next_send_time();
        s.register_send(t0, 1_000.0, 0);
        assert!((s.next_send_time() - (t0 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn slope_tracks_srtt() {
        let s = run_clean(sender(), 1.0, 0.05);
        let expect = 1_000.0 / (s.srtt() * s.srtt());
        assert!((s.slope() - expect).abs() < 1e-6);
    }

    #[test]
    fn lost_packet_tags_surface() {
        let mut s = sender();
        let mut rx = RapReceiverState::new();
        s.register_send(0.0, 1_000.0, 3);
        for i in 1..5u64 {
            s.register_send(i as f64 * 0.01, 1_000.0, 0);
        }
        // Lose seq 0.
        for seq in 1..5u64 {
            s.on_ack(0.2, rx.on_data(seq));
        }
        let tag = s.take_events().iter().find_map(|e| match e {
            RapEvent::PacketLost { tag, seq: 0, .. } => Some(*tag),
            _ => None,
        });
        assert_eq!(tag, Some(3));
    }

    #[test]
    fn sawtooth_with_periodic_loss_shows_aimd() {
        // Deterministic loss of every 50th packet: rate must oscillate, and
        // the long-run average must stay finite and positive.
        let mut s = sender();
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let owd = 0.02;
        let mut pipeline: Vec<(f64, u64)> = Vec::new();
        let mut peaks: Vec<f64> = Vec::new();
        let mut last_rate = s.rate();
        while now < 30.0 {
            s.poll_timers(now);
            while let Some(&(t, seq)) = pipeline.first() {
                if t <= now {
                    pipeline.remove(0);
                    let ack = rx.on_data(seq);
                    s.on_ack(now, ack);
                } else {
                    break;
                }
            }
            if now >= s.next_send_time() {
                let seq = s.register_send(now, 1_000.0, 0);
                if seq % 50 != 49 {
                    pipeline.push((now + owd, seq));
                }
            }
            if s.rate() < last_rate {
                peaks.push(last_rate);
            }
            last_rate = s.rate();
            now += 0.001;
        }
        assert!(
            peaks.len() > 5,
            "expected several backoffs, got {}",
            peaks.len()
        );
        assert!(s.rate() > 0.0);
    }
}
