//! Deterministic-replay guarantee: a campaign sweep produces byte-identical
//! per-seed results no matter how many worker threads run it.
//!
//! This is the contract the parallel campaign engine is built around —
//! work-stealing changes *which thread* runs a session, never *what the
//! session computes*, because every session owns its seed-derived RNG and
//! results land in spec-order slots.

use laqa_sim::{run_campaign, run_session, CampaignSpec, TestKind};

fn sweep() -> CampaignSpec {
    CampaignSpec::grid(&TestKind::ALL, &[2, 4], &[7, 21, 42], 6.0)
}

#[test]
fn fingerprint_identical_across_1_2_and_8_threads() {
    let spec = sweep();
    let one = run_campaign(&spec, 1);
    let two = run_campaign(&spec, 2);
    let eight = run_campaign(&spec, 8);
    assert_eq!(one.fingerprint(), two.fingerprint());
    assert_eq!(one.fingerprint(), eight.fingerprint());
    assert_eq!(one.threads, 1);
    assert_eq!(two.threads, 2);
    // Thread count is capped at the session count, not the request.
    assert_eq!(eight.threads, 8.min(spec.len()));
}

#[test]
fn per_session_traces_identical_across_thread_counts() {
    let spec = sweep();
    let one = run_campaign(&spec, 1);
    let eight = run_campaign(&spec, 8);
    assert_eq!(one.sessions.len(), eight.sessions.len());
    for (a, b) in one.sessions.iter().zip(&eight.sessions) {
        assert_eq!(a.spec, b.spec, "slot order must match spec order");
        assert_eq!(
            a.trace_hash,
            b.trace_hash,
            "trace diverged for {}",
            a.spec.label()
        );
        assert_eq!(a.efficiency.map(f64::to_bits), b.efficiency.map(f64::to_bits));
        assert_eq!(
            a.avoidable_drops.map(f64::to_bits),
            b.avoidable_drops.map(f64::to_bits)
        );
        assert_eq!(a.quality_changes, b.quality_changes);
        assert_eq!(a.adds, b.adds);
        assert_eq!(a.drops, b.drops);
    }
}

#[test]
fn campaign_sessions_match_standalone_runs() {
    // Running a session inside a parallel campaign must give the same
    // result as running it alone — no cross-session state leaks.
    let spec = sweep();
    let campaign = run_campaign(&spec, 4);
    for (spec, from_campaign) in spec.sessions.iter().zip(&campaign.sessions) {
        let alone = run_session(spec);
        assert_eq!(
            alone.trace_hash,
            from_campaign.trace_hash,
            "campaign run of {} differs from standalone run",
            spec.label()
        );
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    // Guards against a bug where the seed is ignored and every session
    // replays the same history (which would make the replay tests above
    // pass vacuously).
    let spec = sweep();
    let result = run_campaign(&spec, 2);
    let mut hashes: Vec<u64> = result.sessions.iter().map(|s| s.trace_hash).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), spec.len(), "duplicate traces across the grid");
}
