//! Plain RAP flow agents (sender and sink) — the "9 additional RAP flows"
//! of the paper's tests, and the single flow of figure 1.

use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, Packet, PacketKind, Route};
use laqa_rap::{RapConfig, RapEvent, RapReceiverState, RapSender};
use laqa_trace::TimeSeries;
use std::any::Any;

const ACK_SIZE: u32 = 40;

/// A greedy RAP source (always has data to send).
pub struct RapFlowAgent {
    sender: RapSender,
    sender_config: RapConfig,
    /// Destination (sink) agent.
    pub dst: AgentId,
    /// Forward route.
    pub route: Route,
    /// Flow id.
    pub flow: u32,
    packet_size: u32,
    armed_at: f64,
    /// Time the flow starts sending (seconds).
    pub start_at: f64,
    /// Transmission-rate trace (sampled on every rate change) — figure 1.
    pub rate_trace: TimeSeries,
    /// Whether to record the rate trace (off for background flows to save
    /// memory).
    pub record_rate: bool,
    /// Backoffs observed.
    pub backoffs: u64,
    /// Packets sent.
    pub sent: u64,
    /// Packets reported lost.
    pub lost: u64,
    /// Reused buffer for draining sender events without reallocating.
    ev_scratch: Vec<RapEvent>,
}

impl RapFlowAgent {
    /// New RAP source with default protocol parameters.
    pub fn new(dst: AgentId, route: impl Into<Route>, flow: u32, cfg: RapConfig) -> Self {
        let packet_size = cfg.packet_size as u32;
        RapFlowAgent {
            sender: RapSender::new(cfg.clone(), 0.0),
            sender_config: cfg,
            dst,
            route: route.into(),
            flow,
            packet_size,
            armed_at: f64::NEG_INFINITY,
            start_at: 0.0,
            rate_trace: TimeSeries::new("rap_rate"),
            record_rate: false,
            backoffs: 0,
            sent: 0,
            lost: 0,
            ev_scratch: Vec::new(),
        }
    }

    /// Current transmission rate (bytes/s).
    pub fn rate(&self) -> f64 {
        self.sender.rate()
    }

    fn drain_events(&mut self, now: f64) {
        let mut events = std::mem::take(&mut self.ev_scratch);
        self.sender.drain_events_into(&mut events);
        for e in events.drain(..) {
            match e {
                RapEvent::Backoff { rate, .. } => {
                    self.backoffs += 1;
                    if self.record_rate {
                        self.rate_trace.push(now, rate);
                    }
                }
                RapEvent::RateIncrease { time, rate } => {
                    if self.record_rate {
                        self.rate_trace.push(time, rate);
                    }
                }
                RapEvent::PacketLost { .. } => self.lost += 1,
                RapEvent::PacketAcked { .. } => {}
            }
        }
        self.ev_scratch = events;
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        self.sender.poll_timers(ctx.now);
        while ctx.now >= self.sender.next_send_time() {
            let seq = self
                .sender
                .register_send(ctx.now, self.packet_size as f64, 0);
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: self.flow,
                size: self.packet_size,
                kind: PacketKind::RapData {
                    seq,
                    layer: 0,
                    n_active: 1,
                },
                dst: self.dst,
                route: self.route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
            self.sent += 1;
        }
        self.drain_events(ctx.now);
        self.arm(ctx);
    }

    fn arm(&mut self, ctx: &mut Ctx) {
        let next = self
            .sender
            .next_send_time()
            .min(self.sender.next_timer())
            .max(ctx.now + 1e-6);
        // Tolerance absorbs f64->ns rounding of the event clock; without
        // it a fired timer can leave armed_at a hair in the future and the
        // chain dies.
        if next < self.armed_at - 1e-9 || self.armed_at <= ctx.now + 1e-7 {
            ctx.set_timer_at(next, 0);
            self.armed_at = next;
        }
    }
}

impl Agent for RapFlowAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        if self.start_at > 0.0 {
            self.sender = RapSender::new(self.sender_config.clone(), self.start_at);
            ctx.set_timer_at(self.start_at, 0);
        } else {
            self.pump(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let PacketKind::RapAck(info) = pkt.kind {
            self.sender.on_ack(ctx.now, info);
            self.drain_events(ctx.now);
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// RAP sink: acknowledges every data packet along the reverse route.
pub struct RapSinkAgent {
    rx: RapReceiverState,
    /// The sender agent to ACK to.
    pub src: AgentId,
    /// Reverse route.
    pub reverse_route: Route,
    /// Flow id.
    pub flow: u32,
    /// Bytes of data received.
    pub bytes_received: u64,
}

impl RapSinkAgent {
    /// New sink ACKing to `src` over `reverse_route`.
    pub fn new(src: AgentId, reverse_route: impl Into<Route>, flow: u32) -> Self {
        RapSinkAgent {
            rx: RapReceiverState::new(),
            src,
            reverse_route: reverse_route.into(),
            flow,
            bytes_received: 0,
        }
    }
}

impl Agent for RapSinkAgent {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let PacketKind::RapData { seq, .. } = pkt.kind {
            self.bytes_received += pkt.size as u64;
            let info = self.rx.on_data(seq);
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: self.flow,
                size: ACK_SIZE,
                kind: PacketKind::RapAck(info),
                dst: self.src,
                route: self.reverse_route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;
    use crate::link::LinkConfig;

    /// One RAP flow over a bottleneck: build and run, return (world, src,
    /// sink, bottleneck link). Agent ids are assigned in creation order, so
    /// they are known up front (0 = sink, 1 = source).
    fn single_flow(
        bw: f64,
        queue: usize,
        dur: f64,
    ) -> (World, AgentId, AgentId, crate::packet::LinkId) {
        let mut w = World::new(11);
        let fwd = w.add_link(LinkConfig {
            bandwidth: bw,
            delay: 0.01,
            queue_packets: queue,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        let sink_id = 0;
        let src_id = 1;
        assert_eq!(
            w.add_agent(Box::new(RapSinkAgent::new(src_id, vec![rev], 1))),
            sink_id
        );
        let mut src_agent = RapFlowAgent::new(sink_id, vec![fwd], 1, RapConfig::default());
        src_agent.record_rate = true;
        assert_eq!(w.add_agent(Box::new(src_agent)), src_id);
        w.run_until(dur);
        (w, src_id, sink_id, fwd)
    }

    #[test]
    fn rap_flow_fills_and_oscillates_around_bottleneck() {
        // 50 KB/s bottleneck: the flow must back off repeatedly and its
        // long-run throughput must approach (but not exceed) the capacity.
        let (w, src, sink, fwd) = single_flow(50_000.0, 20, 30.0);
        let s: &RapFlowAgent = w.agent(src).unwrap();
        assert!(
            s.backoffs >= 3,
            "expected sawtooth, got {} backoffs",
            s.backoffs
        );
        let sk: &RapSinkAgent = w.agent(sink).unwrap();
        let throughput = sk.bytes_received as f64 / 30.0;
        assert!(
            throughput > 30_000.0 && throughput <= 51_000.0,
            "throughput {throughput}"
        );
        assert!(w.link_stats(fwd).dropped > 0, "losses drive the sawtooth");
    }

    #[test]
    fn rate_trace_is_sawtooth_shaped() {
        let (w, src, _, _) = single_flow(50_000.0, 20, 20.0);
        let s: &RapFlowAgent = w.agent(src).unwrap();
        let trace = &s.rate_trace;
        assert!(trace.len() > 20);
        // Sawtooth: strictly more small increases than big decreases, and
        // at least a few decreases.
        let mut ups = 0;
        let mut downs = 0;
        for w2 in trace.points.windows(2) {
            if w2[1].1 > w2[0].1 {
                ups += 1;
            } else if w2[1].1 < w2[0].1 {
                downs += 1;
            }
        }
        assert!(downs >= 3, "downs {downs}");
        assert!(ups > downs, "ups {ups} downs {downs}");
    }

    #[test]
    fn two_rap_flows_share_fairly() {
        let mut w = World::new(13);
        let fwd = w.add_link(LinkConfig {
            bandwidth: 100_000.0,
            delay: 0.01,
            queue_packets: 30,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        // ids: 0,1 sinks; 2,3 sources.
        let s0 = w.add_agent(Box::new(RapSinkAgent::new(2, vec![rev], 1)));
        let s1 = w.add_agent(Box::new(RapSinkAgent::new(3, vec![rev], 2)));
        let _f0 = w.add_agent(Box::new(RapFlowAgent::new(
            s0,
            vec![fwd],
            1,
            RapConfig::default(),
        )));
        let _f1 = w.add_agent(Box::new(RapFlowAgent::new(
            s1,
            vec![fwd],
            2,
            RapConfig::default(),
        )));
        w.run_until(60.0);
        let b0 = w.agent::<RapSinkAgent>(s0).unwrap().bytes_received as f64;
        let b1 = w.agent::<RapSinkAgent>(s1).unwrap().bytes_received as f64;
        let ratio = b0.max(b1) / b0.min(b1).max(1.0);
        assert!(ratio < 1.6, "unfair share: {b0} vs {b1}");
        // Combined utilization close to capacity.
        let total = (b0 + b1) / 60.0;
        assert!(total > 70_000.0, "total throughput {total}");
    }
}
