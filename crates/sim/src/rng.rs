//! The simulator's seeded random number generator.
//!
//! PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit LCG state, 32-bit output with
//! a state-dependent rotation. Small, fast, and — unlike pulling `rand`
//! from a registry — fully owned by this crate, so the byte-exact random
//! stream behind every scenario is pinned by the code itself. That is
//! what lets the campaign engine promise bit-identical per-seed results
//! forever (see `campaign` and DESIGN.md, "Hermetic offline builds").
//!
//! Seeding goes through SplitMix64 so small consecutive seeds (0, 1, 2…)
//! still start from well-mixed, unrelated states.

/// Deterministic PCG32 generator; the sole randomness source of a
/// simulated world.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Generator for `seed`; equal seeds give byte-identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = splitmix64(&mut s);
        let inc = splitmix64(&mut s) | 1; // stream increment must be odd
        let mut rng = SimRng { state, inc };
        rng.next_u32(); // discard the (not yet mixed) first output
        rng
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(0);
        let mut b = SimRng::seed_from_u64(1);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn stream_is_pinned() {
        // Regression pin: these exact values are part of the simulator's
        // determinism contract — changing the generator invalidates every
        // golden trace and campaign fingerprint.
        let mut rng = SimRng::seed_from_u64(42);
        assert_eq!(rng.next_u32(), 0x2ebb_eff8);
        assert_eq!(rng.next_u32(), 0xb3bb_a67a);
        assert_eq!(rng.next_u32(), 0xb373_da0c);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
