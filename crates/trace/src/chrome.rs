//! Chrome trace-event JSON: a builder and a zero-dependency
//! well-formedness validator.
//!
//! The [trace-event format] is what Perfetto and `chrome://tracing`
//! load: a `{"traceEvents": [...]}` object whose entries carry a phase
//! (`ph`), microsecond timestamp (`ts`), name, and `pid`/`tid` track
//! coordinates. The flight recorder (`laqa-obs`) exports per-session
//! timelines through [`ChromeTrace`]; `laqa obs-trace` and `verify.sh`
//! gate the export through [`validate`], which reuses [`crate::json`] so
//! the check stays registry-free.
//!
//! Only the event phases the workspace emits are modeled: `M` metadata
//! (process/thread names), `B`/`E` duration spans, `i` instants, `C`
//! counters, plus `X` complete events for future producers.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// Incrementally builds a trace-event document. Events are appended in
/// call order; viewers sort by `ts` themselves, but [`validate`]'s
/// span-balance check expects each track's `B`/`E` pairs in order, which
/// a per-track forward pass (how the flight recorder exports) produces
/// naturally.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<JsonValue>,
}

fn base(ph: &str, pid: u64, tid: u64, ts_us: f64, name: &str) -> Vec<(String, JsonValue)> {
    vec![
        ("ph".into(), JsonValue::Str(ph.into())),
        ("pid".into(), JsonValue::Num(pid as f64)),
        ("tid".into(), JsonValue::Num(tid as f64)),
        ("ts".into(), JsonValue::Num(ts_us)),
        ("name".into(), JsonValue::Str(name.into())),
    ]
}

impl ChromeTrace {
    /// Empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name the process `pid` (metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut ev = base("M", pid, 0, 0.0, "process_name");
        ev.push((
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str(name.into()))]),
        ));
        self.events.push(JsonValue::Obj(ev));
    }

    /// Name the thread `(pid, tid)` (metadata event) — one call per
    /// session track.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut ev = base("M", pid, tid, 0.0, "thread_name");
        ev.push((
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str(name.into()))]),
        ));
        self.events.push(JsonValue::Obj(ev));
    }

    /// Open a duration span on a track.
    pub fn begin(&mut self, pid: u64, tid: u64, ts_us: f64, name: &str) {
        self.events.push(JsonValue::Obj(base("B", pid, tid, ts_us, name)));
    }

    /// Close the most recently opened span on a track.
    pub fn end(&mut self, pid: u64, tid: u64, ts_us: f64) {
        self.events.push(JsonValue::Obj(base("E", pid, tid, ts_us, "")));
    }

    /// A thread-scoped instant marker with an args payload.
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        ts_us: f64,
        name: &str,
        args: Vec<(String, JsonValue)>,
    ) {
        let mut ev = base("i", pid, tid, ts_us, name);
        ev.push(("s".into(), JsonValue::Str("t".into())));
        ev.push(("args".into(), JsonValue::Obj(args)));
        self.events.push(JsonValue::Obj(ev));
    }

    /// A counter sample; viewers chart one series per counter name.
    pub fn counter(&mut self, pid: u64, ts_us: f64, name: &str, value: f64) {
        let mut ev = base("C", pid, 0, ts_us, name);
        ev.push((
            "args".into(),
            JsonValue::Obj(vec![("value".into(), JsonValue::Num(value))]),
        ));
        self.events.push(JsonValue::Obj(ev));
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish the document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn finish(self) -> JsonValue {
        JsonValue::Obj(vec![
            ("traceEvents".into(), JsonValue::Arr(self.events)),
            ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
        ])
    }
}

/// Per-track tallies reported by [`validate`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackStats {
    /// Thread name from `thread_name` metadata (empty if unnamed).
    pub name: String,
    /// Non-metadata events on this track.
    pub events: usize,
}

/// What [`validate`] found in a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeStats {
    /// Total non-metadata events.
    pub events: usize,
    /// Complete `B`/`E` span pairs (plus `X` events).
    pub spans: usize,
    /// `i` instant events.
    pub instants: usize,
    /// `C` counter samples.
    pub counters: usize,
    /// Per-`(pid, tid)` track tallies.
    pub tracks: BTreeMap<(u64, u64), TrackStats>,
}

impl ChromeStats {
    /// Tracks named `session …` that carry at least one event — the
    /// per-session timelines `laqa obs-trace` gates on.
    pub fn session_tracks(&self) -> usize {
        self.tracks
            .values()
            .filter(|t| t.name.starts_with("session ") && t.events > 0)
            .count()
    }
}

fn field_num(ev: &JsonValue, key: &str, i: usize) -> Result<u64, String> {
    ev.get(key)
        .and_then(JsonValue::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("event {i}: missing numeric '{key}'"))
}

/// Check that `v` is a well-formed trace-event document: a
/// `traceEvents` array whose entries all carry a known phase, numeric
/// `pid`/`tid`/`ts`, and a string `name`; every `B` on a track must be
/// closed by an `E` (and never under-closed). Returns per-track tallies
/// on success. This is the zero-dependency gate `verify.sh` runs on the
/// smoke trace export.
pub fn validate(v: &JsonValue) -> Result<ChromeStats, String> {
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("trace: missing traceEvents array")?;
    let mut stats = ChromeStats::default();
    let mut open: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.as_obj().is_none() {
            return Err(format!("event {i}: not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
        let pid = field_num(ev, "pid", i)?;
        let tid = field_num(ev, "tid", i)?;
        ev.get("ts")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric 'ts'"))?;
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing 'name'"))?;
        let track = (pid, tid);
        match ph {
            "M" => {
                if name == "thread_name" {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                    stats.tracks.entry(track).or_default().name = label.to_string();
                }
                continue; // metadata is not a timeline event
            }
            "B" => *open.entry(track).or_insert(0) += 1,
            "E" => {
                let depth = open.entry(track).or_insert(0);
                if *depth == 0 {
                    return Err(format!(
                        "event {i}: 'E' without matching 'B' on track {track:?}"
                    ));
                }
                *depth -= 1;
                stats.spans += 1;
            }
            "i" => stats.instants += 1,
            "C" => stats.counters += 1,
            "X" => stats.spans += 1,
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
        stats.events += 1;
        stats.tracks.entry(track).or_default().events += 1;
    }
    if let Some((track, depth)) = open.iter().find(|(_, &d)| d > 0) {
        return Err(format!("track {track:?}: {depth} unclosed 'B' span(s)"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.process_name(1, "laqa");
        t.thread_name(1, 2, "session 0");
        t.begin(1, 2, 0.0, "filling");
        t.instant(1, 2, 5.0, "qa.layer_add", vec![("value".into(), JsonValue::Num(2.0))]);
        t.end(1, 2, 10.0);
        t.counter(1, 7.5, "qa.buf_base s0", 4096.0);
        t
    }

    #[test]
    fn builder_output_validates_and_round_trips() {
        let doc = sample().finish();
        let stats = validate(&doc).expect("well-formed");
        assert_eq!(stats.events, 4); // B + i + E + C

        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.session_tracks(), 1);
        assert_eq!(stats.tracks[&(1, 2)].name, "session 0");

        let reparsed = parse(&doc.to_compact()).unwrap();
        assert_eq!(validate(&reparsed).unwrap(), stats);
        let pretty = parse(&doc.to_pretty()).unwrap();
        assert_eq!(validate(&pretty).unwrap(), stats);
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let mut t = ChromeTrace::new();
        t.begin(1, 2, 0.0, "open-forever");
        let err = validate(&t.finish()).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");

        let mut t = ChromeTrace::new();
        t.end(1, 2, 0.0);
        let err = validate(&t.finish()).unwrap_err();
        assert!(err.contains("without matching"), "{err}");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate(&JsonValue::Obj(vec![])).is_err());
        let doc = JsonValue::Obj(vec![(
            "traceEvents".into(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                ("ph".into(), JsonValue::Str("Z".into())),
                ("pid".into(), JsonValue::Num(1.0)),
                ("tid".into(), JsonValue::Num(1.0)),
                ("ts".into(), JsonValue::Num(0.0)),
                ("name".into(), JsonValue::Str("x".into())),
            ])]),
        )]);
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");
    }
}
