//! Deterministic-replay guarantee: a campaign sweep produces byte-identical
//! per-seed results no matter how many worker threads run it.
//!
//! This is the contract the parallel campaign engine is built around —
//! work-stealing changes *which thread* runs a session, never *what the
//! session computes*, because every session owns its seed-derived RNG and
//! results land in spec-order slots.

use laqa_sim::{
    run_campaign, run_campaign_fold, run_campaign_opts, run_session, CampaignOptions,
    CampaignSpec, TestKind,
};

fn sweep() -> CampaignSpec {
    CampaignSpec::grid(&TestKind::ALL, &[2, 4], &[7, 21, 42], 6.0)
}

/// Worker threads the executor actually spawns for a request: clamped to
/// the session count and the host's parallelism (PR 10 — oversubscribing
/// a small host buys no scaling, only merge overhead).
fn clamped(requested: usize, sessions: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    requested.max(1).min(sessions.max(1)).min(cores)
}

#[test]
fn fingerprint_identical_across_1_2_and_8_threads() {
    let spec = sweep();
    let one = run_campaign(&spec, 1);
    let two = run_campaign(&spec, 2);
    let eight = run_campaign(&spec, 8);
    assert_eq!(one.fingerprint(), two.fingerprint());
    assert_eq!(one.fingerprint(), eight.fingerprint());
    assert_eq!(one.threads, 1);
    assert_eq!(two.threads, clamped(2, spec.len()));
    // Thread count is capped at the session count and host parallelism,
    // not the request.
    assert_eq!(eight.threads, clamped(8, spec.len()));
}

#[test]
fn per_session_traces_identical_across_thread_counts() {
    let spec = sweep();
    let one = run_campaign(&spec, 1);
    let eight = run_campaign(&spec, 8);
    assert_eq!(one.sessions.len(), eight.sessions.len());
    for (a, b) in one.sessions.iter().zip(&eight.sessions) {
        assert_eq!(a.spec, b.spec, "slot order must match spec order");
        assert_eq!(
            a.trace_hash,
            b.trace_hash,
            "trace diverged for {}",
            a.spec.label()
        );
        assert_eq!(a.efficiency.map(f64::to_bits), b.efficiency.map(f64::to_bits));
        assert_eq!(
            a.avoidable_drops.map(f64::to_bits),
            b.avoidable_drops.map(f64::to_bits)
        );
        assert_eq!(a.quality_changes, b.quality_changes);
        assert_eq!(a.adds, b.adds);
        assert_eq!(a.drops, b.drops);
    }
}

#[test]
fn campaign_sessions_match_standalone_runs() {
    // Running a session inside a parallel campaign must give the same
    // result as running it alone — no cross-session state leaks.
    let spec = sweep();
    let campaign = run_campaign(&spec, 4);
    for (spec, from_campaign) in spec.sessions.iter().zip(&campaign.sessions) {
        let alone = run_session(spec);
        assert_eq!(
            alone.trace_hash,
            from_campaign.trace_hash,
            "campaign run of {} differs from standalone run",
            spec.label()
        );
    }
}

#[test]
fn fingerprint_identical_with_16_workers() {
    // More workers than CPU cores and (with the tiny grid below) more
    // workers than sessions: heavy oversubscription must not perturb a
    // single bit of the aggregate.
    let spec = sweep();
    let one = run_campaign(&spec, 1);
    let sixteen = run_campaign(&spec, 16);
    assert_eq!(one.fingerprint(), sixteen.fingerprint());
    assert_eq!(sixteen.threads, clamped(16, spec.len()));
}

#[test]
fn more_threads_than_sessions_clamps_and_replays() {
    let spec = CampaignSpec::grid(&[TestKind::T1], &[2], &[7, 21], 4.0);
    let wide = run_campaign(&spec, 64);
    assert_eq!(
        wide.threads,
        clamped(64, 2),
        "threads clamp to the session count and host parallelism"
    );
    assert_eq!(wide.sessions.len(), 2);
    let narrow = run_campaign(&spec, 1);
    assert_eq!(wide.fingerprint(), narrow.fingerprint());
}

#[test]
fn empty_campaign_runs_to_an_empty_result() {
    let spec = CampaignSpec::default();
    let r = run_campaign(&spec, 8);
    assert!(r.sessions.is_empty());
    assert_eq!(r.threads, 1, "an empty sweep still clamps to one worker");
    // The fingerprint of emptiness is still well-defined and stable.
    assert_eq!(r.fingerprint(), run_campaign(&spec, 1).fingerprint());
    let folded = run_campaign_fold(&spec, CampaignOptions::new(4), 0usize, |n, _| *n += 1);
    assert_eq!(folded.acc, 0);
    assert_eq!(folded.fingerprint, r.fingerprint());
}

#[test]
fn warm_and_cold_worlds_replay_identically() {
    // The warm-world pool (engine salvage + geometry memo) is pure
    // allocator recycling: against cold per-session worlds the campaign
    // must be bit-identical, across thread counts.
    let spec = sweep();
    let cold = run_campaign_opts(&spec, CampaignOptions::new(1).cold());
    let warm = run_campaign_opts(&spec, CampaignOptions::new(1));
    assert_eq!(cold.fingerprint(), warm.fingerprint());
    let warm4 = run_campaign_opts(&spec, CampaignOptions::new(4));
    assert_eq!(cold.fingerprint(), warm4.fingerprint());
    for (a, b) in cold.sessions.iter().zip(&warm.sessions) {
        assert_eq!(a.trace_hash, b.trace_hash, "warm diverged: {}", a.spec.label());
    }
}

#[test]
fn streaming_fold_matches_full_fingerprint_in_grid_order() {
    let spec = sweep();
    let full = run_campaign(&spec, 1);
    let folded = run_campaign_fold(
        &spec,
        CampaignOptions::new(8),
        Vec::new(),
        |labels: &mut Vec<String>, r| labels.push(r.spec.label()),
    );
    assert_eq!(folded.fingerprint, full.fingerprint());
    assert_eq!(folded.sessions_run, spec.len());
    // The fold saw sessions in grid order regardless of steal order.
    let expected: Vec<String> = spec.sessions.iter().map(|s| s.label()).collect();
    assert_eq!(folded.acc, expected);
}

#[test]
fn different_seeds_produce_different_traces() {
    // Guards against a bug where the seed is ignored and every session
    // replays the same history (which would make the replay tests above
    // pass vacuously).
    let spec = sweep();
    let result = run_campaign(&spec, 2);
    let mut hashes: Vec<u64> = result.sessions.iter().map(|s| s.trace_hash).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), spec.len(), "duplicate traces across the grid");
}
