//! Simulation time: integer nanoseconds for determinism.
//!
//! All event ordering uses `u64` nanoseconds (with a tie-breaking sequence
//! number), so runs are bit-for-bit reproducible; agent-facing APIs convert
//! to `f64` seconds at the boundary.

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Convert seconds to simulation nanoseconds (saturating, rounding).
pub fn secs_to_ns(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let ns = secs * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

/// Convert simulation nanoseconds to seconds.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / NANOS_PER_SEC as f64
}

/// Transmission (serialization) time of `bytes` at `bytes_per_sec`, in ns.
pub fn tx_time_ns(bytes: u32, bytes_per_sec: f64) -> u64 {
    if bytes_per_sec <= 0.0 {
        return u64::MAX;
    }
    secs_to_ns(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for &s in &[0.0, 1e-9, 0.001, 1.0, 3600.0] {
            let ns = secs_to_ns(s);
            assert!((ns_to_secs(ns) - s).abs() < 1e-9, "s={s}");
        }
    }

    #[test]
    fn garbage_seconds_clamp_to_zero() {
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(f64::NAN), 0);
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(secs_to_ns(1e30), u64::MAX);
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        // 1000 bytes at 100 KB/s → 10 ms.
        assert_eq!(tx_time_ns(1_000, 100_000.0), 10_000_000);
        assert_eq!(tx_time_ns(1_000, 0.0), u64::MAX);
    }
}
