//! Multi-backoff buffer requirements: Scenario 1 and Scenario 2 (§4,
//! Appendix A.4/A.5, figures 7 and 14).
//!
//! Real loss patterns are near-random (§3), so the mechanism buffers for up
//! to `K_max` backoffs before adding a layer. The optimal allocation for `k`
//! backoffs depends on *when* they happen; the paper bounds all cases with
//! two extremes:
//!
//! * **Scenario 1** — all `k` backoffs occur back-to-back at the sawtooth
//!   peak: the rate steps from `R` straight down to `R/2^k` and then
//!   recovers linearly. One big deficit triangle.
//! * **Scenario 2** — the backoffs are maximally spread: `k₁` backoffs at
//!   the peak bring the rate just below the consumption rate `n_a·C`, and
//!   each of the remaining `k − k₁` backoffs occurs exactly when the rate
//!   has recovered to `n_a·C` (figure 14). One initial triangle of height
//!   `n_a·C − R/2^{k₁}` plus `k − k₁` identical triangles of height
//!   `n_a·C/2`.
//!
//! `k₁` is the minimum number of backoffs needed to push the transmission
//! rate strictly below the consumption rate; with fewer backoffs there is no
//! draining phase at all and the required buffering is zero.
//!
//! Scenario 1 needs the **most buffering layers** (tallest triangle);
//! Scenario 2 needs the most **total** buffering for the same `k` once
//! `k > k₁`. Buffered data for a *higher* layer can substitute for missing
//! buffer in a *lower* layer (the drain bands can be permuted downward) but
//! not vice versa — which is why the filling order of §4.1 satisfies
//! Scenario 1 states before Scenario 2 states of equal total (see
//! [`crate::states`]).

use crate::geometry::{band_allocation_into, deficit, triangle_area};

/// The two extremal multi-backoff loss patterns of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scenario {
    /// All `k` backoffs at once at the sawtooth peak.
    One,
    /// `k₁` backoffs at the peak, the rest spread at consumption-rate
    /// crossings (figure 14).
    Two,
}

impl Scenario {
    /// Both scenarios, in the order the paper enumerates them.
    pub const ALL: [Scenario; 2] = [Scenario::One, Scenario::Two];
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::One => write!(f, "S1"),
            Scenario::Two => write!(f, "S2"),
        }
    }
}

/// Minimum number of backoffs `k₁ ≥ 1` required to bring `rate` strictly
/// below `consumption` (Appendix A.4). Saturates at 64 (rate underflows to
/// zero long before).
///
/// Equivalent to [`min_backoffs_below_with`] at the paper's AIMD halving
/// factor `0.5` (bit-identical: `x / 2.0 ≡ x * 0.5`).
pub fn min_backoffs_below(rate: f64, consumption: f64) -> u32 {
    min_backoffs_below_with(rate, consumption, 0.5)
}

/// [`min_backoffs_below`] generalized to an arbitrary multiplicative
/// decrease factor: each backoff scales the rate by `decrease_factor`, so
/// gentler controllers need *more* backoffs to fall below consumption.
pub fn min_backoffs_below_with(rate: f64, consumption: f64, decrease_factor: f64) -> u32 {
    debug_assert!(consumption > 0.0);
    debug_assert!(decrease_factor > 0.0 && decrease_factor < 1.0);
    let mut k = 1u32;
    let mut r = rate * decrease_factor;
    while r >= consumption && k < 64 {
        r *= decrease_factor;
        k += 1;
    }
    k
}

/// Total buffer (bytes) required to survive `k` backoffs in `scenario`,
/// starting from transmission rate `rate` with `n_active` layers of
/// consumption `layer_rate` each and additive-increase slope `slope`
/// (Appendix A.4).
pub fn buf_total(
    scenario: Scenario,
    k: u32,
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
) -> f64 {
    buf_total_with(scenario, k, rate, n_active, layer_rate, slope, 0.5)
}

/// [`buf_total`] generalized to an arbitrary multiplicative decrease
/// factor `f`: `k` back-to-back backoffs take the rate to `R·f^k`
/// (Scenario 1), and each spread Scenario-2 backoff from the consumption
/// rate leaves a recurring triangle of height `n_a·C·(1−f)`. Bit-identical
/// to the ungeneralized form at `f = 0.5` (`x / 2^k ≡ x · 0.5^k` and
/// `x / 2 ≡ x · (1 − 0.5)` for every f64).
#[allow(clippy::too_many_arguments)]
pub fn buf_total_with(
    scenario: Scenario,
    k: u32,
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
    decrease_factor: f64,
) -> f64 {
    let consumption = n_active as f64 * layer_rate;
    if consumption <= 0.0 || k == 0 {
        return 0.0;
    }
    let k1 = min_backoffs_below_with(rate, consumption, decrease_factor);
    if k < k1 {
        // Not enough backoffs to create a draining phase at all.
        return 0.0;
    }
    match scenario {
        Scenario::One => {
            let post = rate * decrease_factor.powi(k as i32);
            triangle_area(deficit(consumption, post), slope)
        }
        Scenario::Two => {
            let post = rate * decrease_factor.powi(k1 as i32);
            let first = triangle_area(deficit(consumption, post), slope);
            let recurring = triangle_area(consumption * (1.0 - decrease_factor), slope);
            first + (k - k1) as f64 * recurring
        }
    }
}

/// Maximally efficient per-layer buffer targets (bytes, index 0 = base
/// layer) to survive `k` backoffs in `scenario` (Appendix A.5).
///
/// Scenario 1 is the single-backoff band allocation on the larger triangle
/// (`R` replaced by `R/2^{k-1}` so the post-backoff rate is `R/2^k`).
/// Scenario 2 is the band allocation of the initial triangle plus
/// `k − k₁` times the band allocation of the recurring half-consumption
/// triangle, accumulated per layer.
///
/// The targets always sum to [`buf_total`] for the same arguments (tested,
/// including by property tests).
pub fn per_layer(
    scenario: Scenario,
    k: u32,
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
) -> Vec<f64> {
    per_layer_with(scenario, k, rate, n_active, layer_rate, slope, 0.5)
}

/// [`per_layer`] generalized to an arbitrary decrease factor (see
/// [`buf_total_with`]); bit-identical to the ungeneralized form at `0.5`.
#[allow(clippy::too_many_arguments)]
pub fn per_layer_with(
    scenario: Scenario,
    k: u32,
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
    decrease_factor: f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    per_layer_into_with(
        scenario,
        k,
        rate,
        n_active,
        layer_rate,
        slope,
        decrease_factor,
        &mut out,
        &mut tmp,
    );
    out
}

/// [`per_layer`] writing into caller-provided buffers so the per-tick
/// state-sequence rebuild can recycle allocations. `out` receives the
/// targets (cleared first); `tmp` is scratch for the Scenario-2 recurring
/// triangle. Values are identical to the allocating variant.
#[allow(clippy::too_many_arguments)]
pub fn per_layer_into(
    scenario: Scenario,
    k: u32,
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
    out: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) {
    per_layer_into_with(scenario, k, rate, n_active, layer_rate, slope, 0.5, out, tmp);
}

/// [`per_layer_into`] generalized to an arbitrary decrease factor (see
/// [`buf_total_with`]); bit-identical to the ungeneralized form at `0.5`.
#[allow(clippy::too_many_arguments)]
pub fn per_layer_into_with(
    scenario: Scenario,
    k: u32,
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
    decrease_factor: f64,
    out: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) {
    out.clear();
    let consumption = n_active as f64 * layer_rate;
    if n_active == 0 {
        return;
    }
    if consumption <= 0.0 || k == 0 {
        out.resize(n_active, 0.0);
        return;
    }
    let k1 = min_backoffs_below_with(rate, consumption, decrease_factor);
    if k < k1 {
        out.resize(n_active, 0.0);
        return;
    }
    match scenario {
        Scenario::One => {
            let post = rate * decrease_factor.powi(k as i32);
            band_allocation_into(deficit(consumption, post), layer_rate, slope, n_active, out);
        }
        Scenario::Two => {
            let post = rate * decrease_factor.powi(k1 as i32);
            band_allocation_into(deficit(consumption, post), layer_rate, slope, n_active, out);
            if k > k1 {
                band_allocation_into(
                    consumption * (1.0 - decrease_factor),
                    layer_rate,
                    slope,
                    n_active,
                    tmp,
                );
                let mult = (k - k1) as f64;
                for (s, r) in out.iter_mut().zip(tmp.iter()) {
                    *s += mult * r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 10_000.0;
    const S: f64 = 25_000.0;

    #[test]
    fn k1_is_one_when_one_backoff_suffices() {
        // rate 40 KB/s, consumption 30 KB/s: 20 < 30 after one backoff.
        assert_eq!(min_backoffs_below(40_000.0, 30_000.0), 1);
    }

    #[test]
    fn k1_grows_with_rate_headroom() {
        // rate 130 KB/s, consumption 30 KB/s: 65, 32.5, 16.25 → k1 = 3.
        assert_eq!(min_backoffs_below(130_000.0, 30_000.0), 3);
    }

    #[test]
    fn k1_boundary_requires_strict_drop() {
        // rate/2 exactly equals consumption → no deficit yet, need one more.
        assert_eq!(min_backoffs_below(60_000.0, 30_000.0), 2);
    }

    #[test]
    fn k1_when_rate_already_at_or_below_consumption() {
        assert_eq!(min_backoffs_below(30_000.0, 30_000.0), 1);
        assert_eq!(min_backoffs_below(10_000.0, 30_000.0), 1);
    }

    #[test]
    fn scenarios_agree_at_k_equals_k1() {
        let rate = 40_000.0;
        let n = 3;
        let t1 = buf_total(Scenario::One, 1, rate, n, C, S);
        let t2 = buf_total(Scenario::Two, 1, rate, n, C, S);
        assert!((t1 - t2).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn below_k1_requires_no_buffering() {
        // rate 130 KB/s, 3 layers (30 KB/s): k1 = 3, so k = 2 needs nothing.
        assert_eq!(buf_total(Scenario::One, 2, 130_000.0, 3, C, S), 0.0);
        assert_eq!(buf_total(Scenario::Two, 2, 130_000.0, 3, C, S), 0.0);
    }

    #[test]
    fn scenario1_total_matches_triangle() {
        // rate 40 KB/s, 3 layers, k = 2 → post-rate 10 KB/s, deficit 20 KB/s.
        let t = buf_total(Scenario::One, 2, 40_000.0, 3, C, S);
        let expect = 20_000.0f64.powi(2) / (2.0 * S);
        assert!((t - expect).abs() < 1e-6);
    }

    #[test]
    fn scenario2_total_adds_recurring_triangles() {
        // rate 40 KB/s, 3 layers: k1 = 1, first triangle deficit 10 KB/s.
        // k = 3 adds two triangles of deficit 15 KB/s each.
        let t = buf_total(Scenario::Two, 3, 40_000.0, 3, C, S);
        let first = 10_000.0f64.powi(2) / (2.0 * S);
        let rec = 15_000.0f64.powi(2) / (2.0 * S);
        assert!((t - (first + 2.0 * rec)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn scenario2_needs_more_total_than_scenario1_for_spread_losses() {
        // Paper §4: for the same k > k1 the spread pattern eventually costs
        // more total buffering than the all-at-once pattern cannot keep up
        // with, because each recovery climbs all the way back to n_a·C.
        let rate = 40_000.0;
        let n = 3;
        let s1 = buf_total(Scenario::One, 5, rate, n, C, S);
        let s2 = buf_total(Scenario::Two, 5, rate, n, C, S);
        assert!(s2 > s1, "s2 {s2} should exceed s1 {s1} at large k");
    }

    #[test]
    fn scenario1_needs_more_buffering_layers() {
        // Scenario 1's triangle is taller → spreads over more layers.
        let rate = 40_000.0;
        let n = 5;
        let p1 = per_layer(Scenario::One, 3, rate, n, C, S);
        let p2 = per_layer(Scenario::Two, 3, rate, n, C, S);
        let n_b1 = p1.iter().filter(|&&x| x > 0.0).count();
        let n_b2 = p2.iter().filter(|&&x| x > 0.0).count();
        assert!(n_b1 >= n_b2, "p1={p1:?} p2={p2:?}");
    }

    #[test]
    fn per_layer_sums_to_total_both_scenarios() {
        for &scenario in &Scenario::ALL {
            for k in 1..=8u32 {
                for n in 1..=6usize {
                    for &rate in &[15_000.0, 40_000.0, 90_000.0, 200_000.0] {
                        let shares = per_layer(scenario, k, rate, n, C, S);
                        let total: f64 = shares.iter().sum();
                        let expect = buf_total(scenario, k, rate, n, C, S);
                        assert!(
                            (total - expect).abs() < 1e-6 * expect.max(1.0),
                            "{scenario} k={k} n={n} rate={rate}: {total} vs {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn per_layer_is_non_increasing_with_layer_index() {
        for &scenario in &Scenario::ALL {
            let shares = per_layer(scenario, 4, 55_000.0, 5, C, S);
            for w in shares.windows(2) {
                assert!(w[0] >= w[1] - 1e-9, "{scenario}: {shares:?}");
            }
        }
    }

    #[test]
    fn buf_total_monotone_in_k() {
        for &scenario in &Scenario::ALL {
            let mut prev = 0.0;
            for k in 1..=10 {
                let t = buf_total(scenario, k, 80_000.0, 4, C, S);
                assert!(t >= prev, "{scenario} k={k}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn half_factor_variants_are_bit_identical() {
        for &scenario in &Scenario::ALL {
            for k in 1..=8u32 {
                for n in 1..=5usize {
                    for &rate in &[15_000.0, 40_000.0, 90_000.0, 131_072.0, 200_000.0] {
                        let t_old = buf_total(scenario, k, rate, n, C, S);
                        let t_new = buf_total_with(scenario, k, rate, n, C, S, 0.5);
                        assert_eq!(
                            t_old.to_bits(),
                            t_new.to_bits(),
                            "{scenario} k={k} n={n} rate={rate}"
                        );
                        let p_old = per_layer(scenario, k, rate, n, C, S);
                        let p_new = per_layer_with(scenario, k, rate, n, C, S, 0.5);
                        for (a, b) in p_old.iter().zip(p_new.iter()) {
                            assert_eq!(a.to_bits(), b.to_bits());
                        }
                        assert_eq!(
                            min_backoffs_below(rate, n as f64 * C),
                            min_backoffs_below_with(rate, n as f64 * C, 0.5)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gentler_factor_needs_more_backoffs_below_consumption() {
        // 130 KB/s over 30 KB/s: halving needs 3 backoffs; at 0.85 the rate
        // shrinks ~15% per backoff and needs 10.
        assert_eq!(min_backoffs_below_with(130_000.0, 30_000.0, 0.5), 3);
        assert_eq!(min_backoffs_below_with(130_000.0, 30_000.0, 0.7), 5);
        assert_eq!(min_backoffs_below_with(130_000.0, 30_000.0, 0.85), 10);
    }

    #[test]
    fn gentler_factor_shrinks_scenario_totals() {
        // Same k back-to-back backoffs: a gentler controller retains more
        // rate, so both the Scenario-1 triangle and the Scenario-2
        // recurring triangles shrink monotonically with the factor.
        let rate = 40_000.0;
        let n = 3;
        for &scenario in &Scenario::ALL {
            let t50 = buf_total_with(scenario, 4, rate, n, C, S, 0.5);
            let t70 = buf_total_with(scenario, 4, rate, n, C, S, 0.7);
            let t85 = buf_total_with(scenario, 4, rate, n, C, S, 0.85);
            assert!(t50 > t70 && t70 > t85, "{scenario}: {t50} {t70} {t85}");
        }
    }

    #[test]
    fn per_layer_with_sums_to_total_for_nonhalf_factors() {
        for &f in &[0.7, 0.85] {
            for &scenario in &Scenario::ALL {
                for k in 1..=8u32 {
                    for n in 1..=6usize {
                        for &rate in &[15_000.0, 40_000.0, 90_000.0] {
                            let shares = per_layer_with(scenario, k, rate, n, C, S, f);
                            let total: f64 = shares.iter().sum();
                            let expect = buf_total_with(scenario, k, rate, n, C, S, f);
                            assert!(
                                (total - expect).abs() < 1e-6 * expect.max(1.0),
                                "f={f} {scenario} k={k} n={n} rate={rate}: {total} vs {expect}"
                            );
                            for w in shares.windows(2) {
                                assert!(w[0] >= w[1] - 1e-9, "f={f}: {shares:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_layers_yield_empty_or_zero() {
        assert!(per_layer(Scenario::One, 2, 40_000.0, 0, C, S).is_empty());
        assert_eq!(buf_total(Scenario::One, 2, 40_000.0, 0, C, S), 0.0);
    }
}
