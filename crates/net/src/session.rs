//! End-to-end loopback sessions: server + client + bottleneck shaper (+
//! optional unresponsive cross-traffic), all in-process — the substitute
//! for the paper's real-Internet experiments (see DESIGN.md).
//!
//! Topology:
//!
//! ```text
//! server ──▶ data shaper (bandwidth, delay, drop-tail) ──▶ client
//! client ──▶ ack shaper (ample bandwidth, delay)       ──▶ server
//! cbr    ──▶ data shaper (same queue!)                 ──▶ sink
//! ```
//!
//! The CBR source shares the data shaper's queue, so it congests the
//! "path" exactly like the paper's competing load.

use crate::client::{run_client, ClientConfig, ClientReport};
use crate::server::{serve, ServerConfig, ServerReport};
use crate::shaper::{Shaper, ShaperConfig};
use laqa_core::QaConfig;
use laqa_layered::{LayeredEncoding, LayeredStream};
use laqa_rap::RapConfig;
use tokio::net::UdpSocket;
use tokio::time::Duration;

/// Parameters of a loopback session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Data-path shaper (the bottleneck).
    pub shaper: ShaperConfig,
    /// RAP parameters for the QA flow.
    pub rap: RapConfig,
    /// QA parameters.
    pub qa: QaConfig,
    /// Session duration (seconds).
    pub duration: f64,
    /// Allocation period (seconds).
    pub tick_dt: f64,
    /// Optional unresponsive cross-traffic `(rate_bytes_per_sec,
    /// packet_size, start_frac, stop_frac)` through the same bottleneck;
    /// fractions are of `duration`.
    pub cross_traffic: Option<(f64, usize, f64, f64)>,
    /// Layers `0..n` protected by selective retransmission (0 = off).
    pub retransmit_protect: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            shaper: ShaperConfig {
                bandwidth: 40_000.0,
                delay: Duration::from_millis(20),
                queue_packets: 30,
                ..ShaperConfig::default()
            },
            rap: RapConfig {
                packet_size: 500.0,
                initial_rate: 2_000.0,
                initial_rtt: 0.08,
                max_rate: 60_000.0,
                ..RapConfig::default()
            },
            qa: QaConfig {
                layer_rate: 5_000.0,
                max_layers: 6,
                k_max: 2,
                underflow_slack_bytes: 2_000.0,
                ..QaConfig::default()
            },
            duration: 10.0,
            tick_dt: 0.05,
            cross_traffic: None,
            retransmit_protect: 0,
        }
    }
}

/// Everything observed during a session.
#[derive(Debug)]
pub struct SessionReport {
    /// Server-side observations.
    pub server: ServerReport,
    /// Client-side observations.
    pub client: ClientReport,
    /// Packets the bottleneck dropped.
    pub bottleneck_drops: u64,
    /// Packets the bottleneck forwarded.
    pub bottleneck_forwarded: u64,
}

/// Run a complete loopback session.
pub async fn run_session(cfg: SessionConfig) -> std::io::Result<SessionReport> {
    let data_shaper = Shaper::spawn(cfg.shaper).await?;
    let ack_shaper = Shaper::spawn(ShaperConfig {
        bandwidth: 12_500_000.0,
        delay: cfg.shaper.delay,
        queue_packets: 10_000,
        ..ShaperConfig::default()
    })
    .await?;

    let server_sock = UdpSocket::bind("127.0.0.1:0").await?;
    let client_sock = UdpSocket::bind("127.0.0.1:0").await?;
    let server_addr = server_sock.local_addr()?;
    let client_addr = client_sock.local_addr()?;
    data_shaper.add_route(server_addr, client_addr);
    ack_shaper.add_route(client_addr, server_addr);

    let encoding =
        LayeredEncoding::linear(cfg.qa.max_layers, cfg.qa.layer_rate).expect("valid encoding");
    let stream = LayeredStream::new(encoding, cfg.duration.max(60.0), 4_096);

    let server_cfg = ServerConfig {
        rap: cfg.rap.clone(),
        qa: cfg.qa.clone(),
        tick_dt: cfg.tick_dt,
        duration: cfg.duration,
        flow: 1,
        peer: data_shaper.addr,
        retransmit_protect: cfg.retransmit_protect,
    };
    let client_cfg = ClientConfig {
        flow: 1,
        // Margin over the server's threshold: the server learns of
        // deliveries an RTT late, so the client must not start earlier
        // than the server's accounting.
        startup_secs: 2.0 * cfg.qa.startup_buffer_secs,
        adv_dt: cfg.tick_dt,
        idle_timeout: Duration::from_secs(5),
        peer: ack_shaper.addr,
    };

    // Optional cross-traffic through the same shaper queue.
    let cross = if let Some((rate, pkt, start_frac, stop_frac)) = cfg.cross_traffic {
        let src = UdpSocket::bind("127.0.0.1:0").await?;
        let sink = UdpSocket::bind("127.0.0.1:0").await?;
        data_shaper.add_route(src.local_addr()?, sink.local_addr()?);
        let shaper_addr = data_shaper.addr;
        let start = Duration::from_secs_f64(cfg.duration * start_frac);
        let stop = Duration::from_secs_f64(cfg.duration * stop_frac);
        Some(tokio::spawn(async move {
            let _sink = sink; // keep bound so packets have a destination
            tokio::time::sleep(start).await;
            let payload = vec![0u8; pkt];
            let gap = Duration::from_secs_f64(pkt as f64 / rate);
            let t0 = tokio::time::Instant::now();
            while t0.elapsed() < stop - start {
                let _ = src.send_to(&payload, shaper_addr).await;
                tokio::time::sleep(gap).await;
            }
        }))
    } else {
        None
    };

    let stream2 = stream.clone();
    let server_task = tokio::spawn(serve(server_sock, server_cfg, stream));
    let client_task = tokio::spawn(run_client(client_sock, client_cfg, stream2));

    let server = server_task.await.expect("server task")?;
    let client = client_task.await.expect("client task")?;
    if let Some(c) = cross {
        c.abort();
    }

    Ok(SessionReport {
        server,
        client,
        bottleneck_drops: data_shaper.dropped(),
        bottleneck_forwarded: data_shaper.forwarded(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn loopback_session_streams_and_adapts() {
        let cfg = SessionConfig {
            duration: 6.0,
            ..SessionConfig::default()
        };
        let report = run_session(cfg).await.expect("session runs");
        assert!(
            report.server.sent_packets > 100,
            "sent {}",
            report.server.sent_packets
        );
        assert!(
            report.client.received > 50,
            "received {}",
            report.client.received
        );
        assert_eq!(report.client.corrupt, 0, "end-to-end integrity");
        assert!(report.client.got_fin, "clean shutdown");
        // The flow must have grown past the base layer at 40 KB/s capacity
        // with 5 KB/s layers.
        let peak = report.server.n_active_trace.max().unwrap_or(0.0);
        assert!(peak >= 2.0, "peak layers {peak}");
        // And the bottleneck must have actually shaped (backoffs happen on
        // queue overflow once the rate exceeds 40 KB/s).
        assert!(
            report.server.backoffs >= 1,
            "backoffs {}",
            report.server.backoffs
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn cross_traffic_reduces_quality() {
        let mut cfg = SessionConfig {
            duration: 9.0,
            ..SessionConfig::default()
        };
        cfg.cross_traffic = Some((20_000.0, 500, 0.4, 0.8));
        let report = run_session(cfg).await.expect("session runs");
        let n = &report.server.n_active_trace;
        let before = n
            .points
            .iter()
            .filter(|&&(t, _)| t > 1.5 && t < 3.5)
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        let during = n
            .points
            .iter()
            .filter(|&&(t, _)| t > 4.5 && t < 7.0)
            .map(|&(_, v)| v)
            .fold(f64::MAX, f64::min);
        assert!(
            during <= before,
            "cross traffic should not raise quality: before {before}, during {during}"
        );
        assert!(report.bottleneck_drops > 0, "cross traffic must congest");
    }
}
