//! `laqa` — command-line driver for the quality-adaptation toolkit.
//!
//! ```text
//! laqa sim    [--test t1|t2] [--kmax N] [--duration S] [--seed N]
//!             [--red] [--loss P] [--retransmit N] [--csv DIR]
//! laqa states [--rate R] [--layers N] [--c C] [--slope S] [--kmax K]
//! laqa bands  [--deficit D] [--layers N] [--c C] [--slope S]
//!             [--exp-base B --exp-factor F]
//! laqa obs-report [--dir DIR]
//! laqa obs-trace  [--dir DIR] [--out FILE]
//! ```

use laqa_bench::cli::Args;
use laqa_bench::{ascii_plot, window_mean};
use laqa_core::geometry::band_allocation;
use laqa_core::nonlinear::{nl_band_allocation, LayerRates};
use laqa_core::StateSequence;
use laqa_sim::{run_scenario, QueueKind, RedConfig, ScenarioConfig};
use laqa_trace::{Recorder, Table};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "sim" => cmd_sim(&args),
        "states" => cmd_states(&args),
        "bands" => cmd_bands(&args),
        "obs-report" => cmd_obs_report(&args),
        "obs-trace" => cmd_obs_trace(&args),
        "help" | "--help" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand '{other}'\n");
            usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() {
    eprintln!(
        "laqa — layered quality adaptation toolkit

subcommands:
  sim         run the paper's T1/T2 workload in the simulator
  states      print the monotone buffer-state path for an operating point
  bands       print the optimal per-layer buffer bands for a deficit
  obs-report  render an observability snapshot written by campaign --obs DIR
  obs-trace   convert a flight-recorder trace (flight.json in --obs DIR)
              to Chrome trace-event JSON for Perfetto / chrome://tracing

the real-socket streaming session lives in the standalone laqa-net
crate (registry deps): cargo run --manifest-path crates/net/Cargo.toml
--bin net_experiment"
    );
}

type AnyError = Box<dyn std::error::Error>;

fn cmd_sim(args: &Args) -> Result<(), AnyError> {
    let test: String = args.get("test", "t1".to_string())?;
    let k_max: u32 = args.get("kmax", 2)?;
    let duration: f64 = args.get("duration", 40.0)?;
    let seed: u64 = args.get("seed", 7)?;
    let mut cfg = match test.as_str() {
        "t1" => ScenarioConfig::t1(k_max, duration, seed),
        "t2" => ScenarioConfig::t2(k_max, duration, seed),
        other => return Err(format!("unknown --test '{other}' (t1|t2)").into()),
    };
    if args.flag("red") {
        cfg.dumbbell.queue_kind = QueueKind::Red(RedConfig::for_queue(cfg.dumbbell.queue_packets));
    }
    cfg.dumbbell.loss_rate = args.get("loss", 0.0)?;
    cfg.retransmit_protect = args.get("retransmit", 0)?;

    println!(
        "running {test} for {duration:.0}s (K_max={k_max}, seed={seed}, {:?})...",
        cfg.dumbbell.queue_kind
    );
    let out = run_scenario(&cfg);
    println!("tx rate : {}", ascii_plot(&out.traces.tx_rate, 64));
    println!("layers  : {}", ascii_plot(&out.traces.n_active, 64));
    println!("queue   : {}", ascii_plot(&out.queue_trace, 64));
    println!();
    println!(
        "mean layers (steady) : {:.2}",
        window_mean(&out.traces.n_active, duration * 0.3, duration).unwrap_or(0.0)
    );
    println!("quality changes      : {}", out.metrics.quality_changes());
    println!("backoffs             : {}", out.backoffs);
    println!("efficiency           : {:?}", out.metrics.efficiency());
    println!("base stalls          : {}", out.metrics.stalls());
    println!("bottleneck drops     : {}", out.bottleneck.dropped);

    if let Some(dir) = args.options.get("csv") {
        let mut rec = Recorder::new();
        rec.insert(out.traces.tx_rate.clone());
        rec.insert(out.traces.n_active.clone());
        rec.insert(out.queue_trace.clone());
        for ts in &out.traces.buffer {
            rec.insert(ts.clone());
        }
        rec.write_csv_dir(dir)?;
        println!("wrote CSVs to {dir}");
    }
    Ok(())
}

/// Load the `metrics.json` / `spans.json` / `events.json` triple written
/// by `campaign --obs DIR` and print it as aligned tables plus the merged
/// event log.
fn cmd_obs_report(args: &Args) -> Result<(), AnyError> {
    let dir: String = args.get("dir", "target/obs".to_string())?;
    let path = std::path::Path::new(&dir);
    let snap = laqa_obs::Snapshot::read_dir(path)
        .map_err(|e| format!("reading obs snapshot from {dir}: {e}"))?;
    print!("{}", snap.render());
    if snap.is_empty() {
        println!("(snapshot is empty — was the run executed with --obs and obs enabled?)");
    }
    Ok(())
}

/// Convert the `flight.json` flight-recorder trace written by
/// `campaign --obs DIR` into Chrome trace-event JSON, then re-parse and
/// validate the written file (span balance, one non-empty track per
/// session) so a malformed or empty export fails loudly — this is the
/// gate `verify.sh` step 10 runs.
fn cmd_obs_trace(args: &Args) -> Result<(), AnyError> {
    let dir: String = args.get("dir", "target/obs".to_string())?;
    let out: String = args.get("out", format!("{dir}/trace.json"))?;
    let flight_path = std::path::Path::new(&dir).join("flight.json");
    let text = std::fs::read_to_string(&flight_path).map_err(|e| {
        format!(
            "reading {}: {e} (was the run executed with --obs so the flight recorder exported?)",
            flight_path.display()
        )
    })?;
    let raw = laqa_trace::parse_json(&text).map_err(|e| format!("parsing flight.json: {e}"))?;
    let trace = laqa_obs::FlightTrace::from_json(&raw)?;
    let chrome = trace.to_chrome();
    std::fs::write(&out, chrome.to_compact()).map_err(|e| format!("writing {out}: {e}"))?;

    // Validate what actually landed on disk, end to end.
    let back = laqa_trace::parse_json(&std::fs::read_to_string(&out)?)
        .map_err(|e| format!("re-parsing {out}: {e}"))?;
    let stats = laqa_trace::validate_chrome(&back).map_err(|e| format!("invalid export: {e}"))?;

    let mut tbl = Table::new("trace tracks", &["track", "events"]);
    for t in stats.tracks.values() {
        tbl.row(vec![t.name.clone(), t.events.to_string()]);
    }
    println!("{}", tbl.render());
    println!(
        "wrote {out}: {} events ({} spans, {} instants, {} counter samples) on {} tracks, {} records evicted",
        stats.events,
        stats.spans,
        stats.instants,
        stats.counters,
        stats.tracks.len(),
        trace.evicted,
    );
    if stats.session_tracks() == 0 {
        return Err("export has no non-empty session track — \
                    was the flight recorder enabled during the run?"
            .into());
    }
    Ok(())
}

fn cmd_states(args: &Args) -> Result<(), AnyError> {
    let rate: f64 = args.get("rate", 60_000.0)?;
    let n: usize = args.get("layers", 5)?;
    let c: f64 = args.get("c", 10_000.0)?;
    let slope: f64 = args.get("slope", 12_500.0)?;
    let k_max: u32 = args.get("kmax", 5)?;
    let seq = StateSequence::build(rate, n, c, slope, k_max);
    println!("k1 = {}", seq.k1);
    let mut headers = vec!["state".to_string(), "k".to_string(), "total".to_string()];
    for i in 0..n {
        headers.push(format!("L{i}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut tbl = Table::new("monotone buffer-state path", &header_refs);
    for st in &seq.states {
        let mut row = vec![
            format!("{}", st.scenario),
            st.k.to_string(),
            format!("{:.0}", st.total()),
        ];
        for i in 0..n {
            row.push(format!("{:.0}", st.per_layer[i]));
        }
        tbl.row(row);
    }
    println!("{}", tbl.render());
    Ok(())
}

fn cmd_bands(args: &Args) -> Result<(), AnyError> {
    let d0: f64 = args.get("deficit", 25_000.0)?;
    let n: usize = args.get("layers", 5)?;
    let c: f64 = args.get("c", 10_000.0)?;
    let slope: f64 = args.get("slope", 12_500.0)?;
    let exp_base: f64 = args.get("exp-base", 0.0)?;
    let shares = if exp_base > 0.0 {
        let factor: f64 = args.get("exp-factor", 2.0)?;
        let rates =
            LayerRates::exponential(n, exp_base, factor).ok_or("invalid exponential spacing")?;
        println!("layer rates: {:?}", rates.rates());
        nl_band_allocation(&rates, n, d0, slope)
    } else {
        band_allocation(d0, c, slope, n)
    };
    let total: f64 = shares.iter().sum();
    let mut tbl = Table::new(
        format!("optimal bands for deficit {d0:.0} B/s"),
        &["layer", "bytes", "% of total"],
    );
    for (i, &s) in shares.iter().enumerate() {
        tbl.row(vec![
            format!("L{i}"),
            format!("{s:.0}"),
            format!("{:.1}%", 100.0 * s / total.max(1e-9)),
        ]);
    }
    println!("{}", tbl.render());
    Ok(())
}
