//! Differential suite for the hostile-network (TraceLink) campaign axis.
//!
//! A trace-driven cell is only usable as a regression anchor if its
//! fingerprint survives every executor and scheduler choice. This suite
//! runs a hostile grid — every [`TraceKind`] including the bonded
//! two-path cell — through {heap, wheel} × {warm, cold, mega} × {1, 8
//! threads} and demands cell-by-cell trace-hash equality, then composes
//! the full-intensity fault suite on top of an LTE/bufferbloat trace and
//! demands the run both survives and replays bit-identically.

use laqa_sim::{
    run_campaign_opts, CampaignOptions, CampaignSpec, SchedulerKind, SessionResult, TestKind,
    TraceKind, Transport,
};

fn hostile_spec(duration: f64, fault_intensity: Option<f64>) -> CampaignSpec {
    CampaignSpec::hostile_grid(
        &[TestKind::T1],
        &TraceKind::ALL,
        &[Transport::Rap],
        &[2],
        &[11],
        duration,
        fault_intensity,
    )
}

fn cell_hashes(results: &[SessionResult]) -> Vec<(String, u64)> {
    results
        .iter()
        .map(|s| (s.spec.label(), s.trace_hash))
        .collect()
}

#[test]
fn hostile_grid_is_invariant_across_schedulers_executors_and_threads() {
    let spec = hostile_spec(6.0, None);
    assert_eq!(spec.sessions.len(), TraceKind::ALL.len());

    let baseline = run_campaign_opts(&spec, CampaignOptions::new(1));
    for s in &baseline.sessions {
        assert!(
            s.trace_changes > 0,
            "{}: the trace must actually move the link",
            s.spec.label()
        );
    }
    let want = cell_hashes(&baseline.sessions);

    for sched in [SchedulerKind::Reference, SchedulerKind::Wheel] {
        for threads in [1usize, 8] {
            let variants: [(&str, CampaignOptions); 3] = [
                ("warm", CampaignOptions::new(threads).sched(sched)),
                ("cold", CampaignOptions::new(threads).sched(sched).cold()),
                ("mega", CampaignOptions::new(threads).sched(sched).mega()),
            ];
            for (name, opts) in variants {
                let got = run_campaign_opts(&spec, opts);
                assert_eq!(
                    cell_hashes(&got.sessions),
                    want,
                    "{sched:?}/{name}/{threads} threads diverged cell-by-cell"
                );
                assert_eq!(
                    got.fingerprint(),
                    baseline.fingerprint(),
                    "{sched:?}/{name}/{threads} threads: campaign fingerprint drifted"
                );
            }
        }
    }
}

#[test]
fn bonded_cell_stripes_across_both_legs() {
    let spec = CampaignSpec::hostile_grid(
        &[TestKind::T1],
        &[TraceKind::Bonded],
        &[Transport::Rap],
        &[2],
        &[11],
        8.0,
        None,
    );
    let result = run_campaign_opts(&spec, CampaignOptions::new(1));
    let s = &result.sessions[0];
    let leg_bytes = s
        .bond_leg_bytes
        .expect("bonded cell must report second-leg stats");
    assert!(
        leg_bytes > 0,
        "the second path must carry real traffic, not just exist"
    );
    assert!(
        s.layer_change_rate.is_finite() && s.backoffs > 0,
        "bonded cell must complete with sane metrics"
    );
}

#[test]
fn hostile_cells_diverge_from_the_steady_baseline_and_each_other() {
    // The axis must not be cosmetic: each trace family has to change the
    // trajectory, and the families must be mutually distinguishable.
    let steady = CampaignSpec::grid(&[TestKind::T1], &[2], &[11], 6.0);
    let flat = run_campaign_opts(&steady, CampaignOptions::new(1));
    let hostile = run_campaign_opts(&hostile_spec(6.0, None), CampaignOptions::new(1));
    let mut seen = vec![flat.sessions[0].trace_hash];
    for s in &hostile.sessions {
        assert!(
            !seen.contains(&s.trace_hash),
            "{}: trace cell collided with an earlier trajectory",
            s.spec.label()
        );
        seen.push(s.trace_hash);
    }
}

#[test]
fn faults_compose_with_traces_at_full_intensity() {
    // The hardest cell in the corpus: the complete fault suite at
    // intensity 1.0 running on top of a hostile trace. It must survive
    // with bounded base-layer damage and replay bit-identically, warm or
    // mega.
    let spec = CampaignSpec::hostile_grid(
        &[TestKind::T1],
        &[TraceKind::Lte, TraceKind::Bloat],
        &[Transport::Rap],
        &[2],
        &[11],
        12.0,
        Some(1.0),
    );
    let a = run_campaign_opts(&spec, CampaignOptions::new(2));
    let b = run_campaign_opts(&spec, CampaignOptions::new(2).mega());
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "faults-on-trace must stay executor-invariant"
    );
    for s in &a.sessions {
        assert!(
            s.fault_transitions > 0,
            "{}: the suite at 1.0 must fire within 12 s",
            s.spec.label()
        );
        assert!(
            s.trace_changes > 0,
            "{}: the trace must keep moving under faults",
            s.spec.label()
        );
        assert!(
            s.layer_change_rate.is_finite() && s.base_starved_bytes.is_finite(),
            "{}: metrics must stay finite",
            s.spec.label()
        );
        assert!(
            s.stalls <= 4,
            "{}: base layer must not wedge (stalls {})",
            s.spec.label(),
            s.stalls
        );
    }
}
