//! Cross-flow statistics: fairness and sharing summaries for the
//! competition experiments (the paper's premise is that RAP — and
//! therefore the QA flow — shares bandwidth in a TCP-friendly way).

/// Jain's fairness index over per-flow allocations:
/// `(Σx)² / (n·Σx²)` — 1.0 is perfectly fair, `1/n` maximally unfair.
/// `None` when `xs` is empty or all-zero.
pub fn jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sq))
}

/// Summary of how a set of flows shared a link.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingSummary {
    /// Number of flows.
    pub n: usize,
    /// Aggregate throughput (bytes/s).
    pub total: f64,
    /// Mean per-flow throughput.
    pub mean: f64,
    /// Jain's fairness index.
    pub fairness: f64,
    /// max/min ratio (∞ if any flow starved completely).
    pub max_min_ratio: f64,
}

/// Summarize per-flow throughputs; `None` for empty input.
pub fn summarize_sharing(xs: &[f64]) -> Option<SharingSummary> {
    if xs.is_empty() {
        return None;
    }
    let total: f64 = xs.iter().sum();
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    Some(SharingSummary {
        n: xs.len(),
        total,
        mean: total / xs.len() as f64,
        fairness: jain_fairness(xs)?,
        max_min_ratio: if min > 0.0 { max / min } else { f64::INFINITY },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_is_one_for_equal_shares() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_one_over_n_for_single_hog() {
        let f = jain_fairness(&[12.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_rejects_degenerate_inputs() {
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0.0, 0.0]), None);
    }

    #[test]
    fn sharing_summary_fields() {
        let s = summarize_sharing(&[10.0, 20.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.total, 30.0);
        assert_eq!(s.mean, 15.0);
        assert_eq!(s.max_min_ratio, 2.0);
        assert!(s.fairness > 0.88 && s.fairness < 0.92);
    }

    #[test]
    fn starved_flow_gives_infinite_ratio() {
        let s = summarize_sharing(&[10.0, 0.0]).unwrap();
        assert!(s.max_min_ratio.is_infinite());
    }
}
