//! Megasession engine: many QA/RAP sessions multiplexed on one shared
//! event queue (one timer wheel, one packet arena).
//!
//! A campaign of N sessions used to be N independent [`World`]s, each
//! with its own scheduler, even though the sessions share no state — so
//! per-session setup (queue construction, wheel cursor scans over sparse
//! occupancy) was paid N times. [`MegaEngine`] instead absorbs unstarted
//! worlds into a struct-of-arrays [`SessionTable`] and runs them all on a
//! single queue whose events carry a `(session, epoch)` tag.
//!
//! **Equivalence argument.** Sessions share nothing mutable except the
//! queue and the global insertion-sequence counter. Every event a session
//! schedules gets a globally increasing `seq`, so the *relative* insertion
//! order of one session's events is the same as it would be in isolation;
//! the queue dispatches in `(time, seq)` order, so the subsequence of
//! dispatches belonging to one session is exactly its isolated dispatch
//! sequence; each dispatch runs the same shared
//! [`crate::engine::dispatch_event`] code against per-session state and a
//! per-session RNG. By induction over dispatches, every session's
//! trajectory is bit-identical to an isolated run — cross-session
//! interleaving at equal timestamps is unobservable because no state
//! crosses sessions. `tests/mega_differential.rs` and
//! `tests/mega_properties.rs` pin this.
//!
//! **Batching.** Events due at one timestamp are drained together and
//! stable-sorted by session slot, so consecutive dispatches hit one
//! session's cache-warm columns; stability preserves each session's
//! `seq` order, which is all correctness needs. Events scheduled *during*
//! the batch for the same timestamp are drained and dispatched in
//! follow-up rounds before time advances — exactly where the queue would
//! have placed them (they carry larger seqs than anything drained
//! earlier).
//!
//! **Teardown.** Retiring a session bumps its slot's epoch; events still
//! in the shared queue for the old occupant are lazily dropped when they
//! surface (counted as `mega.token_recycles`), so a reused slot can never
//! receive a predecessor's timers.

use crate::engine::{
    dispatch_agent, dispatch_event, Agent, Event, MegaEvent, MegaEventKind, QueueRef, SessionCore,
    World, WorldSalvage,
};
use crate::link::{LinkConfig, LinkStats};
use crate::packet::{AgentId, LinkId};
use crate::sched::{ambient_scheduler, AnyScheduler, Scheduler, SchedulerKind};
use crate::time::{ns_to_secs, secs_to_ns};

/// Handle to a session inside a [`MegaEngine`]: its table slot plus the
/// epoch the slot had when the session was admitted. Stale handles (from
/// before a slot was recycled) are detected and rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionId {
    slot: u32,
    epoch: u32,
}

impl SessionId {
    /// The session's slot index (stable while the session is live).
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

/// Struct-of-arrays session state: column `i` of every vector belongs to
/// the session in slot `i`. Splitting the columns (instead of a
/// `Vec<Session>` of structs) lets the dispatch loop borrow one session's
/// core and agents without touching its neighbours', and keeps the
/// per-slot bookkeeping (epochs, offsets, liveness) densely packed for
/// the batch grouping pass.
#[derive(Default)]
struct SessionTable {
    /// Per-session engine state (clock, links, RNG, counters).
    cores: Vec<SessionCore>,
    /// Per-session agent columns.
    agents: Vec<Vec<Option<Box<dyn Agent>>>>,
    /// Slot reuse guard: bumped on retire, checked on every dispatch.
    epochs: Vec<u32>,
    /// Global time of each session's local zero (its start offset).
    offsets_ns: Vec<u64>,
    /// Global time past which the session's events are dropped
    /// (an isolated `run_until` would have left them unprocessed).
    ends_ns: Vec<u64>,
    /// Slot occupancy.
    live: Vec<bool>,
    /// Free slots, reused LIFO.
    free: Vec<u32>,
}

/// Read-only view of one live session inside a [`MegaEngine`], for stats
/// extraction after a run — the megasession analogue of the accessor
/// surface on [`World`].
pub struct MegaSessionView<'a> {
    core: &'a SessionCore,
    agents: &'a [Option<Box<dyn Agent>>],
}

impl MegaSessionView<'_> {
    /// Typed view of an agent (e.g. to pull stats after a run).
    pub fn agent<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agents.get(id)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Counters of a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.core.links[link].stats
    }

    /// Current configuration of a link.
    pub fn link_config(&self, link: LinkId) -> LinkConfig {
        self.core.links[link].cfg
    }

    /// Events dispatched for this session so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }
}

/// Multiplexes many sessions on one shared event queue. See the module
/// docs for the equivalence and teardown story.
pub struct MegaEngine {
    /// Global clock (nanoseconds). Session-local time is
    /// `now_ns - offsets_ns[slot]`.
    now_ns: u64,
    /// Global insertion sequence shared by every session.
    seq: u64,
    queue: AnyScheduler<MegaEvent>,
    table: SessionTable,
    /// Solo queues taken from absorbed worlds, handed back (reset) with
    /// the [`WorldSalvage`] of retired sessions so warm pools keep their
    /// scheduler capacity.
    spare_queues: Vec<AnyScheduler<Event>>,
    /// Scratch for one timestamp's batch (capacity reused across ticks).
    batch: Vec<MegaEvent>,
    /// Stale events dropped by the epoch guard since construction.
    token_recycles: u64,
    /// Live sessions.
    live_count: usize,
}

impl MegaEngine {
    /// New empty engine on the ambient scheduler kind.
    pub fn new() -> Self {
        Self::with_scheduler(ambient_scheduler())
    }

    /// New empty engine on an explicit scheduler kind. As with solo
    /// worlds, the kind changes wall-clock speed only, never results.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        MegaEngine {
            now_ns: 0,
            seq: 0,
            queue: AnyScheduler::new(kind),
            table: SessionTable::default(),
            spare_queues: Vec::new(),
            batch: Vec::new(),
            token_recycles: 0,
            live_count: 0,
        }
    }

    /// Which event-scheduler implementation the shared queue runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Current global simulation time (seconds).
    pub fn now(&self) -> f64 {
        ns_to_secs(self.now_ns)
    }

    /// Stale events dropped by the epoch guard (each one is a timer or
    /// packet of an already-retired session that surfaced after its slot
    /// was freed or reused).
    pub fn token_recycles(&self) -> u64 {
        self.token_recycles
    }

    /// Live (admitted, not retired) sessions.
    pub fn sessions_live(&self) -> usize {
        self.live_count
    }

    /// Pre-size the session table for `sessions` more sessions and the
    /// shared queue (wheel slab / heap array) for `events_hint` more
    /// in-flight events, so absorbing a batch grows storage once.
    pub fn reserve(&mut self, sessions: usize, events_hint: usize) {
        self.table.cores.reserve(sessions);
        self.table.agents.reserve(sessions);
        self.table.epochs.reserve(sessions);
        self.table.offsets_ns.reserve(sessions);
        self.table.ends_ns.reserve(sessions);
        self.table.live.reserve(sessions);
        self.queue.reserve(events_hint);
    }

    /// Absorb an unstarted [`World`] as a new session that starts (agents'
    /// `start()` callbacks) at global time `start_at` seconds — its local
    /// clock runs from zero there — and stops processing events
    /// `duration` simulated seconds later, exactly like an isolated
    /// `world.run_until(duration)`.
    ///
    /// The world's own queue must be empty (nothing schedules before
    /// start); it is banked and handed back with a retired session's
    /// [`WorldSalvage`]. Slots of retired sessions are reused LIFO.
    pub fn add_world(&mut self, world: World, start_at: f64, duration: f64) -> SessionId {
        let start_ns = secs_to_ns(start_at);
        assert!(
            start_ns >= self.now_ns,
            "session start {start_at}s precedes engine time {}s",
            self.now()
        );
        assert!(!world.started, "absorbed world must be unstarted");
        assert!(
            world.queue.is_empty(),
            "absorbed world must have an empty event queue"
        );
        let World {
            core,
            queue,
            agents,
            ..
        } = world;
        self.spare_queues.push(queue);
        let end_ns = start_ns.saturating_add(secs_to_ns(duration.max(0.0)));
        let slot = match self.table.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.table.cores[i] = core;
                self.table.agents[i] = agents;
                self.table.offsets_ns[i] = start_ns;
                self.table.ends_ns[i] = end_ns;
                self.table.live[i] = true;
                slot
            }
            None => {
                let slot = u32::try_from(self.table.cores.len()).expect("session table overflow");
                self.table.cores.push(core);
                self.table.agents.push(agents);
                self.table.epochs.push(0);
                self.table.offsets_ns.push(start_ns);
                self.table.ends_ns.push(end_ns);
                self.table.live.push(true);
                slot
            }
        };
        self.live_count += 1;
        laqa_obs::gauge!("mega.sessions_live").set(self.live_count as f64);
        let epoch = self.table.epochs[slot as usize];
        self.queue.schedule(
            start_ns,
            self.seq,
            MegaEvent {
                session: slot,
                epoch,
                kind: MegaEventKind::Start,
            },
        );
        self.seq += 1;
        SessionId { slot, epoch }
    }

    /// Read-only view of a live session for stats extraction.
    ///
    /// # Panics
    /// On a stale (already-retired slot) handle.
    pub fn session(&self, sid: SessionId) -> MegaSessionView<'_> {
        let i = sid.slot as usize;
        assert!(
            self.table.live[i] && self.table.epochs[i] == sid.epoch,
            "stale session handle: slot {} epoch {}",
            sid.slot,
            sid.epoch
        );
        MegaSessionView {
            core: &self.table.cores[i],
            agents: &self.table.agents[i],
        }
    }

    /// Retire a session, freeing its slot for reuse and returning its
    /// engine storage as a [`WorldSalvage`] (with one of the banked solo
    /// queues) so warm pools recycle exactly what a solo
    /// [`World::salvage`] would have handed back. Events the session
    /// still has in the shared queue are invalidated by the epoch bump
    /// and dropped lazily when they surface.
    pub fn retire(&mut self, sid: SessionId) -> WorldSalvage {
        let i = sid.slot as usize;
        assert!(
            self.table.live[i] && self.table.epochs[i] == sid.epoch,
            "retire of a dead or recycled session: slot {} epoch {}",
            sid.slot,
            sid.epoch
        );
        self.table.epochs[i] = self.table.epochs[i].wrapping_add(1);
        self.table.live[i] = false;
        self.table.free.push(sid.slot);
        self.live_count -= 1;
        laqa_obs::gauge!("mega.sessions_live").set(self.live_count as f64);

        let core = std::mem::replace(&mut self.table.cores[i], SessionCore::fresh(0));
        let mut agents = std::mem::take(&mut self.table.agents[i]);
        agents.clear();
        let mut queue = self
            .spare_queues
            .pop()
            .unwrap_or_else(|| AnyScheduler::new(self.queue.kind()));
        queue.reset();
        // Mirror World::salvage: link shells move to the spare pool in
        // creation order, the emptied links vector keeps its capacity.
        let SessionCore {
            mut links,
            mut spare_links,
            ..
        } = core;
        spare_links.clear();
        spare_links.append(&mut links);
        WorldSalvage {
            queue,
            links,
            spare_links,
            agents,
        }
    }

    /// Run every session's events up to *global* time `t_end` seconds
    /// (events at exactly `t_end` are processed, as in
    /// [`World::run_until`]). Sessions whose end time has passed drop
    /// their surfacing events; running past every session's end is
    /// harmless.
    pub fn run_until(&mut self, t_end: f64) {
        let end_ns = secs_to_ns(t_end);
        while let Some((time_ns, _, ev)) = self.queue.pop_next_at_or_before(end_ns) {
            self.now_ns = time_ns;
            let mut batch = std::mem::take(&mut self.batch);
            batch.push(ev);
            // `time_ns` was the queue's minimum, so this drains exactly
            // the events due at this timestamp, already in seq order.
            while let Some((_, _, more)) = self.queue.pop_next_at_or_before(time_ns) {
                batch.push(more);
            }
            loop {
                // Stable grouping by session: per-session seq order (the
                // only order correctness depends on) is preserved, and
                // consecutive dispatches reuse one session's cache-warm
                // state.
                if batch.len() > 1 {
                    batch.sort_by_key(|e| e.session);
                }
                if laqa_obs::enabled() {
                    laqa_obs::histogram!(
                        "mega.batch_size",
                        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0]
                    )
                    .observe(batch.len() as f64);
                }
                if laqa_obs::flight::enabled() {
                    // Batch dispatches belong to the engine, not any one
                    // session; their order reflects executor scheduling
                    // (see the flight module docs on HOST_TRACK).
                    laqa_obs::flight::set_session(laqa_obs::flight::HOST_TRACK);
                    laqa_obs::flight::instant(
                        "mega.batch",
                        ns_to_secs(time_ns),
                        batch.len() as f64,
                    );
                }
                for ev in batch.drain(..) {
                    self.dispatch(time_ns, ev);
                }
                // Dispatches may have scheduled more events at this very
                // timestamp (zero-delay chains); they carry larger seqs
                // than everything just dispatched, so a follow-up round
                // is exactly the order an isolated world would use.
                while let Some((_, _, more)) = self.queue.pop_next_at_or_before(time_ns) {
                    batch.push(more);
                }
                if batch.is_empty() {
                    break;
                }
            }
            self.batch = batch;
        }
        self.now_ns = self.now_ns.max(end_ns);
        // Sessions that outlived their own end keep their local clock at
        // the last dispatched event; pin it to the session end the way a
        // solo run_until pins `now` to its bound.
        for i in 0..self.table.cores.len() {
            if self.table.live[i] {
                let bound = self.table.ends_ns[i].min(self.now_ns);
                let local_bound = bound.saturating_sub(self.table.offsets_ns[i]);
                let core = &mut self.table.cores[i];
                core.now_ns = core.now_ns.max(local_bound);
            }
        }
    }

    /// Dispatch one tagged event at global `time_ns`.
    fn dispatch(&mut self, time_ns: u64, ev: MegaEvent) {
        let i = ev.session as usize;
        if self.table.epochs[i] != ev.epoch {
            // Scheduled by a previous occupant of this slot (or by this
            // session before it was retired): lazily cancelled.
            self.token_recycles += 1;
            laqa_obs::counter!("mega.token_recycles").inc();
            if laqa_obs::flight::enabled() {
                laqa_obs::flight::set_session(laqa_obs::flight::HOST_TRACK);
                laqa_obs::flight::instant(
                    "mega.stale_drop",
                    ns_to_secs(time_ns),
                    ev.session as f64,
                );
            }
            return;
        }
        debug_assert!(
            self.table.live[i],
            "current-epoch event fired into freed session slot {i}"
        );
        if time_ns > self.table.ends_ns[i] {
            // Past this session's end: an isolated world's run_until
            // would have left the event sitting unprocessed.
            return;
        }
        let offset_ns = self.table.offsets_ns[i];
        let core = &mut self.table.cores[i];
        core.now_ns = time_ns - offset_ns;
        if laqa_obs::flight::enabled() {
            // Timeline records from this dispatch (QA transitions, timer
            // fires, ...) land on the session's own track.
            laqa_obs::flight::set_session(core.flight_id);
        }
        let agents = &mut self.table.agents[i];
        let mut queue = QueueRef::Mega {
            queue: &mut self.queue,
            seq: &mut self.seq,
            session: ev.session,
            epoch: ev.epoch,
            offset_ns,
        };
        match ev.kind {
            MegaEventKind::Start => {
                // The solo engine's lazy start, at the session's offset:
                // one start() sweep over the agent column. Not counted in
                // events_processed (World::ensure_started doesn't count
                // either).
                for id in 0..agents.len() {
                    dispatch_agent(agents, core, &mut queue, id, |a, ctx| a.start(ctx));
                }
            }
            MegaEventKind::Engine(event) => {
                core.events_processed += 1;
                let timed = laqa_obs::enabled().then(std::time::Instant::now);
                dispatch_event(core, agents, &mut queue, event);
                if let Some(t0) = timed {
                    laqa_obs::histogram!("mega.session_event_ns", laqa_obs::LOG_NS_BOUNDS)
                        .observe(t0.elapsed().as_nanos() as f64);
                }
            }
        }
    }
}

impl Default for MegaEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, Route};
    use crate::Ctx;
    use std::any::Any;

    /// Sends `count` packets to `peer` at `interval`, starting at t=0.
    struct Pinger {
        peer: AgentId,
        route: Route,
        count: u32,
        interval: f64,
        sent: u32,
    }
    /// Records `(time, uid)` arrivals.
    struct Sink {
        arrivals: Vec<(f64, u64)>,
    }

    impl Agent for Pinger {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_at(0.0, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            if self.sent >= self.count {
                return;
            }
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: 1,
                size: 1_000,
                kind: PacketKind::Cbr,
                dst: self.peer,
                route: self.route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
            self.sent += 1;
            ctx.set_timer_after(self.interval, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl Agent for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.arrivals.push((ctx.now, pkt.uid));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A two-agent ping world whose trajectory depends on the seed (loss
    /// draws) — enough signal to detect any cross-session bleed.
    fn ping_world(seed: u64, count: u32) -> (World, AgentId) {
        let mut w = World::with_scheduler(seed, SchedulerKind::Wheel);
        let l = w.add_link(LinkConfig {
            bandwidth: 80_000.0,
            delay: 0.004,
            queue_packets: 4,
            loss_rate: 0.1,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l].into(),
            count,
            interval: 0.017,
            sent: 0,
        }));
        (w, sink)
    }

    fn solo_arrivals(seed: u64, count: u32, duration: f64) -> Vec<(f64, u64)> {
        let (mut w, sink) = ping_world(seed, count);
        w.run_until(duration);
        w.agent::<Sink>(sink).unwrap().arrivals.clone()
    }

    #[test]
    fn multiplexed_sessions_match_isolated_runs() {
        let mut engine = MegaEngine::with_scheduler(SchedulerKind::Wheel);
        let mut sids = Vec::new();
        for seed in [3u64, 7, 11, 42] {
            let (w, sink) = ping_world(seed, 40);
            sids.push((seed, engine.add_world(w, 0.0, 2.0), sink));
        }
        engine.run_until(2.0);
        for &(seed, sid, sink) in &sids {
            let mega = engine
                .session(sid)
                .agent::<Sink>(sink)
                .unwrap()
                .arrivals
                .clone();
            assert_eq!(
                mega,
                solo_arrivals(seed, 40, 2.0),
                "seed {seed} diverged under multiplexing"
            );
        }
    }

    #[test]
    fn staggered_starts_run_in_local_time() {
        // The same seed started at three different global offsets must
        // produce identical local-time trajectories.
        let mut engine = MegaEngine::new();
        let mut sids = Vec::new();
        for (k, offset) in [0.0, 0.35, 1.2].into_iter().enumerate() {
            let (w, sink) = ping_world(9, 25);
            sids.push((k, offset, engine.add_world(w, offset, 1.5), sink));
        }
        engine.run_until(3.0);
        let reference = solo_arrivals(9, 25, 1.5);
        for &(k, offset, sid, sink) in &sids {
            let got = engine
                .session(sid)
                .agent::<Sink>(sink)
                .unwrap()
                .arrivals
                .clone();
            assert_eq!(got, reference, "offset {offset} (session {k}) diverged");
        }
    }

    #[test]
    fn retire_returns_salvage_and_frees_slot() {
        let mut engine = MegaEngine::new();
        let (w, sink) = ping_world(5, 10);
        let sid = engine.add_world(w, 0.0, 1.0);
        assert_eq!(engine.sessions_live(), 1);
        engine.run_until(1.0);
        let arrivals = engine
            .session(sid)
            .agent::<Sink>(sink)
            .unwrap()
            .arrivals
            .len();
        assert!(arrivals > 0);
        let salvage = engine.retire(sid);
        assert_eq!(engine.sessions_live(), 0);
        // The salvage is usable for a warm solo world.
        let mut w2 = World::with_salvage(5, SchedulerKind::Wheel, salvage);
        assert_eq!(w2.events_processed(), 0);
        w2.run_until(0.1);
    }

    #[test]
    fn stale_tokens_from_freed_sessions_never_reach_reused_slots() {
        // Session A is retired mid-run with timers and packets still in
        // the shared queue; session B immediately reuses its slot. A's
        // in-flight events must be dropped by the epoch guard — B's
        // trajectory stays bit-identical to an isolated run — and each
        // drop is counted as a token recycle.
        let mut engine = MegaEngine::new();
        let (wa, _) = ping_world(21, 1_000);
        let sid_a = engine.add_world(wa, 0.0, 10.0);
        engine.run_until(0.5);
        let _ = engine.retire(sid_a);

        let (wb, sink_b) = ping_world(33, 30);
        let sid_b = engine.add_world(wb, engine.now(), 2.0);
        assert_eq!(
            sid_b.slot(),
            sid_a.slot(),
            "slot must be reused for the guard to be exercised"
        );
        engine.run_until(engine.now() + 2.0);

        assert!(
            engine.token_recycles() > 0,
            "retiring mid-run must leave stale events for the guard to drop"
        );
        let got = engine
            .session(sid_b)
            .agent::<Sink>(sink_b)
            .unwrap()
            .arrivals
            .clone();
        assert_eq!(
            got,
            solo_arrivals(33, 30, 2.0),
            "reused slot inherited state from the retired session"
        );
    }

    #[test]
    fn session_past_its_end_stops_processing() {
        // One long and one short session: the short one's agents must see
        // nothing after its own end even though the engine runs on.
        let mut engine = MegaEngine::new();
        let (w_short, sink_s) = ping_world(2, 1_000);
        let (w_long, sink_l) = ping_world(4, 1_000);
        let sid_s = engine.add_world(w_short, 0.0, 0.5);
        let sid_l = engine.add_world(w_long, 0.0, 2.0);
        engine.run_until(2.0);
        let short = engine
            .session(sid_s)
            .agent::<Sink>(sink_s)
            .unwrap()
            .arrivals
            .clone();
        assert_eq!(short, solo_arrivals(2, 1_000, 0.5));
        let long = engine
            .session(sid_l)
            .agent::<Sink>(sink_l)
            .unwrap()
            .arrivals
            .clone();
        assert_eq!(long, solo_arrivals(4, 1_000, 2.0));
    }

    #[test]
    fn engine_agrees_across_scheduler_kinds() {
        let run = |kind: SchedulerKind| {
            let mut engine = MegaEngine::with_scheduler(kind);
            let mut sids = Vec::new();
            for seed in [1u64, 2, 3] {
                let (w, sink) = ping_world(seed, 60);
                sids.push((engine.add_world(w, 0.2 * seed as f64, 2.0), sink));
            }
            engine.run_until(3.0);
            sids.iter()
                .map(|&(sid, sink)| {
                    engine
                        .session(sid)
                        .agent::<Sink>(sink)
                        .unwrap()
                        .arrivals
                        .clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(SchedulerKind::Reference), run(SchedulerKind::Wheel));
    }

    #[test]
    fn reserve_is_inert() {
        let mut a = MegaEngine::new();
        a.reserve(64, 4096);
        let mut b = MegaEngine::new();
        for engine in [&mut a, &mut b] {
            let (w, _) = ping_world(13, 20);
            engine.add_world(w, 0.0, 1.0);
            engine.run_until(1.0);
        }
        assert_eq!(a.seq, b.seq, "reserve changed the trajectory");
    }
}
