//! Golden-trace regression tests for the paper's key mechanisms.
//!
//! Each test recomputes a figure's underlying data — fig. 5 (optimal
//! filling), fig. 10 (monotone state sequence), fig. 12 (smoothing
//! sweep) — and compares it against a committed JSON fixture in
//! `tests/goldens/`. The fixtures pin behaviour, not formatting: numbers
//! are compared within a small relative tolerance so harmless float
//! noise (e.g. a re-associated sum) does not trip the suite, while any
//! real drift in the allocation geometry, the state ordering, or the
//! simulated adaptation does.
//!
//! To re-bless after an intentional behaviour change:
//!
//! ```text
//! LAQA_BLESS=1 cargo test -p laqa-apps --test golden_traces
//! ```

use laqa_core::draining::plan_draining;
use laqa_core::filling::next_fill_layer;
use laqa_core::geometry::{band_allocation, buffering_layer_count, deficit, triangle_area};
use laqa_core::StateSequence;
use laqa_sim::{run_scenario, ScenarioConfig};
use laqa_trace::{parse_json, JsonValue, TimeSeries};
use std::path::PathBuf;

const TOLERANCE: f64 = 1e-6;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name)
}

fn num(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

fn arr_f64(vals: &[f64]) -> JsonValue {
    JsonValue::Arr(vals.iter().map(|&v| num(v)).collect())
}

fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Compare `actual` against the committed golden at `name`, or rewrite
/// the golden when `LAQA_BLESS=1` is set.
fn check_golden(name: &str, actual: &JsonValue) {
    let path = golden_path(name);
    if std::env::var("LAQA_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create goldens dir");
        let mut text = actual.to_pretty();
        text.push('\n');
        std::fs::write(&path, text).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with LAQA_BLESS=1 to generate",
            path.display()
        )
    });
    let expected = parse_json(&text).expect("golden parses");
    let mut diffs = Vec::new();
    diff_values(name, &expected, actual, &mut diffs);
    assert!(
        diffs.is_empty(),
        "golden mismatch vs {} ({} diffs):\n{}\nre-bless with LAQA_BLESS=1 if intentional",
        path.display(),
        diffs.len(),
        diffs.join("\n")
    );
}

/// Structural diff with relative tolerance on numbers.
fn diff_values(at: &str, expected: &JsonValue, actual: &JsonValue, diffs: &mut Vec<String>) {
    match (expected, actual) {
        (JsonValue::Num(e), JsonValue::Num(a)) => {
            let scale = 1.0_f64.max(e.abs());
            if (e - a).abs() > TOLERANCE * scale {
                diffs.push(format!("{at}: expected {e}, got {a}"));
            }
        }
        (JsonValue::Arr(e), JsonValue::Arr(a)) => {
            if e.len() != a.len() {
                diffs.push(format!("{at}: array length {} vs {}", e.len(), a.len()));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_values(&format!("{at}[{i}]"), ev, av, diffs);
            }
        }
        (JsonValue::Obj(e), JsonValue::Obj(_)) => {
            for (key, ev) in e {
                match actual.get(key) {
                    Some(av) => diff_values(&format!("{at}.{key}"), ev, av, diffs),
                    None => diffs.push(format!("{at}.{key}: missing in actual")),
                }
            }
        }
        _ if expected == actual => {}
        _ => diffs.push(format!("{at}: expected {expected:?}, got {actual:?}")),
    }
}

/// Figure 5: the optimal inter-layer allocation and the sequential
/// filling order it induces (fig05_optimal_fill logic, pinned).
#[test]
fn fig05_optimal_filling_matches_golden() {
    let c = 10_000.0;
    let s = 12_500.0;
    let n_a = 5usize;
    let rate = 42_000.0;

    let d0 = deficit(n_a as f64 * c, rate / 2.0);
    let n_b = buffering_layer_count(d0, c);
    let shares = band_allocation(d0, c, s, n_a);
    let area = triangle_area(d0, s);

    // Packet-by-packet filling toward the optimal shares; record the
    // run-length-encoded layer order.
    let seq = StateSequence::build(rate, n_a, c, s, 1);
    let mut bufs = vec![0.0f64; n_a];
    let mut runs: Vec<(usize, usize)> = Vec::new();
    while let Some(layer) = next_fill_layer(&seq, &bufs, 1.0) {
        bufs[layer] += 1_000.0;
        match runs.last_mut() {
            Some((l, count)) if *l == layer => *count += 1,
            _ => runs.push((layer, 1)),
        }
        if runs.iter().map(|&(_, n)| n).sum::<usize>() > 10_000 {
            panic!("filling never converged");
        }
    }

    // One drain period from the filled state: upper layers hand off first.
    let plan = plan_draining(&seq, &bufs, rate / 2.0, 0.2, 1.0);

    let actual = obj(vec![
        (
            "params",
            obj(vec![
                ("c", num(c)),
                ("s", num(s)),
                ("n_a", num(n_a as f64)),
                ("rate", num(rate)),
            ]),
        ),
        ("deficit", num(d0)),
        ("buffering_layers", num(n_b as f64)),
        ("total_area", num(area)),
        ("shares", arr_f64(&shares)),
        (
            "fill_runs",
            JsonValue::Arr(
                runs.iter()
                    .map(|&(l, n)| JsonValue::Arr(vec![num(l as f64), num(n as f64)]))
                    .collect(),
            ),
        ),
        ("first_drain_period", arr_f64(&plan.drain)),
    ]);
    check_golden("fig05.json", &actual);
}

/// Figure 10: the monotone step sequence of buffer states — totals
/// strictly increasing, per-layer columns clamped monotone.
#[test]
fn fig10_state_sequence_matches_golden() {
    let c = 10_000.0;
    let s = 12_500.0;
    let n_a = 5usize;
    let rate = 60_000.0;
    let k_max = 5;

    let seq = StateSequence::build(rate, n_a, c, s, k_max);
    let states: Vec<JsonValue> = seq
        .states
        .iter()
        .map(|st| {
            obj(vec![
                ("scenario", JsonValue::Str(format!("{}", st.scenario))),
                ("k", num(st.k as f64)),
                ("raw_total", num(st.raw_total())),
                ("total", num(st.total())),
                ("per_layer", arr_f64(&st.per_layer)),
            ])
        })
        .collect();

    let actual = obj(vec![
        (
            "params",
            obj(vec![
                ("c", num(c)),
                ("s", num(s)),
                ("n_a", num(n_a as f64)),
                ("rate", num(rate)),
                ("k_max", num(k_max as f64)),
            ]),
        ),
        ("k1", num(seq.k1 as f64)),
        ("n_states", num(seq.states.len() as f64)),
        ("states", JsonValue::Arr(states)),
    ]);
    check_golden("fig10.json", &actual);
}

/// Count value changes of a step series within `[t_lo, t_hi)`.
fn changes_within(series: &TimeSeries, t_lo: f64, t_hi: f64) -> usize {
    let vals: Vec<f64> = series
        .points
        .iter()
        .filter(|&&(t, _)| t >= t_lo && t < t_hi)
        .map(|&(_, v)| v)
        .collect();
    vals.windows(2)
        .filter(|w| (w[0] - w[1]).abs() > 1e-9)
        .count()
}

/// Figure 12: the K_max smoothing trade-off on the simulated T1 workload —
/// higher K_max buys fewer quality changes at the cost of more buffering.
#[test]
fn fig12_smoothing_sweep_matches_golden() {
    let duration = 30.0;
    let seed = 7;
    let mut sweep = Vec::new();
    for k_max in [2u32, 4] {
        let out = run_scenario(&ScenarioConfig::t1(k_max, duration, seed));

        let changes = changes_within(&out.traces.n_active, 10.0, duration);
        let steady: Vec<f64> = out
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t > 10.0)
            .map(|&(_, v)| v)
            .collect();
        let mean_layers = steady.iter().sum::<f64>() / steady.len().max(1) as f64;

        let n_points = out.traces.buffer[0].points.len();
        let mut peak_total = 0.0f64;
        for idx in 0..n_points {
            let total: f64 = out
                .traces
                .buffer
                .iter()
                .map(|b| b.points.get(idx).map(|&(_, v)| v.max(0.0)).unwrap_or(0.0))
                .sum();
            peak_total = peak_total.max(total);
        }

        sweep.push(obj(vec![
            ("k_max", num(k_max as f64)),
            ("quality_changes_steady", num(changes as f64)),
            ("mean_layers_steady", num(mean_layers)),
            ("peak_total_buffer", num(peak_total)),
            ("stalls", num(out.metrics.stalls() as f64)),
            ("adds", num(out.metrics.adds() as f64)),
            ("drops", num(out.metrics.drops() as f64)),
        ]));
    }
    let actual = obj(vec![
        (
            "params",
            obj(vec![("duration", num(duration)), ("seed", num(seed as f64))]),
        ),
        ("runs", JsonValue::Arr(sweep)),
    ]);
    check_golden("fig12.json", &actual);
}
