//! Observability must be inert: enabling `laqa-obs` instrumentation may
//! not change a single bit of any campaign fingerprint. This is the
//! in-tree half of the contract; `scripts/verify.sh` step 5 checks the
//! same property end-to-end through the `campaign --obs` CLI.
//!
//! One test function on purpose: the obs enabled flag and registries are
//! process-global, and a single test body is the only way to guarantee
//! the off-run really executes with obs off.

use laqa_sim::{run_campaign, run_campaign_opts, CampaignOptions, CampaignSpec, TestKind};

#[test]
fn fingerprints_identical_with_obs_on_and_off() {
    // 8 s per session: the QA flow joins at t = 5 s (ScenarioConfig
    // default), so anything shorter never exercises the qa.* sites.
    let spec = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &[7, 21], 8.0);

    // Reference sweep with observability off (the default).
    assert!(!laqa_obs::enabled(), "obs must start disabled");
    let off = run_campaign(&spec, 2);
    let off_snapshot = laqa_obs::snapshot();
    assert!(
        off_snapshot.is_empty(),
        "disabled instrumentation recorded state: {off_snapshot:?}"
    );

    // Same sweep with every instrumentation site live.
    laqa_obs::reset();
    laqa_obs::set_enabled(true);
    let on = run_campaign(&spec, 2);
    laqa_obs::set_enabled(false);
    let snap = laqa_obs::snapshot();

    assert_eq!(
        off.fingerprint(),
        on.fingerprint(),
        "enabling obs changed the campaign fingerprint"
    );

    // The enabled run must actually have gone through the instrumented
    // paths — otherwise this test would pass vacuously.
    assert!(snap.counter("qa.ticks").unwrap_or(0) > 0, "no qa.ticks");
    assert!(
        snap.counter("engine.events").unwrap_or(0) > 0,
        "no engine.events"
    );
    assert_eq!(
        snap.counter("campaign.sessions"),
        Some(spec.len() as u64),
        "one campaign.sessions increment per session"
    );
    assert!(
        snap.span("engine.step").map_or(0, |s| s.count) > 0,
        "no engine.step spans"
    );
    assert!(!snap.events.is_empty(), "no events logged");
    let dispatch = snap
        .histogram("sched.dispatch_ns")
        .expect("no sched.dispatch_ns histogram");
    assert!(dispatch.count > 0, "no dispatch latency observations");
    assert!(
        dispatch.quantile(0.99).is_some(),
        "dispatch p99 unavailable despite observations"
    );
    assert!(
        snap.histogram("sched.wheel_horizon_ns").map_or(0, |h| h.count) > 0,
        "no sched.wheel_horizon_ns observations"
    );

    // Per-session metrics are deterministic even though wall time is not.
    for (a, b) in off.sessions.iter().zip(on.sessions.iter()) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(
            a.events_processed, b.events_processed,
            "event count diverged for {:?}",
            a.spec
        );
    }

    // Mega executor: the same inertness contract must hold with every
    // session multiplexed on shared engines, including the mega.* sites.
    // Chunk 2 forces several chunks per worker, so retired sessions leave
    // stale timer tokens behind for later chunks to recycle.
    let mega_opts = CampaignOptions::new(2).mega().mega_chunk(2);
    laqa_obs::reset();
    assert!(!laqa_obs::enabled());
    let mega_off = run_campaign_opts(&spec, mega_opts);
    assert!(
        laqa_obs::snapshot().is_empty(),
        "disabled instrumentation recorded state during mega run"
    );

    laqa_obs::reset();
    laqa_obs::set_enabled(true);
    let mega_on = run_campaign_opts(&spec, mega_opts);
    laqa_obs::set_enabled(false);
    let mega_snap = laqa_obs::snapshot();

    assert_eq!(
        off.fingerprint(),
        mega_off.fingerprint(),
        "mega executor changed the campaign fingerprint"
    );
    assert_eq!(
        mega_off.fingerprint(),
        mega_on.fingerprint(),
        "enabling obs changed the mega campaign fingerprint"
    );

    // The mega instrumentation sites must actually have fired.
    assert!(
        mega_snap.histogram("mega.batch_size").map_or(0, |h| h.count) > 0,
        "no mega.batch_size observations"
    );
    assert!(
        mega_snap.gauge("mega.sessions_live").is_some(),
        "no mega.sessions_live gauge"
    );
    assert!(
        mega_snap.counter("mega.token_recycles").unwrap_or(0) > 0,
        "no mega.token_recycles: chunked retirement should strand stale tokens"
    );
    assert_eq!(
        mega_snap.counter("campaign.sessions"),
        Some(spec.len() as u64),
        "one campaign.sessions increment per mega session"
    );
    assert!(
        mega_snap
            .histogram("mega.session_event_ns")
            .map_or(0, |h| h.count)
            > 0,
        "no mega.session_event_ns observations"
    );

    // Flight recorder: same contract one level up. With the recorder (and
    // obs) live on both executors the fingerprints still cannot move, and
    // the trace must carry the per-session timeline sites.
    laqa_obs::reset();
    laqa_obs::set_enabled(true);
    laqa_obs::flight::set_enabled(true);
    let flight_on = run_campaign(&spec, 2);
    let flight_mega = run_campaign_opts(&spec, mega_opts);
    laqa_obs::flight::set_enabled(false);
    laqa_obs::set_enabled(false);
    let flight = laqa_obs::flight::snapshot_flight();
    laqa_obs::reset();

    assert_eq!(
        off.fingerprint(),
        flight_on.fingerprint(),
        "enabling the flight recorder changed the campaign fingerprint"
    );
    assert_eq!(
        off.fingerprint(),
        flight_mega.fingerprint(),
        "enabling the flight recorder changed the mega campaign fingerprint"
    );
    assert!(!flight.records.is_empty(), "no flight records");
    let has = |name: &str| flight.records.iter().any(|r| r.name == name);
    assert!(has("qa.buf_base"), "no base-buffer samples in flight trace");
    assert!(has("timer.fire"), "no timer.fire instants in flight trace");
    assert!(
        flight
            .records
            .iter()
            .any(|r| r.kind == laqa_obs::FlightKind::State),
        "no QA phase state records in flight trace"
    );
}
