//! The quality-adaptive streaming pair: a RAP source driven by the
//! [`laqa_core::QaController`] and a layered-receiver sink — the system
//! under test in every figure of the paper's §5.

use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, Packet, PacketKind, Route};
use laqa_core::{QaConfig, QaController};
use laqa_layered::{LayeredEncoding, LayeredReceiver};
use laqa_rap::{RapConfig, RapEvent, RapReceiverState, RapSender, RateController};
use laqa_trace::TimeSeries;
use std::any::Any;

const ACK_SIZE: u32 = 40;

/// Per-run traces recorded by the QA source (the figure-11 panels).
#[derive(Debug, Clone)]
pub struct QaTraces {
    /// Total transmission rate (bytes/s) per tick.
    pub tx_rate: TimeSeries,
    /// Aggregate consumption rate `n_active·C` per tick.
    pub consumption: TimeSeries,
    /// Active layer count per tick.
    pub n_active: TimeSeries,
    /// Allocated send rate per layer per tick.
    pub layer_rate: Vec<TimeSeries>,
    /// Buffer-drain rate per layer per tick (`max(0, C − alloc)` while
    /// playing).
    pub drain_rate: Vec<TimeSeries>,
    /// Sender-estimated receiver buffer per layer per tick (bytes).
    pub buffer: Vec<TimeSeries>,
}

impl QaTraces {
    /// Empty trace set for `max_layers` layers.
    pub fn new(max_layers: usize) -> Self {
        let per_layer = |prefix: &str| {
            (0..max_layers)
                .map(|i| TimeSeries::new(format!("{prefix}{i}")))
                .collect::<Vec<_>>()
        };
        QaTraces {
            tx_rate: TimeSeries::new("tx_rate"),
            consumption: TimeSeries::new("consumption"),
            n_active: TimeSeries::new("n_active"),
            layer_rate: per_layer("layer_rate_"),
            drain_rate: per_layer("drain_rate_"),
            buffer: per_layer("buffer_"),
        }
    }
}

/// Quality-adaptive video source, generic over the congestion controller
/// underneath (see [`RateController`]). The default `RapSender`
/// instantiation is the paper's QA-over-RAP system; any other controller
/// implementing the trait (BBR-style, NADA-style, ACK-clocked window)
/// drives the identical quality-adaptation machinery.
pub struct QaSourceAgent<T: RateController = RapSender> {
    rap: T,
    qa: QaController,
    /// Sink agent.
    pub dst: AgentId,
    /// Forward route.
    pub route: Route,
    /// Flow id.
    pub flow: u32,
    packet_size: u32,
    tick_dt: f64,
    next_tick: f64,
    armed_at: f64,
    /// Time the flow starts sending (seconds).
    pub start_at: f64,
    /// Layers `0..retransmit_protect` get selective retransmission: a
    /// detected loss is re-sent (once) at the next send opportunity. The
    /// paper names this as an advantage of the layered approach (§1.3,
    /// "opportunity for selective retransmission of the more important
    /// information"); `0` disables it (the paper's evaluation setting).
    pub retransmit_protect: usize,
    /// When set, a backoff's drop rule runs against the slope the sender
    /// observed *at the backoff* instead of the (up to one tick stale)
    /// slope from the last allocation tick. Off by default: the paper's
    /// trajectories — and every seed-pinned golden — were produced with
    /// the per-tick slope refresh only.
    pub fresh_slope_on_backoff: bool,
    /// Pending retransmissions: (layer, size).
    retx_queue: std::collections::VecDeque<(usize, f64)>,
    /// Recorded traces (figure panels).
    pub traces: QaTraces,
    /// Packets sent per layer (diagnostics).
    pub sent_per_layer: Vec<u64>,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Total backoffs observed.
    pub backoffs: u64,
    /// Reused buffer for draining sender events without reallocating.
    ev_scratch: Vec<RapEvent>,
}

impl QaSourceAgent<RapSender> {
    /// New QA-over-RAP source; `tick_dt` is the allocation period
    /// (seconds).
    pub fn new(
        dst: AgentId,
        route: impl Into<Route>,
        flow: u32,
        rap_cfg: RapConfig,
        qa_cfg: QaConfig,
        tick_dt: f64,
    ) -> Self {
        let packet_size = rap_cfg.packet_size as u32;
        Self::with_controller(
            dst,
            route,
            flow,
            RapSender::new(rap_cfg, 0.0),
            packet_size,
            qa_cfg,
            tick_dt,
        )
    }

    /// The RAP sender, for post-run inspection.
    pub fn rap(&self) -> &RapSender {
        &self.rap
    }
}

impl<T: RateController + 'static> QaSourceAgent<T> {
    /// New QA source over an arbitrary congestion controller. The
    /// controller should be constructed with its clock at `0.0`; a
    /// delayed `start_at` restarts it at the join time via
    /// [`RateController::restart`].
    pub fn with_controller(
        dst: AgentId,
        route: impl Into<Route>,
        flow: u32,
        controller: T,
        packet_size: u32,
        qa_cfg: QaConfig,
        tick_dt: f64,
    ) -> Self {
        let max_layers = qa_cfg.max_layers;
        QaSourceAgent {
            rap: controller,
            qa: QaController::new(qa_cfg).expect("valid QA config"),
            dst,
            route: route.into(),
            flow,
            packet_size,
            tick_dt,
            next_tick: 0.0,
            armed_at: f64::NEG_INFINITY,
            start_at: 0.0,
            retransmit_protect: 0,
            fresh_slope_on_backoff: false,
            retx_queue: std::collections::VecDeque::new(),
            traces: QaTraces::new(max_layers),
            sent_per_layer: vec![0; max_layers],
            retransmissions: 0,
            backoffs: 0,
            ev_scratch: Vec::new(),
        }
    }

    /// The congestion controller, for post-run inspection.
    pub fn controller(&self) -> &T {
        &self.rap
    }

    /// The controller (metrics, buffers) for post-run inspection.
    pub fn qa(&self) -> &QaController {
        &self.qa
    }

    /// Mutable controller access for pre-run wiring (e.g. attaching a
    /// shared [`laqa_core::GeometryCache`] before the agent enters the
    /// world).
    pub fn qa_mut(&mut self) -> &mut QaController {
        &mut self.qa
    }

    fn drain_events(&mut self, now: f64) {
        let mut events = std::mem::take(&mut self.ev_scratch);
        self.rap.drain_events_into(&mut events);
        for e in events.drain(..) {
            match e {
                RapEvent::Backoff { rate, slope, .. } => {
                    self.backoffs += 1;
                    if self.fresh_slope_on_backoff {
                        // The drop rule compares buffering against a
                        // recovery triangle whose slope is S; use the
                        // value the sender saw at the backoff itself.
                        self.qa.set_slope(slope);
                    }
                    self.qa.on_backoff(now, rate);
                }
                RapEvent::PacketAcked { size, tag, .. } => {
                    self.qa.on_packet_delivered(tag as usize, size);
                }
                RapEvent::PacketLost { size, tag, .. } => {
                    if (tag as usize) < self.retransmit_protect {
                        self.retx_queue.push_back((tag as usize, size));
                    }
                }
                RapEvent::RateIncrease { .. } => {}
            }
        }
        self.ev_scratch = events;
    }

    fn record_tick(&mut self, now: f64, report: &laqa_core::TickReport) {
        let c = self.qa.config().layer_rate;
        self.traces.tx_rate.push(now, self.rap.tick_rate());
        self.traces
            .consumption
            .push(now, report.n_active as f64 * c);
        self.traces.n_active.push(now, report.n_active as f64);
        for i in 0..self.traces.layer_rate.len() {
            let alloc = report.per_layer_rate.get(i).copied().unwrap_or(0.0);
            self.traces.layer_rate[i].push(now, alloc);
            let drain = if i < report.n_active {
                (c - alloc).max(0.0)
            } else {
                0.0
            };
            self.traces.drain_rate[i].push(now, drain);
            // Report the drainable buffer (debt shows as empty, matching
            // what the receiver actually holds).
            let buf = self.qa.buffers().get(i).copied().unwrap_or(0.0).max(0.0);
            self.traces.buffer[i].push(now, buf);
        }
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        self.rap.poll_timers(ctx.now);
        self.drain_events(ctx.now);
        while ctx.now + 1e-12 >= self.next_tick {
            let now = self.next_tick;
            self.qa.set_slope(self.rap.slope());
            let report = self.qa.tick(now, self.rap.tick_rate(), self.tick_dt);
            self.record_tick(now, &report);
            self.next_tick += self.tick_dt;
        }
        while ctx.now >= self.rap.next_send_time(ctx.now) {
            let size = self.packet_size as f64;
            // Retransmissions of protected layers take priority over new
            // data; they ride the same paced budget.
            let layer = match self.retx_queue.pop_front() {
                Some((l, _)) => {
                    self.retransmissions += 1;
                    l
                }
                None => self.qa.next_packet_layer(size),
            };
            let seq = self.rap.register_send(ctx.now, size, layer as u32);
            if let Some(cnt) = self.sent_per_layer.get_mut(layer) {
                *cnt += 1;
            }
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: self.flow,
                size: self.packet_size,
                kind: PacketKind::RapData {
                    seq,
                    layer: layer as u8,
                    n_active: self.qa.n_active() as u8,
                },
                dst: self.dst,
                route: self.route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
        }
        self.arm(ctx);
    }

    fn arm(&mut self, ctx: &mut Ctx) {
        let next = self
            .rap
            .next_send_time(ctx.now)
            .min(self.rap.next_timer())
            .min(self.next_tick)
            .max(ctx.now + 1e-6);
        // Tolerance absorbs f64->ns rounding of the event clock; without
        // it a fired timer can leave armed_at a hair in the future and the
        // chain dies.
        if next < self.armed_at - 1e-9 || self.armed_at <= ctx.now + 1e-7 {
            ctx.set_timer_at(next, 0);
            self.armed_at = next;
        }
    }
}

impl<T: RateController + 'static> Agent for QaSourceAgent<T> {
    fn start(&mut self, ctx: &mut Ctx) {
        if self.start_at > 0.0 {
            self.rap.restart(self.start_at);
            self.next_tick = self.start_at;
            ctx.set_timer_at(self.start_at, 0);
        } else {
            self.pump(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let PacketKind::RapAck(info) = pkt.kind {
            self.rap.on_ack(ctx.now, info);
            self.drain_events(ctx.now);
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Quality-adaptive sink: RAP receiver + layered playout engine.
pub struct QaSinkAgent {
    rap_rx: RapReceiverState,
    /// Playout ground truth.
    pub receiver: LayeredReceiver,
    /// Source agent id.
    pub src: AgentId,
    /// Reverse route.
    pub reverse_route: Route,
    /// Flow id.
    pub flow: u32,
    adv_dt: f64,
    /// Receiver-observed buffer per layer over time (figure 11 bottom
    /// panel, ground truth).
    pub buffer_trace: Vec<TimeSeries>,
    /// Underflow events observed during playout, per advance step.
    pub underflows: u64,
}

impl QaSinkAgent {
    /// New sink for `encoding`, advancing playout every `adv_dt` seconds.
    ///
    /// `startup_secs` should include a margin over the server's
    /// `startup_buffer_secs`: the server only learns of deliveries an RTT
    /// later, so a client that starts the moment its own threshold is met
    /// runs ahead of the server's accounting by about one RTT of
    /// consumption (use ~2x the server's value).
    pub fn new(
        src: AgentId,
        reverse_route: impl Into<Route>,
        flow: u32,
        encoding: LayeredEncoding,
        startup_secs: f64,
        adv_dt: f64,
    ) -> Self {
        let n = encoding.n_layers();
        QaSinkAgent {
            rap_rx: RapReceiverState::new(),
            receiver: LayeredReceiver::new(encoding, 1, startup_secs),
            src,
            reverse_route: reverse_route.into(),
            flow,
            adv_dt,
            buffer_trace: (0..n)
                .map(|i| TimeSeries::new(format!("rx_buffer_{i}")))
                .collect(),
            underflows: 0,
        }
    }
}

impl Agent for QaSinkAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer_after(self.adv_dt, 1);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let PacketKind::RapData {
            seq,
            layer,
            n_active,
        } = pkt.kind
        {
            self.receiver
                .on_data(ctx.now, layer as usize, pkt.size as f64);
            self.receiver.set_active_layers(n_active as usize);
            let info = self.rap_rx.on_data(seq);
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: self.flow,
                size: ACK_SIZE,
                kind: PacketKind::RapAck(info),
                dst: self.src,
                route: self.reverse_route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == 1 {
            self.underflows += self.receiver.advance(self.adv_dt) as u64;
            for (i, ts) in self.buffer_trace.iter_mut().enumerate() {
                ts.push(ctx.now, self.receiver.buffered(i));
            }
            ctx.set_timer_after(self.adv_dt, 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;
    use crate::link::LinkConfig;
    use laqa_rap::RapConfig;

    /// One QA flow over a bottleneck; returns (world, src id, sink id).
    fn qa_flow(bw: f64, queue: usize, dur: f64, protect: usize) -> (World, AgentId, AgentId) {
        let mut w = World::new(17);
        let fwd = w.add_link(LinkConfig {
            bandwidth: bw,
            delay: 0.02,
            queue_packets: queue,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        let sink_id = 0;
        let src_id = 1;
        let qa_cfg = QaConfig {
            layer_rate: 5_000.0,
            max_layers: 6,
            k_max: 2,
            underflow_slack_bytes: 2_000.0,
            ..QaConfig::default()
        };
        let encoding = LayeredEncoding::linear(qa_cfg.max_layers, qa_cfg.layer_rate).unwrap();
        assert_eq!(
            w.add_agent(Box::new(QaSinkAgent::new(
                src_id,
                vec![rev],
                1,
                encoding,
                2.0 * qa_cfg.startup_buffer_secs,
                0.05,
            ))),
            sink_id
        );
        let rap_cfg = RapConfig {
            packet_size: 500.0,
            initial_rate: 2_000.0,
            initial_rtt: 0.08,
            max_rate: 45_000.0,
            ..RapConfig::default()
        };
        let mut src = QaSourceAgent::new(sink_id, vec![fwd], 1, rap_cfg, qa_cfg, 0.05);
        src.retransmit_protect = protect;
        assert_eq!(w.add_agent(Box::new(src)), src_id);
        w.run_until(dur);
        (w, src_id, sink_id)
    }

    #[test]
    fn single_qa_flow_adapts_to_bottleneck() {
        let (w, src, sink) = qa_flow(25_000.0, 15, 25.0, 0);
        let s: &QaSourceAgent = w.agent(src).unwrap();
        // 25 KB/s bottleneck and 5 KB/s layers: should settle at 4-5
        // layers, not pinned at 1 or 6.
        let steady: Vec<f64> = s
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t > 10.0)
            .map(|&(_, v)| v)
            .collect();
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!((2.5..=5.5).contains(&mean), "mean layers {mean}");
        assert!(s.backoffs > 0);
        let sk: &QaSinkAgent = w.agent(sink).unwrap();
        assert_eq!(sk.receiver.stats().underflows[0], 0, "base never starves");
    }

    #[test]
    fn selective_retransmission_repairs_base_layer() {
        // A tight queue makes losses frequent; with base-layer protection
        // enabled the receiver's base layer misses (starves) less.
        let (w_off, _, sink_off) = qa_flow(15_000.0, 4, 25.0, 0);
        let (w_on, src_on, sink_on) = qa_flow(15_000.0, 4, 25.0, 1);
        let starved_off = w_off
            .agent::<QaSinkAgent>(sink_off)
            .unwrap()
            .receiver
            .stats()
            .starved[0];
        let starved_on = w_on
            .agent::<QaSinkAgent>(sink_on)
            .unwrap()
            .receiver
            .stats()
            .starved[0];
        let src: &QaSourceAgent = w_on.agent(src_on).unwrap();
        assert!(
            src.retransmissions > 0,
            "protection must actually retransmit"
        );
        assert!(
            starved_on <= starved_off,
            "retransmission should not increase base starvation: {starved_on} vs {starved_off}"
        );
    }

    /// Drive a timeout backoff through the drain path with a deliberately
    /// wrong tick-time slope planted in the QA controller; returns the QA
    /// slope after the backoff plus the sender's own slope.
    fn backoff_slope(fresh: bool) -> (f64, f64, u64) {
        let mut src =
            QaSourceAgent::new(0, vec![], 1, RapConfig::default(), QaConfig::default(), 0.1);
        src.fresh_slope_on_backoff = fresh;
        src.rap.restart(0.0);
        let _ = src.rap.register_send(0.0, 1000.0, 0);
        // Way past the RTO: the sender times out and queues a Backoff
        // event carrying the slope it saw at that instant.
        src.rap.poll_timers(10.0);
        src.qa.set_slope(999_999.0);
        src.drain_events(10.0);
        (src.qa.slope(), src.rap.slope(), src.backoffs)
    }

    #[test]
    fn fresh_slope_opt_in_refreshes_drop_rule_slope_at_backoff() {
        // Default (off): the QA machine keeps whatever slope the last tick
        // installed — the historical, golden-pinned behaviour.
        let (stale, _, backoffs) = backoff_slope(false);
        assert!(backoffs > 0, "the timeout must actually produce a backoff");
        assert_eq!(stale, 999_999.0, "default keeps the tick-time slope");
        // Opt-in: the Backoff event's own slope overwrites the stale one,
        // so the drop rule's recovery triangle uses the value the sender
        // saw at the backoff itself.
        let (fresh, sender_slope, _) = backoff_slope(true);
        assert_ne!(fresh, 999_999.0, "opt-in must replace the stale slope");
        assert!(
            (fresh - sender_slope).abs() < 1e-9,
            "fresh slope {fresh} should match the sender's {sender_slope}"
        );
    }

    #[test]
    fn sent_per_layer_matches_active_layers() {
        let (w, src, _) = qa_flow(25_000.0, 15, 15.0, 0);
        let s: &QaSourceAgent = w.agent(src).unwrap();
        // Lower layers must carry at least as many packets as higher ones
        // over the run (they are always active).
        let counts = &s.sent_per_layer;
        assert!(counts[0] > 0);
        for w2 in counts.windows(2) {
            assert!(
                w2[0] + 50 >= w2[1],
                "layer counts should roughly decrease: {counts:?}"
            );
        }
    }
}
