//! **§5 "experiments"** — the real-socket run: quality-adaptive streaming
//! over tokio UDP through the loopback bottleneck shaper, with an
//! unresponsive burst in the middle (the closest in-process equivalent of
//! the paper's Internet experiments; see DESIGN.md substitutions).

use laqa_bench::{ascii_plot, outdir};
use laqa_net::{run_session, SessionConfig};
use laqa_trace::{Recorder, RunSummary};

fn main() {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let duration = 20.0;
    let mut cfg = SessionConfig {
        duration,
        ..SessionConfig::default()
    };
    // Unresponsive burst over the middle half, at 3/4 of the bottleneck —
    // large enough that accumulated buffering cannot ride it out, so the
    // quality reduction (and recovery) is visible. A half-bottleneck burst
    // is absorbed entirely by receiver buffering at these parameters: the
    // smoothing doing its job, but nothing to see.
    cfg.cross_traffic = Some((0.75 * cfg.shaper.bandwidth, 500, 0.3, 0.8));

    let report = rt.block_on(run_session(cfg)).expect("session");

    println!("== Real-socket experiment: QA streaming over loopback shaper ==");
    println!("duration            : {duration:.0} s (3/4-bottleneck burst over t=30%..80%)");
    println!(
        "server sent         : {} packets",
        report.server.sent_packets
    );
    println!("client received     : {} packets", report.client.received);
    println!("loss at bottleneck  : {} packets", report.bottleneck_drops);
    println!("corrupt payloads    : {}", report.client.corrupt);
    println!("backoffs            : {}", report.server.backoffs);
    println!(
        "quality changes     : {}",
        report.server.metrics.quality_changes()
    );
    println!("client underflows   : {}", report.client.underflows);
    println!("clean FIN           : {}", report.client.got_fin);
    println!();
    println!(
        "tx rate      : {}",
        ascii_plot(&report.server.rate_trace, 72)
    );
    println!(
        "layers       : {}",
        ascii_plot(&report.server.n_active_trace, 72)
    );
    println!(
        "base buffer  : {}",
        ascii_plot(&report.client.base_buffer_trace, 72)
    );
    println!();
    println!("expected shape: buffering rides the burst's first seconds, then");
    println!("the layer count steps down, holds, and recovers after the burst;");
    println!("zero corrupt payloads end-to-end.");

    let dir = outdir("net");
    let mut rec = Recorder::new();
    rec.insert(report.server.rate_trace.clone());
    rec.insert(report.server.n_active_trace.clone());
    rec.insert(report.client.base_buffer_trace.clone());
    rec.write_csv_dir(&dir).expect("csv");
    let mut summary = RunSummary::new("net");
    summary
        .param("duration", duration)
        .metric("sent", report.server.sent_packets as f64)
        .metric("received", report.client.received as f64)
        .metric("drops", report.bottleneck_drops as f64)
        .metric("corrupt", report.client.corrupt as f64)
        .metric("backoffs", report.server.backoffs as f64)
        .metric(
            "quality_changes",
            report.server.metrics.quality_changes() as f64,
        )
        .note("loopback shaper substitutes for the paper's WAN path (DESIGN.md)");
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    println!("wrote {}", dir.display());
}
