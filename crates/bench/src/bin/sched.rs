//! `sched` — event-scheduler baseline: heap oracle vs timer wheel.
//!
//! Drives the campaign smoke grid and the fault-suite sweep under both
//! [`laqa_sim::SchedulerKind`]s, cross-checks that every fingerprint is
//! bit-identical (exiting non-zero on any divergence), and reports
//! events/sec and heap-allocation counts per scheduler. Results land in
//! `BENCH_sched.json` at the repo root so the speedup is tracked in-tree.
//!
//! ```text
//! sched                    # full baseline (3 reps per cell, best-of)
//! sched --smoke            # 1 rep, shorter durations (CI wiring)
//! options: --threads N (default 1: scheduler-bound timing)
//!          --duration S  --reps N  --out FILE
//!          --kmax LIST (default 2,4)  --seeds LIST (default 7,21)
//! ```
//!
//! Every knob — including the grid — is recorded in the output JSON so
//! bench trajectories are comparable across machines and configurations.

use laqa_bench::cli::Args;
use laqa_sim::{run_campaign_with, CampaignSpec, SchedulerKind, TestKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with allocation counters, so the report can
/// show the arena/`Route` effect (events routed through slab storage and
/// refcounted routes instead of per-event boxes) as a hard number.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// laqa crates are all `deny(unsafe_code)`; the one unavoidable unsafe
// surface (the global-allocator hook) lives here in the bench binary.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

type AnyError = Box<dyn std::error::Error>;

/// One measured cell: a (workload, scheduler) pair.
struct Cell {
    workload: &'static str,
    sched: SchedulerKind,
    fingerprint: u64,
    events: u64,
    /// Best-of-reps wall time (seconds).
    wall_secs: f64,
    allocations: u64,
    alloc_bytes: u64,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
}

fn measure_rep(
    workload: &'static str,
    spec: &CampaignSpec,
    sched: SchedulerKind,
    threads: usize,
) -> Cell {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let started = Instant::now();
    let result = run_campaign_with(spec, threads, sched);
    let wall_secs = started.elapsed().as_secs_f64();
    Cell {
        workload,
        sched,
        fingerprint: result.fingerprint(),
        events: result.sessions.iter().map(|s| s.events_processed).sum(),
        wall_secs,
        allocations: ALLOCS.load(Ordering::Relaxed) - a0,
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed) - b0,
    }
}

/// Measure every scheduler on `spec`, alternating schedulers within each
/// rep so machine noise hits all of them equally, keeping the best wall
/// time per scheduler. Reps must reproduce the same fingerprint bit for
/// bit or the run aborts.
fn measure(
    workload: &'static str,
    spec: &CampaignSpec,
    threads: usize,
    reps: usize,
) -> Vec<Cell> {
    // One discarded warmup pass per scheduler: the first run after process
    // start pays page faults, allocator growth, and CPU frequency ramp,
    // which would otherwise land entirely on whichever scheduler happens
    // to be measured first.
    for &kind in SchedulerKind::ALL.iter() {
        let _ = measure_rep(workload, spec, kind, threads);
    }
    let mut best: Vec<Option<Cell>> = SchedulerKind::ALL.iter().map(|_| None).collect();
    for _ in 0..reps.max(1) {
        for (slot, &kind) in best.iter_mut().zip(SchedulerKind::ALL.iter()) {
            let cell = measure_rep(workload, spec, kind, threads);
            match slot {
                Some(prev) => {
                    assert_eq!(
                        prev.fingerprint,
                        cell.fingerprint,
                        "{workload}/{}: rep-to-rep divergence",
                        kind.label()
                    );
                    if cell.wall_secs < prev.wall_secs {
                        *slot = Some(cell);
                    }
                }
                None => *slot = Some(cell),
            }
        }
    }
    best.into_iter().map(|c| c.expect("reps >= 1")).collect()
}

fn default_out() -> std::path::PathBuf {
    // crates/bench -> repo root; keeps the baseline working no matter the
    // working directory cargo was invoked from.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sched.json")
}

fn run(args: &Args) -> Result<(), AnyError> {
    let smoke = args.flag("smoke");
    let threads: usize = args.get("threads", 1)?;
    let reps: usize = args.get("reps", if smoke { 1 } else { 3 })?;
    let duration: f64 = args.get("duration", if smoke { 4.0 } else { 8.0 })?;
    let k_values: Vec<u32> = args.get_list("kmax", &[2, 4])?;
    let seeds: Vec<u64> = args.get_list("seeds", &[7, 21])?;

    let smoke_spec = CampaignSpec::grid(&[TestKind::T1], &k_values, &seeds, duration);
    let faults_spec = CampaignSpec::faults_grid(
        &[TestKind::T1],
        &k_values[..1.min(k_values.len())],
        &[0.0, 1.0],
        &seeds[..1.min(seeds.len())],
        duration.max(10.0),
    );
    let workloads: [(&'static str, &CampaignSpec); 2] =
        [("campaign_smoke", &smoke_spec), ("faults_suite", &faults_spec)];

    let mut cells: Vec<Cell> = Vec::new();
    for (name, spec) in workloads {
        eprintln!(
            "measuring {name} ({} sessions, {reps} interleaved rep(s), {threads} thread(s))...",
            spec.len()
        );
        cells.extend(measure(name, spec, threads, reps));
    }

    // Fingerprint gate: heap and wheel must agree per workload, bit for bit.
    for pair in cells.chunks(2) {
        let (heap, wheel) = (&pair[0], &pair[1]);
        if heap.fingerprint != wheel.fingerprint {
            return Err(format!(
                "SCHEDULER DIVERGENCE on {}: heap fingerprint {:016x} != wheel {:016x}",
                heap.workload, heap.fingerprint, wheel.fingerprint
            )
            .into());
        }
        if heap.events != wheel.events {
            return Err(format!(
                "SCHEDULER DIVERGENCE on {}: heap processed {} events, wheel {}",
                heap.workload, heap.events, wheel.events
            )
            .into());
        }
    }

    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>14}",
        "workload", "sched", "events", "wall (s)", "events/s", "allocations"
    );
    for c in &cells {
        println!(
            "{:<16} {:>6} {:>12} {:>12.3} {:>12.0} {:>14}",
            c.workload,
            c.sched.label(),
            c.events,
            c.wall_secs,
            c.events_per_sec(),
            c.allocations
        );
    }
    let ratio = |w: &str| -> f64 {
        let heap = cells
            .iter()
            .find(|c| c.workload == w && c.sched == SchedulerKind::Reference)
            .expect("heap cell");
        let wheel = cells
            .iter()
            .find(|c| c.workload == w && c.sched == SchedulerKind::Wheel)
            .expect("wheel cell");
        wheel.events_per_sec() / heap.events_per_sec().max(1e-9)
    };
    let smoke_ratio = ratio("campaign_smoke");
    let faults_ratio = ratio("faults_suite");
    println!(
        "speedup (wheel/heap): campaign_smoke {smoke_ratio:.2}x, faults_suite {faults_ratio:.2}x"
    );

    let out = args
        .options
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_out);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sched\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"duration_secs\": {duration},\n"));
    let join = |v: Vec<String>| v.join(", ");
    json.push_str(&format!(
        "  \"grid\": {{\"tests\": [\"T1\"], \"k_values\": [{}], \"seeds\": [{}]}},\n",
        join(k_values.iter().map(|k| k.to_string()).collect()),
        join(seeds.iter().map(|s| s.to_string()).collect())
    ));
    json.push_str(&format!(
        "  \"speedup_campaign_smoke\": {smoke_ratio:.4},\n  \"speedup_faults_suite\": {faults_ratio:.4},\n"
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"scheduler\": \"{}\", \"events\": {}, \
             \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"allocations\": {}, \
             \"alloc_bytes\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            c.workload,
            c.sched.label(),
            c.events,
            c.wall_secs,
            c.events_per_sec(),
            c.allocations,
            c.alloc_bytes,
            c.fingerprint,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json)?;
    println!("wrote {}", out.display());
    Ok(())
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_none_or(|a| a.starts_with("--")) {
        raw.insert(0, "run".to_string());
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.command != "run" {
        eprintln!(
            "error: unexpected argument '{}' — this binary takes options only \
             (--smoke, --threads N, --duration S, --reps N, --out FILE)",
            args.command
        );
        std::process::exit(2);
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
