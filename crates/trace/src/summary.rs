//! Machine-readable run summaries (JSON) consumed by EXPERIMENTS.md tooling
//! and the cross-experiment comparison scripts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Summary of one experiment run: scalar metrics plus free-form notes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Experiment id (e.g. "fig11", "table1/T1/kmax2").
    pub experiment: String,
    /// Key parameters of the run.
    pub params: BTreeMap<String, String>,
    /// Scalar results.
    pub metrics: BTreeMap<String, f64>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
}

impl RunSummary {
    /// New summary for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        RunSummary {
            experiment: experiment.into(),
            ..Default::default()
        }
    }

    /// Record a parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Record a scalar metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }

    /// Write JSON to `path`, creating parent directories.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Read a summary back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut s = RunSummary::new("fig11");
        s.param("k_max", 2)
            .metric("efficiency", 0.9977)
            .note("shaper substitution");
        let json = s.to_json();
        let back = RunSummary::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn file_round_trip() {
        let mut s = RunSummary::new("t");
        s.metric("x", 1.0);
        let path = std::env::temp_dir()
            .join(format!("laqa_summary_{}", std::process::id()))
            .join("s.json");
        s.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunSummary::from_json(&text).unwrap(), s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_chains() {
        let mut s = RunSummary::new("x");
        s.param("a", "1")
            .param("b", 2.5)
            .metric("m", 3.0)
            .note("n1")
            .note("n2");
        assert_eq!(s.params.len(), 2);
        assert_eq!(s.metrics.len(), 1);
        assert_eq!(s.notes.len(), 2);
    }
}
