//! Cross-flow statistics: fairness and sharing summaries for the
//! competition experiments (the paper's premise is that RAP — and
//! therefore the QA flow — shares bandwidth in a TCP-friendly way).

/// Jain's fairness index over per-flow allocations:
/// `(Σx)² / (n·Σx²)` — 1.0 is perfectly fair, `1/n` maximally unfair.
/// `None` when `xs` is empty or all-zero.
pub fn jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sq))
}

/// Summary of how a set of flows shared a link.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingSummary {
    /// Number of flows.
    pub n: usize,
    /// Aggregate throughput (bytes/s).
    pub total: f64,
    /// Mean per-flow throughput.
    pub mean: f64,
    /// Jain's fairness index.
    pub fairness: f64,
    /// max/min ratio (∞ if any flow starved completely).
    pub max_min_ratio: f64,
}

/// Summarize per-flow throughputs; `None` only for empty input.
///
/// "No flows" and "all flows starved" are different situations: an
/// all-zero input describes n flows that shared the link *equally badly*,
/// so it yields a degenerate summary (`total = 0`, fairness 1.0,
/// `max_min_ratio` 1.0) rather than `None`. With at least one non-zero
/// and at least one zero flow the ratio is `∞` as before.
pub fn summarize_sharing(xs: &[f64]) -> Option<SharingSummary> {
    if xs.is_empty() {
        return None;
    }
    let total: f64 = xs.iter().sum();
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    Some(SharingSummary {
        n: xs.len(),
        total,
        mean: total / xs.len() as f64,
        // jain_fairness is None only for the all-zero case here, where
        // every flow got the same (zero) share: perfectly "fair".
        fairness: jain_fairness(xs).unwrap_or(1.0),
        max_min_ratio: if min > 0.0 {
            max / min
        } else if max > 0.0 {
            f64::INFINITY
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_is_one_for_equal_shares() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_one_over_n_for_single_hog() {
        let f = jain_fairness(&[12.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_rejects_degenerate_inputs() {
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0.0, 0.0]), None);
    }

    #[test]
    fn sharing_summary_fields() {
        let s = summarize_sharing(&[10.0, 20.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.total, 30.0);
        assert_eq!(s.mean, 15.0);
        assert_eq!(s.max_min_ratio, 2.0);
        assert!(s.fairness > 0.88 && s.fairness < 0.92);
    }

    #[test]
    fn starved_flow_gives_infinite_ratio() {
        let s = summarize_sharing(&[10.0, 0.0]).unwrap();
        assert!(s.max_min_ratio.is_infinite());
    }

    #[test]
    fn empty_input_gives_none() {
        assert_eq!(summarize_sharing(&[]), None);
    }

    #[test]
    fn all_starved_flows_summarize_as_degenerate_not_none() {
        // Distinct from "no flows": three flows all got zero. That is a
        // real (catastrophic) sharing outcome, not an absence of data.
        let s = summarize_sharing(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.total, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.fairness, 1.0);
        assert_eq!(s.max_min_ratio, 1.0);
    }
}
