//! Dumbbell topology builder — the paper's evaluation setup: many sources
//! share one forward bottleneck; the reverse (ACK) path is uncongested.

use crate::engine::World;
use crate::link::{LinkConfig, QueueKind};
use crate::packet::{LinkId, Route};
use crate::sched::{ambient_scheduler, SchedulerKind};

/// Dumbbell parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellConfig {
    /// Bottleneck bandwidth (bytes/s). The paper's T1/T2 use 800 Kb/s
    /// = 100 000 B/s.
    pub bottleneck_bw: f64,
    /// Bottleneck propagation delay (seconds).
    pub bottleneck_delay: f64,
    /// Per-flow access-link bandwidth (bytes/s) — fast enough not to be the
    /// bottleneck.
    pub access_bw: f64,
    /// Per-flow access-link propagation delay (seconds).
    pub access_delay: f64,
    /// Bottleneck queue capacity (packets).
    pub queue_packets: usize,
    /// Bottleneck queueing discipline (the paper uses drop-tail; RED is
    /// provided for the random-loss ablation).
    pub queue_kind: QueueKind,
    /// Random (non-congestive) per-packet loss on the bottleneck.
    pub loss_rate: f64,
}

impl DumbbellConfig {
    /// The paper's base setup: 800 Kb/s bottleneck, 40 ms propagation RTT
    /// (10 ms bottleneck + 5 ms access each way). The drop-tail queue is
    /// deep enough that queueing delay dominates the RTT when 20 flows
    /// compete — the regime of the paper's own slow-link runs, where the
    /// AIMD slope `S = pkt/srtt²` is small and draining phases last long
    /// enough that buffer requirements span many packets.
    pub fn paper_base() -> Self {
        DumbbellConfig {
            bottleneck_bw: 100_000.0,
            bottleneck_delay: 0.010,
            access_bw: 12_500_000.0,
            access_delay: 0.005,
            queue_packets: 150,
            queue_kind: QueueKind::DropTail,
            loss_rate: 0.0,
        }
    }

    /// Round-trip propagation time of the dumbbell (seconds).
    pub fn rtt(&self) -> f64 {
        2.0 * (self.bottleneck_delay + 2.0 * self.access_delay)
    }
}

/// A dumbbell under construction: the shared bottleneck plus per-flow
/// access links created on demand.
pub struct Dumbbell {
    /// The world being built.
    pub world: World,
    cfg: DumbbellConfig,
    fwd_bottleneck: LinkId,
    rev_bottleneck: LinkId,
    bond_path: Option<LinkId>,
}

impl Dumbbell {
    /// Create the shared links in a fresh world (ambient scheduler kind).
    pub fn new(cfg: DumbbellConfig, seed: u64) -> Self {
        Self::with_scheduler(cfg, seed, ambient_scheduler())
    }

    /// Create the shared links in a fresh world driven by an explicit
    /// event-scheduler implementation.
    pub fn with_scheduler(cfg: DumbbellConfig, seed: u64, kind: SchedulerKind) -> Self {
        Self::with_world(cfg, World::with_scheduler(seed, kind))
    }

    /// Create the shared links in a caller-supplied world — the hook the
    /// warm-world pool uses to pass a [`World::with_salvage`] world whose
    /// scheduler and link storage carry over from the previous session.
    pub fn with_world(cfg: DumbbellConfig, mut world: World) -> Self {
        let fwd_bottleneck = world.add_link(LinkConfig {
            bandwidth: cfg.bottleneck_bw,
            delay: cfg.bottleneck_delay,
            queue_packets: cfg.queue_packets,
            queue_kind: cfg.queue_kind,
            loss_rate: cfg.loss_rate,
        });
        // Reverse direction carries only small ACKs; keep it uncongested
        // but with the same propagation delay so RTTs are symmetric.
        let rev_bottleneck = world.add_link(LinkConfig {
            bandwidth: cfg.bottleneck_bw.max(12_500_000.0),
            delay: cfg.bottleneck_delay,
            queue_packets: 10_000,
            ..LinkConfig::default()
        });
        Dumbbell {
            world,
            cfg,
            fwd_bottleneck,
            rev_bottleneck,
            bond_path: None,
        }
    }

    /// Add a second, parallel forward bottleneck — the other leg of a
    /// *bonded* pair (two variable paths feeding one session, per the
    /// bonded-cellular designs the hostile corpus models). Same
    /// configuration as the primary bottleneck; callers attach an
    /// independent trace schedule to each leg. Must be called before any
    /// per-flow routes so the link numbering of non-bonded scenarios is
    /// untouched. Returns the new leg's link id.
    pub fn add_bond_path(&mut self) -> LinkId {
        let id = self.world.add_link(LinkConfig {
            bandwidth: self.cfg.bottleneck_bw,
            delay: self.cfg.bottleneck_delay,
            queue_packets: self.cfg.queue_packets,
            queue_kind: self.cfg.queue_kind,
            loss_rate: self.cfg.loss_rate,
        });
        self.bond_path = Some(id);
        id
    }

    /// The second bonded forward bottleneck, if [`Dumbbell::add_bond_path`]
    /// created one.
    pub fn bond_path(&self) -> Option<LinkId> {
        self.bond_path
    }

    /// The shared forward bottleneck link.
    pub fn bottleneck(&self) -> LinkId {
        self.fwd_bottleneck
    }

    /// The shared reverse (ACK-path) bottleneck link.
    pub fn reverse_bottleneck(&self) -> LinkId {
        self.rev_bottleneck
    }

    /// Configuration used.
    pub fn config(&self) -> DumbbellConfig {
        self.cfg
    }

    /// Create a fresh access link and return the forward route
    /// `[access, bottleneck]` for one flow.
    pub fn forward_route(&mut self) -> Route {
        let access = self.world.add_link(LinkConfig {
            bandwidth: self.cfg.access_bw,
            delay: self.cfg.access_delay,
            queue_packets: 10_000,
            ..LinkConfig::default()
        });
        Route::from(vec![access, self.fwd_bottleneck])
    }

    /// Create a fresh access link and return the route `[access]` alone —
    /// for a flow whose bottleneck hop is decided per-packet downstream
    /// (the bonded-path relay): the source sends to the relay over its
    /// access link, and the relay picks which bonded leg each packet
    /// takes.
    pub fn access_route(&mut self) -> Route {
        let access = self.world.add_link(LinkConfig {
            bandwidth: self.cfg.access_bw,
            delay: self.cfg.access_delay,
            queue_packets: 10_000,
            ..LinkConfig::default()
        });
        Route::from(vec![access])
    }

    /// Reverse route `[rev_bottleneck, rev_access]` for one flow's ACKs.
    pub fn reverse_route(&mut self) -> Route {
        let access = self.world.add_link(LinkConfig {
            bandwidth: self.cfg.access_bw,
            delay: self.cfg.access_delay,
            queue_packets: 10_000,
            ..LinkConfig::default()
        });
        Route::from(vec![self.rev_bottleneck, access])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_has_40ms_rtt() {
        let cfg = DumbbellConfig::paper_base();
        assert!((cfg.rtt() - 0.040).abs() < 1e-12);
        assert_eq!(cfg.bottleneck_bw, 100_000.0); // 800 Kb/s
    }

    #[test]
    fn routes_share_the_bottleneck() {
        let mut d = Dumbbell::new(DumbbellConfig::paper_base(), 1);
        let r1 = d.forward_route();
        let r2 = d.forward_route();
        assert_ne!(r1[0], r2[0], "distinct access links");
        assert_eq!(r1[1], r2[1], "shared bottleneck");
        assert_eq!(r1[1], d.bottleneck());
    }

    #[test]
    fn reverse_routes_avoid_forward_bottleneck() {
        let mut d = Dumbbell::new(DumbbellConfig::paper_base(), 1);
        let f = d.forward_route();
        let r = d.reverse_route();
        assert!(!r.contains(&f[1]));
    }
}
