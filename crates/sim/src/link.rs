//! Links with configurable queueing (drop-tail or RED) and an optional
//! random-loss process.
//!
//! The paper's ns-2 setup uses drop-tail bottlenecks (the default here).
//! RED is provided because the paper's premise — near-random loss patterns
//! (§3, citing Bolot) — is exactly what RED produces, making it the
//! natural ablation for the smoothing machinery; the per-packet random
//! loss models non-congestive (wireless/bit-error) drops.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Random Early Detection parameters (Floyd/Jacobson '93, simplified:
/// plain drop probability, no idle-time compensation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Average-queue threshold (packets) below which nothing is dropped.
    pub min_th: f64,
    /// Average-queue threshold (packets) above which everything is
    /// dropped.
    pub max_th: f64,
    /// Drop probability as the average reaches `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub wq: f64,
}

impl RedConfig {
    /// Reasonable defaults relative to a physical queue of `cap` packets.
    pub fn for_queue(cap: usize) -> Self {
        RedConfig {
            min_th: cap as f64 * 0.25,
            max_th: cap as f64 * 0.75,
            max_p: 0.1,
            wq: 0.002,
        }
    }
}

/// Queueing discipline of a link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QueueKind {
    /// Plain drop-tail (the paper's setting).
    #[default]
    DropTail,
    /// Random Early Detection on the average queue.
    Red(RedConfig),
}

/// Configuration of one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Propagation delay (seconds).
    pub delay: f64,
    /// Physical queue capacity in packets (excluding the one in service).
    pub queue_packets: usize,
    /// Queueing discipline.
    pub queue_kind: QueueKind,
    /// Probability of random (non-congestive) loss per packet.
    pub loss_rate: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            bandwidth: 125_000.0,
            delay: 0.01,
            queue_packets: 50,
            queue_kind: QueueKind::DropTail,
            loss_rate: 0.0,
        }
    }
}

impl LinkConfig {
    /// A high-capacity, low-delay access/return link that never congests.
    pub fn uncongested() -> Self {
        LinkConfig {
            bandwidth: 125_000_000.0,
            delay: 0.001,
            queue_packets: 10_000,
            ..LinkConfig::default()
        }
    }
}

/// Runtime state of a link.
#[derive(Debug)]
pub struct Link {
    /// Static configuration.
    pub cfg: LinkConfig,
    /// Waiting packets (head is next to transmit).
    pub queue: VecDeque<Packet>,
    /// True while a packet is being serialized.
    pub busy: bool,
    /// RED average-queue estimate (packets).
    pub red_avg: f64,
    /// Counters.
    pub stats: LinkStats,
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub enqueued: u64,
    /// Packets dropped at the tail (or by RED).
    pub dropped: u64,
    /// Packets dropped by the random-loss process.
    pub random_losses: u64,
    /// Bytes fully transmitted.
    pub bytes_out: u64,
    /// Peak queue length observed (packets).
    pub peak_queue: usize,
}

impl Link {
    /// New idle link.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            queue: VecDeque::new(),
            busy: false,
            red_avg: 0.0,
            stats: LinkStats::default(),
        }
    }

    /// Reconfigure an idle-again link shell for a new session, keeping the
    /// queue's backing ring buffer allocated. State afterwards is
    /// indistinguishable from `Link::new(cfg)` apart from capacity.
    pub fn reset(&mut self, cfg: LinkConfig) {
        self.cfg = cfg;
        self.queue.clear();
        self.busy = false;
        self.red_avg = 0.0;
        self.stats = LinkStats::default();
    }

    /// Offer a packet to the link. `u_loss` and `u_red` are uniform
    /// `[0, 1)` samples consumed by the loss and RED processes. Returns
    /// `true` when accepted (caller schedules the dequeue when the link
    /// was idle), `false` when dropped.
    pub fn offer(&mut self, pkt: Packet, u_loss: f64, u_red: f64) -> bool {
        // The head of a non-empty queue is in (or about to enter) service;
        // only the packets behind it occupy queue slots. This deliberately
        // ignores `busy`: in the window between an enqueue and its dequeue
        // scheduling the flag is still false, and counting by it let an
        // "idle" link with a non-empty queue accept unboundedly.
        let waiting = self.queue.len().saturating_sub(1);
        // RED's average-queue estimate must see *every* arrival — including
        // packets the random-loss process removes below — or the average is
        // biased low under non-congestive loss.
        let mut red_drop = false;
        if let QueueKind::Red(red) = self.cfg.queue_kind {
            self.red_avg = (1.0 - red.wq) * self.red_avg + red.wq * waiting as f64;
            if self.red_avg >= red.max_th {
                red_drop = true;
            } else if self.red_avg > red.min_th {
                let p =
                    red.max_p * (self.red_avg - red.min_th) / (red.max_th - red.min_th).max(1e-9);
                red_drop = u_red < p;
            }
        }
        if self.cfg.loss_rate > 0.0 && u_loss < self.cfg.loss_rate {
            self.stats.random_losses += 1;
            return false;
        }
        if red_drop {
            self.stats.dropped += 1;
            return false;
        }
        // Drop-tail bound on queue occupancy whenever the queue is
        // non-empty (an empty queue always accepts: the packet goes
        // straight into service).
        if !self.queue.is_empty() && waiting >= self.cfg.queue_packets {
            self.stats.dropped += 1;
            return false;
        }
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        // Peak counts *waiting* packets (excluding the head in service),
        // consistent with the admission bound above.
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len() - 1);
        true
    }

    /// Current queue length in packets (including the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            flow: 0,
            size: 1000,
            kind: PacketKind::Cbr,
            dst: 0,
            route: vec![].into(),
            hop: 0,
            sent_at: 0.0,
        }
    }

    fn offer(l: &mut Link, p: Packet) -> bool {
        l.offer(p, 0.99, 0.99)
    }

    #[test]
    fn drop_tail_when_full_and_busy() {
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 2,
            ..LinkConfig::default()
        });
        assert!(offer(&mut l, pkt(1)));
        l.busy = true; // first packet entered service
        assert!(offer(&mut l, pkt(2)));
        assert!(offer(&mut l, pkt(3)));
        assert!(
            !offer(&mut l, pkt(4)),
            "third queued packet must be dropped"
        );
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.enqueued, 3);
    }

    #[test]
    fn idle_link_always_accepts() {
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 0,
            ..LinkConfig::default()
        });
        assert!(
            offer(&mut l, pkt(1)),
            "idle link accepts even with zero queue"
        );
    }

    #[test]
    fn peak_queue_tracked() {
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 10,
            ..LinkConfig::default()
        });
        for i in 0..5 {
            offer(&mut l, pkt(i));
        }
        // Five in the queue = one in (or entering) service + four waiting;
        // peak counts the waiting packets, same as the admission bound.
        assert_eq!(l.stats.peak_queue, 4);
    }

    #[test]
    fn occupancy_bounded_even_when_not_marked_busy() {
        // Regression: in the window between enqueue and dequeue scheduling
        // `busy` is still false, and the old bound (`busy && ...`) let the
        // queue grow without limit.
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 2,
            ..LinkConfig::default()
        });
        assert!(offer(&mut l, pkt(1)), "empty queue accepts into service");
        assert!(offer(&mut l, pkt(2)));
        assert!(offer(&mut l, pkt(3)));
        assert!(!offer(&mut l, pkt(4)), "bound applies while busy is false");
        assert_eq!(l.queue.len(), 3);
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.peak_queue, 2);
    }

    #[test]
    fn random_loss_consumes_sample() {
        let mut l = Link::new(LinkConfig {
            loss_rate: 0.5,
            ..LinkConfig::default()
        });
        assert!(!l.offer(pkt(1), 0.4, 0.9), "u < p drops");
        assert!(l.offer(pkt(2), 0.6, 0.9), "u >= p passes");
        assert_eq!(l.stats.random_losses, 1);
        assert_eq!(l.stats.dropped, 0, "random losses counted separately");
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let red = RedConfig {
            min_th: 1.0,
            max_th: 5.0,
            max_p: 0.5,
            wq: 1.0,
        };
        let mut l = Link::new(LinkConfig {
            queue_packets: 100,
            queue_kind: QueueKind::Red(red),
            ..LinkConfig::default()
        });
        // Build the queue to avg = 3 (wq = 1 tracks instantaneously):
        l.busy = true;
        for i in 0..4 {
            assert!(l.offer(pkt(i), 0.9, 0.99), "low avg accepts");
        }
        // avg now 3 → p = 0.5 * (3-1)/(5-1) = 0.25.
        assert!(!l.offer(pkt(10), 0.9, 0.2), "u_red < p drops early");
        assert!(l.offer(pkt(11), 0.9, 0.3), "u_red >= p accepts");
    }

    #[test]
    fn red_hard_drops_above_max_th() {
        let red = RedConfig {
            min_th: 0.0,
            max_th: 2.0,
            max_p: 0.1,
            wq: 1.0,
        };
        let mut l = Link::new(LinkConfig {
            queue_packets: 100,
            queue_kind: QueueKind::Red(red),
            ..LinkConfig::default()
        });
        l.busy = true;
        for i in 0..3 {
            l.offer(pkt(i), 0.9, 0.99);
        }
        // avg >= 2 now: unconditional drop regardless of u_red.
        assert!(!l.offer(pkt(10), 0.9, 0.999));
    }

    #[test]
    fn red_average_updates_on_randomly_lost_arrivals() {
        // Regression: the random-loss process used to return before the RED
        // estimate was touched, biasing `red_avg` low under non-congestive
        // loss. Every arrival must update the average, lost or not.
        let red = RedConfig {
            min_th: 1.0,
            max_th: 50.0,
            max_p: 0.1,
            wq: 1.0,
        };
        let mut l = Link::new(LinkConfig {
            queue_packets: 100,
            queue_kind: QueueKind::Red(red),
            loss_rate: 1.0, // every offer is randomly lost
            ..LinkConfig::default()
        });
        l.queue.push_back(pkt(0));
        l.queue.push_back(pkt(1));
        l.queue.push_back(pkt(2));
        l.busy = true;
        assert!(!l.offer(pkt(10), 0.0, 0.99), "randomly lost");
        assert_eq!(l.stats.random_losses, 1);
        assert!(
            (l.red_avg - 2.0).abs() < 1e-12,
            "red_avg must track the 2 waiting packets, got {}",
            l.red_avg
        );
    }

    #[test]
    fn red_default_thresholds_scale_with_capacity() {
        let red = RedConfig::for_queue(100);
        assert_eq!(red.min_th, 25.0);
        assert_eq!(red.max_th, 75.0);
    }
}
