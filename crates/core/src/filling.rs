//! Filling-phase bandwidth allocation (§2.4, §4.1, figure 10).
//!
//! While the transmission rate exceeds the aggregate consumption rate, every
//! active layer receives its consumption rate `C` (so playout never stalls)
//! and the *excess* `R − n_a·C` is invested in receiver buffering. The
//! excess is steered along the monotone state path: within the first
//! unsatisfied state, lower layers are topped up first (the sequential
//! filling pattern of figure 5); when a state completes, filling moves to
//! the next state on the path.
//!
//! Two granularities are provided:
//!
//! * [`next_fill_layer`] — the literal per-packet decision of the paper's
//!   `SendPacket` pseudocode: which layer should own the next transmitted
//!   packet's worth of buffering.
//! * [`allocate_filling`] — a per-period rate split (consumption plus excess
//!   shares), which is what the RAP/tokio senders consume; it produces the
//!   per-layer bandwidth "spikes" visible in the paper's figure 11.

use crate::states::StateSequence;

/// Result of a per-period filling allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FillAllocation {
    /// Total send rate per layer for the period (bytes/s); includes each
    /// layer's consumption rate. Sums to the offered `rate` (up to float
    /// rounding).
    pub per_layer_rate: Vec<f64>,
    /// Bytes of *new buffering* assigned to each layer this period.
    pub buffer_gain: Vec<f64>,
    /// True when, at period start, every state with `k ≤ k_max` was already
    /// satisfied — the §3.1 buffering condition for adding a layer.
    pub targets_met: bool,
}

/// Per-packet filling decision: the layer whose buffer the next packet
/// should extend, or `None` when every state on the path is satisfied.
///
/// Implements the sequential pattern of §2.4: find the first unsatisfied
/// state on the monotone path, then the lowest layer still below that
/// state's target.
pub fn next_fill_layer(seq: &StateSequence, bufs: &[f64], eps: f64) -> Option<usize> {
    let idx = seq.first_unsatisfied(bufs, eps)?;
    let state = &seq.states[idx];
    state
        .per_layer
        .iter()
        .enumerate()
        .find(|(i, target)| bufs.get(*i).copied().unwrap_or(0.0) + eps < **target)
        .map(|(i, _)| i)
}

/// Split the offered `rate` across the active layers for a period of `dt`
/// seconds.
///
/// Preconditions: `rate ≥ n_a·C` (filling phase) — callers in a draining
/// phase must use [`crate::draining`]. If called with a deficit anyway, the
/// shortfall is taken evenly from every layer's consumption share and no
/// buffering is added (a safe degenerate behaviour used only transiently).
pub fn allocate_filling(
    seq: &StateSequence,
    bufs: &[f64],
    rate: f64,
    dt: f64,
    k_max: u32,
    eps: f64,
) -> FillAllocation {
    let n = seq.n_active;
    let c = seq.layer_rate;
    let consumption = n as f64 * c;
    let targets_met = seq.satisfied_up_to_k(bufs, k_max, eps);
    if dt <= 0.0 {
        return FillAllocation {
            per_layer_rate: vec![c; n],
            buffer_gain: vec![0.0; n],
            targets_met,
        };
    }

    if rate < consumption {
        // Degenerate: not actually a filling phase. Scale consumption down
        // proportionally; the controller will switch to draining.
        let scale = if consumption > 0.0 {
            rate / consumption
        } else {
            0.0
        };
        return FillAllocation {
            per_layer_rate: vec![c * scale; n],
            buffer_gain: vec![0.0; n],
            targets_met,
        };
    }

    let mut excess = (rate - consumption) * dt;
    let mut projected: Vec<f64> = (0..n)
        .map(|i| bufs.get(i).copied().unwrap_or(0.0))
        .collect();
    let mut gain = vec![0.0f64; n];

    'states: for state in &seq.states {
        for i in 0..n {
            let target = state.per_layer[i];
            let gap = target - projected[i];
            if gap > eps {
                let give = gap.min(excess);
                projected[i] += give;
                gain[i] += give;
                excess -= give;
                if excess <= 0.0 {
                    break 'states;
                }
            }
        }
    }
    if excess > 0.0 {
        // Every state up to the horizon is satisfied; park the remainder in
        // the base layer — the most protective place for it (§2.3).
        gain[0] += excess;
    }

    let per_layer_rate = gain.iter().map(|g| c + g / dt).collect();
    FillAllocation {
        per_layer_rate,
        buffer_gain: gain,
        targets_met,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::StateSequence;

    const C: f64 = 10_000.0;
    const S: f64 = 25_000.0;

    fn seq(rate: f64, n: usize) -> StateSequence {
        StateSequence::build(rate, n, C, S, 8)
    }

    #[test]
    fn next_fill_layer_prefers_base_when_empty() {
        let s = seq(40_000.0, 3);
        assert_eq!(next_fill_layer(&s, &[0.0, 0.0, 0.0], 1.0), Some(0));
    }

    #[test]
    fn next_fill_layer_moves_up_once_base_target_met() {
        let s = seq(40_000.0, 3);
        // Give the base layer a huge buffer: the first unsatisfied state's
        // base target is met, so the decision moves to a higher layer
        // (unless that state only buffers the base layer — then the next
        // state drives it; either way the result is not forced to 0).
        let mut bufs = [1e9, 0.0, 0.0];
        let layer = next_fill_layer(&s, &bufs, 1.0);
        assert!(layer.is_some());
        assert_ne!(layer, Some(0));
        // And fully met buffers yield None.
        bufs = [1e9, 1e9, 1e9];
        assert_eq!(next_fill_layer(&s, &bufs, 1.0), None);
    }

    #[test]
    fn fill_sequentially_reaches_every_state() {
        // Simulate per-packet filling and check the states get satisfied in
        // path order.
        let s = seq(40_000.0, 3);
        let pkt = 250.0;
        let mut bufs = vec![0.0; 3];
        let mut satisfied_order = Vec::new();
        let mut last = None;
        for _ in 0..100_000 {
            match next_fill_layer(&s, &bufs, 1.0) {
                Some(layer) => bufs[layer] += pkt,
                None => break,
            }
            let now = s.last_satisfied(&bufs, 1.0);
            if now != last {
                if let Some(i) = now {
                    satisfied_order.push(i);
                }
                last = now;
            }
        }
        assert_eq!(next_fill_layer(&s, &bufs, 1.0), None);
        // States were reached strictly in order.
        for w in satisfied_order.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*satisfied_order.last().unwrap(), s.states.len() - 1);
    }

    #[test]
    fn allocation_conserves_rate() {
        let s = seq(50_000.0, 3);
        let alloc = allocate_filling(&s, &[0.0, 0.0, 0.0], 50_000.0, 0.1, 2, 1.0);
        let total: f64 = alloc.per_layer_rate.iter().sum();
        assert!((total - 50_000.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn allocation_gives_every_layer_consumption() {
        let s = seq(50_000.0, 3);
        let alloc = allocate_filling(&s, &[0.0; 3], 50_000.0, 0.1, 2, 1.0);
        for &r in &alloc.per_layer_rate {
            assert!(r + 1e-9 >= C, "layer rate {r} below consumption");
        }
    }

    #[test]
    fn excess_goes_to_base_first_when_buffers_empty() {
        let s = seq(50_000.0, 3);
        let alloc = allocate_filling(&s, &[0.0; 3], 50_000.0, 0.1, 2, 1.0);
        assert!(alloc.buffer_gain[0] > 0.0);
        assert!(alloc.buffer_gain[0] >= alloc.buffer_gain[1]);
        assert!(alloc.buffer_gain[1] >= alloc.buffer_gain[2]);
    }

    #[test]
    fn saturated_path_parks_excess_in_base() {
        let s = seq(50_000.0, 2);
        let huge = [1e12, 1e12];
        let alloc = allocate_filling(&s, &huge, 50_000.0, 0.1, 2, 1.0);
        let excess = (50_000.0 - 2.0 * C) * 0.1;
        assert!((alloc.buffer_gain[0] - excess).abs() < 1e-6);
        assert_eq!(alloc.buffer_gain[1], 0.0);
        assert!(alloc.targets_met);
    }

    #[test]
    fn targets_met_reflects_k_max_condition() {
        let s = seq(40_000.0, 2);
        let alloc = allocate_filling(&s, &[0.0; 2], 40_000.0, 0.1, 2, 1.0);
        assert!(!alloc.targets_met);
        let alloc = allocate_filling(&s, &[1e9, 1e9], 40_000.0, 0.1, 2, 1.0);
        assert!(alloc.targets_met);
    }

    #[test]
    fn degenerate_deficit_call_scales_consumption() {
        let s = seq(40_000.0, 4); // consumption 40 KB/s
        let alloc = allocate_filling(&s, &[0.0; 4], 20_000.0, 0.1, 2, 1.0);
        let total: f64 = alloc.per_layer_rate.iter().sum();
        assert!((total - 20_000.0).abs() < 1e-6);
        assert!(alloc.buffer_gain.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn buffer_gain_matches_rate_minus_consumption() {
        let s = seq(55_000.0, 3);
        let dt = 0.25;
        let alloc = allocate_filling(&s, &[500.0, 100.0, 0.0], 55_000.0, dt, 2, 1.0);
        let gain: f64 = alloc.buffer_gain.iter().sum();
        let expect = (55_000.0 - 30_000.0) * dt;
        assert!((gain - expect).abs() < 1e-6, "gain {gain} expect {expect}");
    }
}
