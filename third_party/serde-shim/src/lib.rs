//! A dependency-free stand-in for the `serde` facade.
//!
//! The laqa workspace must build and test with **zero registry access**
//! (see DESIGN.md "Hermetic offline builds"), so the model crates cannot
//! depend on the real `serde`. This shim provides the same surface the
//! workspace uses — `Serialize`/`Deserialize` traits and the matching
//! derive macros — over a small JSON-like [`Value`] model instead of
//! serde's visitor machinery. Consumers rename it in their manifests
//! (`serde = { package = "laqa-serde-shim", ... }`) so
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize))]` works
//! unchanged and the feature stays buildable offline.
//!
//! Supported shapes (everything the workspace derives): named-field
//! structs, unit enums, and enums with named-field or tuple variants.
//! Scalars, `String`, `Option`, `Vec`, small tuples and
//! `BTreeMap<String, _>` have built-in impls.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

pub use laqa_serde_derive_shim::{Deserialize, Serialize};

/// A JSON-like data model: the intermediate form of every (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number (or `Null`, which reads as NaN —
    /// the reverse of how non-finite floats are written).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// (De)serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Serialize to compact JSON text (the shim's `serde_json::to_string`).
pub fn to_string<T: Serialize>(value: &T) -> String {
    value.to_value().to_json()
}

/// Look up `key` in object entries and deserialize it (derive support).
pub fn field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, Error> {
    let v = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field '{key}'")))?;
    T::from_value(v)
}

macro_rules! impl_num {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_num()
                    .map(|n| n as $ty)
                    .ok_or_else(|| Error::new(concat!("expected number for ", stringify!($ty))))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::new("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<u64, V> {
    fn to_value(&self) -> Value {
        // JSON object keys are strings; integer keys round-trip as decimal.
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<u64, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse::<u64>()
                    .map_err(|_| Error::new(format!("non-integer key '{k}'")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn json_text_shape() {
        let v = Value::Obj(vec![
            ("n".into(), Value::Num(3.0)),
            ("s".into(), Value::Str("a\"b".into())),
            ("a".into(), Value::Arr(vec![Value::Num(1.5), Value::Null])),
        ]);
        assert_eq!(v.to_json(), r#"{"n":3,"s":"a\"b","a":[1.5,null]}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value().to_json(), "null");
        let back = f64::from_value(&Value::Null).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn missing_field_reports_name() {
        let entries = vec![("a".to_string(), Value::Num(1.0))];
        let err = field::<f64>(&entries, "b").unwrap_err();
        assert!(err.to_string().contains("'b'"));
    }
}
