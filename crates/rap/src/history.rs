//! Sender-side transmission history and ACK-driven loss detection.
//!
//! RAP detects losses from the ACK stream rather than retransmission
//! timers: the receiver acknowledges every packet, each ACK carrying enough
//! redundancy (cumulative sequence + a bitmask of recent receptions) for
//! the sender to reconstruct which packets arrived. A packet is declared
//! lost once the receiver has demonstrably received `reorder_threshold`
//! (default 3, mirroring TCP's duplicate-ACK rule) packets sent after it.
//! RAP does not retransmit — the stream is loss-tolerant — but the loss
//! report feeds both the AIMD backoff and the quality-adaptation buffer
//! accounting.

use std::collections::VecDeque;

/// Record of one transmitted, not-yet-resolved packet.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketRecord {
    /// Transmission time (seconds).
    pub send_time: f64,
    /// Payload size (bytes).
    pub size: f64,
    /// Opaque tag the application attaches (the QA layer stores the layer
    /// index here so losses can be charged to the right buffer).
    pub tag: u32,
}

/// A resolved loss.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LostPacket {
    /// Sequence number of the lost packet.
    pub seq: u64,
    /// Its record.
    pub record: PacketRecord,
}

/// Outstanding-packet table with loss inference.
///
/// Sequence numbers from a RAP sender are assigned consecutively, so the
/// unresolved set is a dense sliding window: it lives in a `VecDeque`
/// ring indexed by `seq - base` rather than a tree, making every hot-path
/// operation O(1) amortized with **zero steady-state allocation** (the
/// ring's buffer is reused as the window slides). Resolved slots become
/// `None` in place; the front is trimmed so the window never grows past
/// the true in-flight span. All observable orders (resolution, loss
/// reporting, byte summation) remain ascending-sequence, exactly as the
/// previous `BTreeMap` implementation produced them.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransmissionHistory {
    /// Window of sends, `window[i]` holding sequence `base + i`
    /// (`None` once resolved).
    window: VecDeque<Option<PacketRecord>>,
    /// Sequence number of `window[0]`.
    base: u64,
    /// Unresolved (`Some`) entries in the window.
    live: usize,
    /// Highest sequence the receiver has demonstrably received.
    highest_received: Option<u64>,
    reorder_threshold: u64,
}

impl TransmissionHistory {
    /// New history with the given reorder threshold (packets received after
    /// a hole before the hole is declared lost).
    pub fn new(reorder_threshold: u64) -> Self {
        TransmissionHistory {
            window: VecDeque::new(),
            base: 0,
            live: 0,
            highest_received: None,
            reorder_threshold: reorder_threshold.max(1),
        }
    }

    /// Number of unresolved packets.
    pub fn outstanding(&self) -> usize {
        self.live
    }

    /// Bytes in flight (unresolved).
    pub fn outstanding_bytes(&self) -> f64 {
        // Summed in ascending-sequence order (same order the tree
        // iterated), so accumulated floating point is bit-identical.
        self.window
            .iter()
            .filter_map(|slot| slot.as_ref().map(|r| r.size))
            .sum()
    }

    /// Send time of the oldest unresolved packet.
    pub fn oldest_send_time(&self) -> Option<f64> {
        // The front slot is live whenever the window is non-empty (the
        // trim invariant), but scan defensively rather than rely on it.
        self.window
            .iter()
            .find_map(|slot| slot.as_ref().map(|r| r.send_time))
    }

    /// Drop resolved slots off the front so `window[0]` is live (or the
    /// window is empty). Keeps the ring bounded by the in-flight span.
    fn trim_front(&mut self) {
        while matches!(self.window.front(), Some(None)) {
            self.window.pop_front();
            self.base += 1;
        }
    }

    /// Register a transmission. Sequences are normally consecutive and
    /// increasing (the sender's counter); any gap is represented by
    /// resolved filler slots so out-of-pattern callers stay correct.
    pub fn on_send(&mut self, seq: u64, record: PacketRecord) {
        if self.window.is_empty() {
            self.base = seq;
            self.window.push_back(Some(record));
            self.live += 1;
            return;
        }
        if seq < self.base {
            while self.base - seq > 1 {
                self.window.push_front(None);
                self.base -= 1;
            }
            self.window.push_front(Some(record));
            self.base = seq;
            self.live += 1;
            return;
        }
        let i = (seq - self.base) as usize;
        if i < self.window.len() {
            if self.window[i].replace(record).is_none() {
                self.live += 1;
            }
            return;
        }
        while self.window.len() < i {
            self.window.push_back(None);
        }
        self.window.push_back(Some(record));
        self.live += 1;
    }

    /// Mark `seq` as received; returns its record (for RTT sampling) when it
    /// was outstanding.
    pub fn mark_received(&mut self, seq: u64) -> Option<PacketRecord> {
        self.highest_received = Some(self.highest_received.map_or(seq, |h| h.max(seq)));
        if seq < self.base {
            return None;
        }
        let i = (seq - self.base) as usize;
        let record = self.window.get_mut(i)?.take()?;
        self.live -= 1;
        self.trim_front();
        Some(record)
    }

    /// Mark every sequence `<= cum` as received (cumulative ACK), calling
    /// `resolved` once per record in ascending sequence order. The
    /// allocation-free core of [`mark_received_upto`].
    pub fn for_each_received_upto(
        &mut self,
        cum: u64,
        mut resolved: impl FnMut(u64, PacketRecord),
    ) {
        self.highest_received = Some(self.highest_received.map_or(cum, |h| h.max(cum)));
        while !self.window.is_empty() && self.base <= cum {
            let seq = self.base;
            let slot = self.window.pop_front().expect("checked non-empty");
            self.base += 1;
            if let Some(record) = slot {
                self.live -= 1;
                resolved(seq, record);
            }
        }
        self.trim_front();
    }

    /// Mark every sequence `<= cum` as received (cumulative ACK); returns
    /// the records resolved by this call (for delivery accounting).
    pub fn mark_received_upto(&mut self, cum: u64) -> Vec<(u64, PacketRecord)> {
        let mut out = Vec::new();
        self.for_each_received_upto(cum, |seq, record| out.push((seq, record)));
        out
    }

    /// Infer losses: every outstanding packet that precedes the highest
    /// received sequence by at least `reorder_threshold` is declared lost
    /// and removed. Returns the losses in sequence order.
    pub fn detect_losses(&mut self) -> Vec<LostPacket> {
        let Some(h) = self.highest_received else {
            return Vec::new();
        };
        if h < self.reorder_threshold {
            return Vec::new();
        }
        let cutoff = h - self.reorder_threshold;
        let mut lost = Vec::new();
        while !self.window.is_empty() && self.base <= cutoff {
            let seq = self.base;
            let slot = self.window.pop_front().expect("checked non-empty");
            self.base += 1;
            if let Some(record) = slot {
                self.live -= 1;
                lost.push(LostPacket { seq, record });
            }
        }
        self.trim_front();
        lost
    }

    /// Declare every outstanding packet lost (timeout). Returns them in
    /// sequence order.
    pub fn flush_all_as_lost(&mut self) -> Vec<LostPacket> {
        let base = self.base;
        let out = self
            .window
            .drain(..)
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.map(|record| LostPacket {
                    seq: base + i as u64,
                    record,
                })
            })
            .collect();
        self.live = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64) -> PacketRecord {
        PacketRecord {
            send_time: t,
            size: 1_000.0,
            tag: 0,
        }
    }

    #[test]
    fn received_packets_resolve() {
        let mut h = TransmissionHistory::new(3);
        h.on_send(1, rec(0.0));
        h.on_send(2, rec(0.1));
        assert_eq!(h.outstanding(), 2);
        let r = h.mark_received(1).unwrap();
        assert_eq!(r.send_time, 0.0);
        assert_eq!(h.outstanding(), 1);
    }

    #[test]
    fn loss_declared_after_reorder_threshold() {
        let mut h = TransmissionHistory::new(3);
        for seq in 1..=6 {
            h.on_send(seq, rec(seq as f64 * 0.1));
        }
        // 2 is lost; receive 1, 3, 4.
        h.mark_received(1);
        h.mark_received(3);
        h.mark_received(4);
        assert!(h.detect_losses().is_empty(), "only 2 packets past the hole");
        h.mark_received(5);
        let lost = h.detect_losses();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].seq, 2);
        assert_eq!(h.outstanding(), 1); // seq 6 still in flight
    }

    #[test]
    fn cumulative_ack_clears_prefix() {
        let mut h = TransmissionHistory::new(3);
        for seq in 1..=10 {
            h.on_send(seq, rec(0.0));
        }
        h.mark_received_upto(7);
        assert_eq!(h.outstanding(), 3);
        assert!(h.oldest_send_time().is_some());
    }

    #[test]
    fn reordering_within_threshold_not_lost() {
        let mut h = TransmissionHistory::new(3);
        for seq in 1..=4 {
            h.on_send(seq, rec(0.0));
        }
        // Receive out of order: 2, 1, 4, 3 — no losses.
        for seq in [2, 1, 4, 3] {
            h.mark_received(seq);
            assert!(h.detect_losses().is_empty());
        }
        assert_eq!(h.outstanding(), 0);
    }

    #[test]
    fn flush_all_reports_everything() {
        let mut h = TransmissionHistory::new(3);
        for seq in 1..=5 {
            h.on_send(seq, rec(seq as f64));
        }
        h.mark_received(3);
        let lost = h.flush_all_as_lost();
        assert_eq!(lost.len(), 4);
        assert_eq!(
            lost.iter().map(|l| l.seq).collect::<Vec<_>>(),
            vec![1, 2, 4, 5]
        );
        assert_eq!(h.outstanding(), 0);
    }

    #[test]
    fn outstanding_bytes_tracks_sizes() {
        let mut h = TransmissionHistory::new(3);
        h.on_send(
            1,
            PacketRecord {
                send_time: 0.0,
                size: 700.0,
                tag: 1,
            },
        );
        h.on_send(
            2,
            PacketRecord {
                send_time: 0.0,
                size: 300.0,
                tag: 2,
            },
        );
        assert_eq!(h.outstanding_bytes(), 1_000.0);
        h.mark_received(1);
        assert_eq!(h.outstanding_bytes(), 300.0);
    }

    #[test]
    fn tags_preserved_through_loss() {
        let mut h = TransmissionHistory::new(1);
        h.on_send(
            1,
            PacketRecord {
                send_time: 0.0,
                size: 1.0,
                tag: 42,
            },
        );
        h.mark_received(5);
        let lost = h.detect_losses();
        assert_eq!(lost[0].record.tag, 42);
    }
}
