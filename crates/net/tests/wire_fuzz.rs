//! Property tests for the wire codec: decoding arbitrary bytes must never
//! panic, and encode∘decode is the identity on valid messages.

use bytes::Bytes;
use laqa_net::Message;
use laqa_rap::AckInfo;
use proptest::prelude::*;

proptest! {
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Any result is fine; panicking is not.
        let _ = Message::decode(Bytes::from(data));
    }

    #[test]
    fn data_round_trips(
        flow in any::<u32>(),
        seq in any::<u64>(),
        layer in any::<u8>(),
        n_active in any::<u8>(),
        ts in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let m = Message::Data {
            flow,
            seq,
            layer,
            n_active,
            send_ts_us: ts,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn ack_round_trips(
        flow in any::<u32>(),
        ack_seq in any::<u64>(),
        cum_seq in any::<u64>(),
        highest in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let m = Message::Ack {
            flow,
            info: AckInfo { ack_seq, cum_seq, highest, mask },
        };
        prop_assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut in any::<usize>(),
    ) {
        let m = Message::Data {
            flow: 1,
            seq: 2,
            layer: 3,
            n_active: 4,
            send_ts_us: 5,
            payload: Bytes::from(payload),
        };
        let full = m.encode();
        let cut = cut % full.len();
        if cut == 0 {
            return Ok(());
        }
        let truncated = full.slice(0..cut);
        // Either decodes to something (a shorter valid prefix cannot exist
        // for DATA since the length field would overrun) or errors cleanly.
        let _ = Message::decode(truncated);
    }
}
