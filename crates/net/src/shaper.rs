//! Loopback bottleneck shaper.
//!
//! The paper's real-Internet experiments put the flow behind a congested
//! WAN path; without one, we reproduce the path in-process: a UDP relay
//! that serializes packets at a configured bandwidth, holds a finite
//! drop-tail queue, and adds propagation delay. Several endpoints can be
//! routed through one shaper, sharing its queue — which is what creates
//! honest congestive loss for the RAP sawtooth.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;
use tokio::time::{sleep_until, Duration, Instant};

/// Shaper parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShaperConfig {
    /// Serialization bandwidth (bytes/s).
    pub bandwidth: f64,
    /// One-way propagation delay added after serialization.
    pub delay: Duration,
    /// Drop-tail queue capacity (packets waiting behind the in-service
    /// one).
    pub queue_packets: usize,
    /// Probability of random (non-congestive) loss per packet.
    pub loss_rate: f64,
    /// Uniform random extra delay added per packet (models path jitter).
    pub jitter: Duration,
    /// Seed for the loss/jitter process (deterministic per seed).
    pub seed: u64,
}

impl Default for ShaperConfig {
    fn default() -> Self {
        ShaperConfig {
            bandwidth: 50_000.0,
            delay: Duration::from_millis(20),
            queue_packets: 30,
            loss_rate: 0.0,
            jitter: Duration::ZERO,
            seed: 1,
        }
    }
}

/// Counters exposed by a running shaper.
#[derive(Debug, Default)]
pub struct ShaperStats {
    /// Packets forwarded.
    pub forwarded: AtomicU64,
    /// Packets dropped at the queue tail.
    pub dropped: AtomicU64,
    /// Packets dropped by the random-loss process.
    pub random_losses: AtomicU64,
    /// Bytes forwarded.
    pub bytes: AtomicU64,
}

/// A running loopback shaper.
pub struct Shaper {
    /// Address endpoints should send through.
    pub addr: SocketAddr,
    routes: Arc<Mutex<HashMap<SocketAddr, SocketAddr>>>,
    /// Counters.
    pub stats: Arc<ShaperStats>,
    tasks: Vec<JoinHandle<()>>,
}

impl Shaper {
    /// Bind a shaper on an ephemeral loopback port and start its tasks.
    pub async fn spawn(cfg: ShaperConfig) -> std::io::Result<Shaper> {
        let socket = Arc::new(UdpSocket::bind("127.0.0.1:0").await?);
        let addr = socket.local_addr()?;
        let routes: Arc<Mutex<HashMap<SocketAddr, SocketAddr>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let stats = Arc::new(ShaperStats::default());

        // Stage 2: delayed delivery (keeps ordering: constant delay, FIFO).
        let (deliver_tx, mut deliver_rx) =
            mpsc::unbounded_channel::<(Instant, SocketAddr, Vec<u8>)>();
        let out_sock = socket.clone();
        let deliver_task = tokio::spawn(async move {
            while let Some((at, to, data)) = deliver_rx.recv().await {
                sleep_until(at).await;
                let _ = out_sock.send_to(&data, to).await;
            }
        });

        // Stage 1: receive + serialize. The queue is modelled virtually: a
        // packet is accepted when fewer than `queue_packets` are waiting
        // behind the in-service one, and `busy_until` advances by its
        // serialization time.
        let in_sock = socket.clone();
        let routes2 = routes.clone();
        let stats2 = stats.clone();
        let serialize_task = tokio::spawn(async move {
            let mut buf = vec![0u8; 65_536];
            let mut busy_until = Instant::now();
            // xorshift64*: deterministic loss/jitter per seed, no rand dep.
            let mut prng_state = cfg.seed.max(1);
            let mut prng = move || {
                prng_state ^= prng_state >> 12;
                prng_state ^= prng_state << 25;
                prng_state ^= prng_state >> 27;
                (prng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64
            };
            // (ready_at, to, data) of queued packets not yet handed to the
            // delivery stage.
            let (ser_tx, mut ser_rx) = mpsc::unbounded_channel::<(Instant, SocketAddr, Vec<u8>)>();
            let deliver_tx2 = deliver_tx.clone();
            let delay = cfg.delay;
            let queued_counter = Arc::new(AtomicU64::new(0));
            let qc2 = queued_counter.clone();
            // Drain serialized packets in order, decrementing the queue
            // occupancy as each finishes its service time.
            tokio::spawn(async move {
                while let Some((ready_at, to, data)) = ser_rx.recv().await {
                    sleep_until(ready_at).await;
                    qc2.fetch_sub(1, Ordering::SeqCst);
                    let _ = deliver_tx2.send((ready_at + delay, to, data));
                }
            });
            loop {
                let Ok((len, from)) = in_sock.recv_from(&mut buf).await else {
                    break;
                };
                let Some(to) = routes2.lock().get(&from).copied() else {
                    continue; // unrouted source: ignore
                };
                if cfg.loss_rate > 0.0 && prng() < cfg.loss_rate {
                    stats2.random_losses.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let queued = queued_counter.load(Ordering::SeqCst);
                if queued as usize > cfg.queue_packets {
                    stats2.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let now = Instant::now();
                let mut tx_time = Duration::from_secs_f64(len as f64 / cfg.bandwidth.max(1.0));
                if !cfg.jitter.is_zero() {
                    tx_time += cfg.jitter.mul_f64(prng());
                }
                busy_until = busy_until.max(now) + tx_time;
                queued_counter.fetch_add(1, Ordering::SeqCst);
                stats2.forwarded.fetch_add(1, Ordering::Relaxed);
                stats2.bytes.fetch_add(len as u64, Ordering::Relaxed);
                let _ = ser_tx.send((busy_until, to, buf[..len].to_vec()));
            }
        });

        Ok(Shaper {
            addr,
            routes,
            stats,
            tasks: vec![deliver_task, serialize_task],
        })
    }

    /// Route packets arriving from `from` to `to`.
    pub fn add_route(&self, from: SocketAddr, to: SocketAddr) {
        self.routes.lock().insert(from, to);
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.stats.dropped.load(Ordering::Relaxed)
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.stats.forwarded.load(Ordering::Relaxed)
    }

    /// Packets randomly lost so far.
    pub fn random_losses(&self) -> u64 {
        self.stats.random_losses.load(Ordering::Relaxed)
    }
}

impl Drop for Shaper {
    fn drop(&mut self) {
        for t in &self.tasks {
            t.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    async fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        (a, b)
    }

    #[tokio::test]
    async fn forwards_routed_packets_with_delay() {
        let shaper = Shaper::spawn(ShaperConfig {
            bandwidth: 1_000_000.0,
            delay: Duration::from_millis(30),
            queue_packets: 10,
            ..ShaperConfig::default()
        })
        .await
        .unwrap();
        let (a, b) = pair().await;
        shaper.add_route(a.local_addr().unwrap(), b.local_addr().unwrap());
        let t0 = Instant::now();
        a.send_to(b"ping", shaper.addr).await.unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = b.recv_from(&mut buf).await.unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(&buf[..len], b"ping");
        assert!(elapsed >= Duration::from_millis(29), "elapsed {elapsed:?}");
        assert!(elapsed < Duration::from_millis(300), "elapsed {elapsed:?}");
        assert_eq!(shaper.forwarded(), 1);
    }

    #[tokio::test]
    async fn unrouted_sources_are_ignored() {
        let shaper = Shaper::spawn(ShaperConfig::default()).await.unwrap();
        let (a, b) = pair().await;
        // No route for a. Let the shaper ingest (and discard) it before
        // the route exists.
        a.send_to(b"lost", shaper.addr).await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        shaper.add_route(a.local_addr().unwrap(), b.local_addr().unwrap());
        a.send_to(b"found", shaper.addr).await.unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = b.recv_from(&mut buf).await.unwrap();
        assert_eq!(&buf[..len], b"found");
    }

    #[tokio::test]
    async fn serialization_paces_throughput() {
        // 10 KB/s, 1 KB packets → 10 packets take ≥ ~0.9 s to drain.
        let shaper = Shaper::spawn(ShaperConfig {
            bandwidth: 10_000.0,
            delay: Duration::from_millis(1),
            queue_packets: 100,
            ..ShaperConfig::default()
        })
        .await
        .unwrap();
        let (a, b) = pair().await;
        shaper.add_route(a.local_addr().unwrap(), b.local_addr().unwrap());
        let payload = vec![0u8; 1_000];
        let t0 = Instant::now();
        for _ in 0..10 {
            a.send_to(&payload, shaper.addr).await.unwrap();
        }
        let mut buf = vec![0u8; 2_000];
        for _ in 0..10 {
            b.recv_from(&mut buf).await.unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(900),
            "drained in {elapsed:?}"
        );
    }

    #[tokio::test]
    async fn overflow_drops_excess() {
        let shaper = Shaper::spawn(ShaperConfig {
            bandwidth: 5_000.0, // slow: 0.2 s per 1 KB packet
            delay: Duration::from_millis(1),
            queue_packets: 2,
            ..ShaperConfig::default()
        })
        .await
        .unwrap();
        let (a, b) = pair().await;
        shaper.add_route(a.local_addr().unwrap(), b.local_addr().unwrap());
        let payload = vec![0u8; 1_000];
        for _ in 0..20 {
            a.send_to(&payload, shaper.addr).await.unwrap();
        }
        // Give the shaper a moment to ingest.
        tokio::time::sleep(Duration::from_millis(200)).await;
        assert!(shaper.dropped() > 0, "expected tail drops");
        assert!(shaper.forwarded() < 20);
        drop(b);
    }
}

#[cfg(test)]
mod impairment_tests {
    use super::*;

    #[tokio::test]
    async fn random_loss_drops_roughly_at_rate() {
        let shaper = Shaper::spawn(ShaperConfig {
            bandwidth: 10_000_000.0,
            delay: Duration::from_millis(1),
            queue_packets: 1_000,
            loss_rate: 0.3,
            seed: 9,
            ..ShaperConfig::default()
        })
        .await
        .unwrap();
        let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        shaper.add_route(a.local_addr().unwrap(), b.local_addr().unwrap());
        for _ in 0..300 {
            a.send_to(b"x", shaper.addr).await.unwrap();
        }
        tokio::time::sleep(Duration::from_millis(300)).await;
        let lost = shaper.random_losses();
        assert!(
            (50..=130).contains(&(lost as i64)),
            "expected ~90 losses of 300 at p=0.3, got {lost}"
        );
        drop(b);
    }

    #[tokio::test]
    async fn jitter_spreads_delivery_times() {
        let shaper = Shaper::spawn(ShaperConfig {
            bandwidth: 10_000_000.0,
            delay: Duration::from_millis(5),
            queue_packets: 1_000,
            jitter: Duration::from_millis(40),
            seed: 4,
            ..ShaperConfig::default()
        })
        .await
        .unwrap();
        let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        shaper.add_route(a.local_addr().unwrap(), b.local_addr().unwrap());
        let mut deltas = Vec::new();
        let mut buf = [0u8; 16];
        for _ in 0..20 {
            let t0 = Instant::now();
            a.send_to(b"x", shaper.addr).await.unwrap();
            b.recv_from(&mut buf).await.unwrap();
            deltas.push(t0.elapsed());
        }
        let min = deltas.iter().min().unwrap();
        let max = deltas.iter().max().unwrap();
        assert!(
            max.saturating_sub(*min) >= Duration::from_millis(10),
            "jitter should spread deliveries: min {min:?} max {max:?}"
        );
    }
}
