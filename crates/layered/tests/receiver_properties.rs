//! Property-based tests for the layered media substrate.

use laqa_layered::{LayerBuffer, LayeredEncoding, LayeredReceiver, LayeredStream, PacketId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn buffer_conserves_bytes(
        ops in proptest::collection::vec((0.0..10_000.0f64, any::<bool>()), 1..200),
    ) {
        let mut b = LayerBuffer::new();
        let mut pushed = 0.0;
        let mut consumed = 0.0;
        for (i, &(amount, is_push)) in ops.iter().enumerate() {
            if is_push {
                b.push(i as f64, amount);
                pushed += amount;
            } else {
                consumed += b.consume(amount);
            }
            prop_assert!(b.buffered() >= -1e-9);
        }
        prop_assert!((pushed - consumed - b.buffered()).abs() < 1e-6,
            "pushed {pushed} consumed {consumed} left {}", b.buffered());
    }

    #[test]
    fn consume_never_returns_more_than_requested(
        pushes in proptest::collection::vec(0.0..5_000.0f64, 1..50),
        want in 0.0..100_000.0f64,
    ) {
        let mut b = LayerBuffer::new();
        for (i, &p) in pushes.iter().enumerate() {
            b.push(i as f64, p);
        }
        let got = b.consume(want);
        prop_assert!(got <= want + 1e-9);
        prop_assert!(got <= pushes.iter().sum::<f64>() + 1e-9);
    }

    #[test]
    fn receiver_position_advances_iff_playing(
        feeds in proptest::collection::vec(0.0..2_000.0f64, 10..100),
    ) {
        let enc = LayeredEncoding::linear(3, 10_000.0).unwrap();
        let mut r = LayeredReceiver::new(enc, 2, 0.5);
        let mut t = 0.0;
        for &f in &feeds {
            r.on_data(t, 0, f);
            r.on_data(t, 1, f);
            let was_playing = r.playing();
            let pos_before = r.position();
            r.advance(0.1);
            if was_playing {
                prop_assert!((r.position() - pos_before - 0.1).abs() < 1e-9);
            } else if !r.playing() {
                prop_assert_eq!(r.position(), 0.0);
            }
            t += 0.1;
        }
    }

    #[test]
    fn stream_deadlines_monotone(
        layer in 0u8..4,
        seqs in proptest::collection::vec(0u64..10_000, 2..50),
    ) {
        let enc = LayeredEncoding::exponential(4, 4_000.0, 2.0).unwrap();
        let s = LayeredStream::new(enc, 120.0, 1_000);
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        let mut last = -1.0;
        for &seq in &sorted {
            let d = s.deadline(PacketId { layer, seq });
            prop_assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn payload_verification_rejects_any_flip(
        seq in 0u64..1_000,
        layer in 0u8..4,
        len in 9usize..600,
        flip in 0usize..600,
    ) {
        let enc = LayeredEncoding::linear(4, 10_000.0).unwrap();
        let s = LayeredStream::new(enc, 60.0, 1_000);
        let id = PacketId { layer, seq };
        let mut p = s.payload(id, len);
        prop_assert!(s.verify_payload(id, &p));
        let idx = flip % len;
        p[idx] ^= 0x01;
        prop_assert!(!s.verify_payload(id, &p));
    }

    #[test]
    fn layers_within_is_monotone_in_bandwidth(
        bw1 in 0.0..100_000.0f64,
        bw2 in 0.0..100_000.0f64,
    ) {
        let enc = LayeredEncoding::exponential(5, 2_000.0, 1.6).unwrap();
        let (lo, hi) = if bw1 <= bw2 { (bw1, bw2) } else { (bw2, bw1) };
        prop_assert!(enc.layers_within(lo) <= enc.layers_within(hi));
    }
}
