//! The quality-adaptive streaming server over tokio UDP.
//!
//! Drives the same [`laqa_rap::RapSender`] + [`laqa_core::QaController`]
//! pair as the simulator agent, but against the real clock and real
//! sockets: packets are paced with `sleep_until` at the RAP inter-packet
//! gap, allocation ticks run on a fixed period, and ACK datagrams are
//! processed as they arrive.

use crate::wire::{Message, DATA_HEADER_LEN};
use laqa_core::{MetricsCollector, QaConfig, QaController};
use laqa_layered::{LayeredStream, PacketId};
use laqa_rap::{RapConfig, RapEvent, RapSender};
use laqa_trace::TimeSeries;
use std::net::SocketAddr;
use tokio::net::UdpSocket;
use tokio::time::{sleep_until, Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// RAP protocol parameters.
    pub rap: RapConfig,
    /// Quality-adaptation parameters.
    pub qa: QaConfig,
    /// Allocation period (seconds).
    pub tick_dt: f64,
    /// Session duration (seconds).
    pub duration: f64,
    /// Flow id stamped on every packet.
    pub flow: u32,
    /// Where to send data (the data-path shaper, or the client directly).
    pub peer: SocketAddr,
    /// Layers `0..retransmit_protect` get selective retransmission of
    /// detected losses (§1.3); 0 disables (the paper's setting).
    pub retransmit_protect: usize,
}

/// What the server observed during the session.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Data packets sent.
    pub sent_packets: u64,
    /// Data packets sent per layer.
    pub sent_per_layer: Vec<u64>,
    /// Backoffs experienced.
    pub backoffs: u64,
    /// Selective retransmissions performed.
    pub retransmissions: u64,
    /// Quality-adaptation event log.
    pub metrics: MetricsCollector,
    /// Layer count over time.
    pub n_active_trace: TimeSeries,
    /// Transmission rate over time.
    pub rate_trace: TimeSeries,
    /// Final sender-side buffer estimates.
    pub final_buffers: Vec<f64>,
}

/// Run a streaming session: wait for a `Hello`, stream for
/// `cfg.duration` seconds, then send `Fin`.
pub async fn serve(
    socket: UdpSocket,
    cfg: ServerConfig,
    stream: LayeredStream,
) -> std::io::Result<ServerReport> {
    let mut rap = RapSender::new(cfg.rap.clone(), 0.0);
    let mut qa = QaController::new(cfg.qa.clone()).expect("valid QA config");
    let payload_len = (cfg.rap.packet_size as usize)
        .saturating_sub(DATA_HEADER_LEN)
        .max(16);
    let mut media_seq = vec![0u64; cfg.qa.max_layers];
    // rap_seq -> (layer, media_seq) for selective retransmission.
    let mut sent_map: std::collections::HashMap<u64, (usize, u64)> =
        std::collections::HashMap::new();
    let mut retx_queue: std::collections::VecDeque<(usize, u64)> =
        std::collections::VecDeque::new();
    let mut buf = vec![0u8; 65_536];

    // Wait for the subscription (bounded).
    let hello_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        tokio::select! {
            r = socket.recv_from(&mut buf) => {
                let (len, _) = r?;
                if let Ok(Message::Hello { .. }) =
                    Message::decode(bytes::Bytes::copy_from_slice(&buf[..len]))
                {
                    break;
                }
            }
            _ = sleep_until(hello_deadline) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no client Hello within 10 s",
                ));
            }
        }
    }

    let t0 = Instant::now();
    let elapsed = |i: Instant| i.duration_since(t0).as_secs_f64();
    let mut next_tick = 0.0f64;
    let mut report = ServerReport {
        sent_packets: 0,
        sent_per_layer: vec![0; cfg.qa.max_layers],
        backoffs: 0,
        retransmissions: 0,
        metrics: MetricsCollector::new(),
        n_active_trace: TimeSeries::new("n_active"),
        rate_trace: TimeSeries::new("tx_rate"),
        final_buffers: Vec::new(),
    };

    loop {
        let now = elapsed(Instant::now());
        if now >= cfg.duration {
            break;
        }
        rap.poll_timers(now);
        for e in rap.take_events() {
            match e {
                RapEvent::Backoff { rate, .. } => {
                    report.backoffs += 1;
                    qa.on_backoff(now, rate);
                }
                RapEvent::PacketAcked { size, tag, seq, .. } => {
                    qa.on_packet_delivered(tag as usize, size);
                    sent_map.remove(&seq);
                }
                RapEvent::PacketLost { seq, tag, .. } => {
                    if let Some((layer, m_seq)) = sent_map.remove(&seq) {
                        if (tag as usize) < cfg.retransmit_protect {
                            retx_queue.push_back((layer, m_seq));
                        }
                    }
                }
                RapEvent::RateIncrease { .. } => {}
            }
        }
        while now + 1e-9 >= next_tick {
            qa.set_slope(rap.slope());
            let r = qa.tick(next_tick, rap.rate(), cfg.tick_dt);
            report.n_active_trace.push(next_tick, r.n_active as f64);
            report.rate_trace.push(next_tick, rap.rate());
            next_tick += cfg.tick_dt;
        }
        if now >= rap.next_send_time() {
            let size = cfg.rap.packet_size;
            // Retransmissions of protected layers take priority over new
            // data; they ride the same paced budget.
            let (layer, m_seq) = match retx_queue.pop_front() {
                Some((l, m)) => {
                    report.retransmissions += 1;
                    (l, m)
                }
                None => {
                    let l = qa.next_packet_layer(size);
                    let m = media_seq[l];
                    media_seq[l] += 1;
                    (l, m)
                }
            };
            let seq = rap.register_send(now, size, layer as u32);
            sent_map.insert(seq, (layer, m_seq));
            let id = PacketId {
                layer: layer as u8,
                seq: m_seq,
            };
            // Payload = media sequence (for end-to-end verification) + the
            // stream's deterministic content.
            let mut payload = Vec::with_capacity(payload_len);
            payload.extend_from_slice(&id.seq.to_le_bytes());
            payload.extend_from_slice(&stream.payload(id, payload_len - 8));
            let msg = Message::Data {
                flow: cfg.flow,
                seq,
                layer: layer as u8,
                n_active: qa.n_active() as u8,
                send_ts_us: (now * 1e6) as u64,
                payload: payload.into(),
            };
            socket.send_to(&msg.encode(), cfg.peer).await?;
            report.sent_packets += 1;
            report.sent_per_layer[layer] += 1;
            continue; // re-evaluate immediately: more sends may be due
        }
        // Sleep until the next protocol event, waking early for ACKs.
        let next = rap
            .next_send_time()
            .min(rap.next_timer())
            .min(next_tick)
            .min(cfg.duration)
            .max(now + 1e-4);
        let wake = t0 + Duration::from_secs_f64(next);
        tokio::select! {
            r = socket.recv_from(&mut buf) => {
                let (len, _) = r?;
                if let Ok(Message::Ack { info, .. }) =
                    Message::decode(bytes::Bytes::copy_from_slice(&buf[..len]))
                {
                    let t = elapsed(Instant::now());
                    rap.on_ack(t, info);
                }
            }
            _ = sleep_until(wake) => {}
        }
    }

    // Announce the end (thrice: the path is lossy by design).
    for _ in 0..3 {
        socket
            .send_to(&Message::Fin { flow: cfg.flow }.encode(), cfg.peer)
            .await?;
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    report.metrics = qa.metrics().clone();
    report.final_buffers = qa.buffers().to_vec();
    Ok(report)
}
