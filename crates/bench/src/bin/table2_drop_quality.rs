//! **Table 2** — percentage of layer drops attributable to poor buffer
//! *distribution* (drops that a different split of the same total
//! buffering would have avoided), for `K_max ∈ {2, 3, 4, 5, 8}` under T1
//! and T2.
//!
//! The paper reports 0% across T1 and small-but-nonzero values for T2
//! (2.4% / 0% / 4.8% / 11% / –), worsening with `K_max` because
//! conservative buffering pushes more data into higher layers that sudden
//! bandwidth collapses (the CBR burst) then strand.

use laqa_bench::outdir;
use laqa_sim::{run_scenario, ScenarioConfig};
use laqa_trace::{pct, RunSummary, Table};

fn main() {
    let duration = 90.0;
    // Average over several seeds: a single run has only a handful of drop
    // events, so per-cell estimates would swing by 5-10% per event.
    let seeds = [7u64, 21, 42, 77, 99];
    let k_values = [2u32, 3, 4, 5, 8];
    let mut tbl = Table::new(
        "Table 2: drops due to poor buffer distribution",
        &[
            "test", "K_max=2", "K_max=3", "K_max=4", "K_max=5", "K_max=8",
        ],
    );
    let dir = outdir("table2");
    let mut rows = Vec::new();
    for (name, t2) in [("T1", false), ("T2", true)] {
        let mut row = vec![name.to_string()];
        for &k in &k_values {
            let mut f_sum = 0.0;
            let mut f_n = 0usize;
            let mut drops = 0usize;
            for &seed in &seeds {
                let cfg = if t2 {
                    ScenarioConfig::t2(k, duration, seed)
                } else {
                    ScenarioConfig::t1(k, duration, seed)
                };
                let out = run_scenario(&cfg);
                if let Some(f) = out.metrics.avoidable_drop_fraction() {
                    f_sum += f;
                    f_n += 1;
                }
                drops += out.metrics.drops();
            }
            let f = (f_n > 0).then(|| f_sum / f_n as f64);
            row.push(pct(f));
            let mut summary = RunSummary::new(format!("table2/{name}/k{k}"));
            summary
                .param("k_max", k)
                .param("test", name)
                .param("seeds", seeds.len())
                .metric("avoidable_fraction", f.unwrap_or(f64::NAN))
                .metric("drops_total", drops as f64);
            summary
                .write_json(dir.join(format!("summary_{name}_k{k}.json")))
                .expect("summary");
            eprintln!(
                "{name} K_max={k}: avoidable={} ({drops} drops over {} seeds)",
                pct(f),
                seeds.len()
            );
        }
        rows.push(row);
    }
    for row in rows {
        tbl.row(row);
    }
    println!("{}", tbl.render());
    println!("paper reported (for reference, their testbed):");
    println!("  T1: 0%    0%    0%    0%    0%");
    println!("  T2: 2.4%  0%    4.8%  11%   -");
    println!("expected shape: T1 at or near 0%; T2 small but nonzero, tending");
    println!("upward with K_max (sudden CBR collapses strand high-layer buffer).");
    std::fs::write(dir.join("table2.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());
}
