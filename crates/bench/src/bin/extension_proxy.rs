//! **Extension experiment (§7)** — proxy caching of layered streams.
//!
//! The paper closes with: "quality adaptation provides a perfect
//! opportunity for proxy caching … missing pieces that are likely to be
//! needed would be pre-fetched in a demand-driven fashion." We model a
//! proxy in front of a sequence of heterogeneous client sessions (each
//! session plays the quality its bandwidth allows) and measure the origin
//! traffic and hit rate as the cache warms, with and without the
//! demand-driven prefetcher running between sessions.

use laqa_bench::outdir;
use laqa_layered::{LayerCache, PacketId, PrefetchPlanner};
use laqa_trace::{RunSummary, Table};

/// Play one session at `layers` quality for `horizon` packets per layer;
/// returns the packets fetched from the origin.
fn run_session(cache: &mut LayerCache, layers: usize, horizon: u64) -> u64 {
    let mut origin_fetches = 0;
    for seq in 0..horizon {
        for layer in 0..layers as u8 {
            if !cache.request(PacketId { layer, seq }) {
                // Miss: fetch from the origin and store (write-through).
                cache.insert(PacketId { layer, seq });
                origin_fetches += 1;
            }
        }
    }
    origin_fetches
}

fn main() {
    let horizon = 600u64; // packets per layer (a 60 s clip at 10 pkt/s)
                          // Heterogeneous clients: modem, DSL, DSL, LAN, modem, LAN …
    let sessions = [2usize, 3, 3, 5, 2, 5, 4, 5];

    let mut tbl = Table::new(
        "Proxy caching: origin fetches per session",
        &[
            "session",
            "quality (layers)",
            "no prefetch",
            "with prefetch",
        ],
    );

    let mut plain = LayerCache::new(6);
    let mut prefetching = LayerCache::new(6);
    let mut plain_fetches = Vec::new();
    let mut prefetch_fetches = Vec::new();
    let mut demand_so_far = 1usize;

    for (i, &q) in sessions.iter().enumerate() {
        let a = run_session(&mut plain, q, horizon);
        // Between sessions, the prefetcher fills holes up to the demanded
        // quality plus one look-ahead layer (bounded rounds model the idle
        // bandwidth available between sessions).
        let planner = PrefetchPlanner::new(demand_so_far, horizon as usize);
        for p in planner.plan(&prefetching, horizon) {
            prefetching.insert(p);
        }
        let b = run_session(&mut prefetching, q, horizon);
        demand_so_far = demand_so_far.max(q);
        plain_fetches.push(a);
        prefetch_fetches.push(b);
        tbl.row(vec![
            (i + 1).to_string(),
            q.to_string(),
            a.to_string(),
            b.to_string(),
        ]);
    }

    println!("{}", tbl.render());
    let plain_total: u64 = plain_fetches.iter().sum();
    let prefetch_total: u64 = prefetch_fetches.iter().sum();
    println!("total origin fetches : {plain_total} (no prefetch) vs {prefetch_total} (prefetch)");
    println!(
        "hit rates            : {:.1}% vs {:.1}%",
        100.0 * plain.hits() as f64 / (plain.hits() + plain.misses()) as f64,
        100.0 * prefetching.hits() as f64 / (prefetching.hits() + prefetching.misses()) as f64
    );
    println!();
    println!("expected shape: the layered cache is useful from session 2 on —");
    println!("every later client replays the lower layers locally and only the");
    println!("first better-connected client per quality step touches the");
    println!("origin; the look-ahead prefetch removes even those misses for");
    println!("the next quality step up.");

    let dir = outdir("extension_proxy");
    let mut summary = RunSummary::new("extension_proxy");
    summary
        .metric("plain_origin_fetches", plain_total as f64)
        .metric("prefetch_origin_fetches", prefetch_total as f64)
        .metric(
            "plain_hit_rate",
            plain.hits() as f64 / (plain.hits() + plain.misses()) as f64,
        )
        .metric(
            "prefetch_hit_rate",
            prefetching.hits() as f64 / (prefetching.hits() + prefetching.misses()) as f64,
        );
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());

    assert!(
        prefetch_total <= plain_total,
        "prefetch must not increase origin load"
    );
    // From session 2 on, repeated-quality sessions are fully local.
    assert_eq!(plain_fetches[2], 0, "repeat quality must be all hits");
}
