//! Quickstart: drive the quality-adaptation controller by hand.
//!
//! The controller is transport-agnostic: you feed it the congestion
//! controller's rate once per period, send packets for the layers it picks,
//! and credit deliveries. Here a clean AIMD sawtooth stands in for the
//! congestion controller so the adaptation is easy to watch.
//!
//! ```sh
//! cargo run -p laqa-apps --example quickstart
//! ```

use laqa_core::{Phase, QaConfig, QaController};

fn main() {
    // 10 KB/s layers, up to 6 of them, buffering for K_max = 2 backoffs.
    let cfg = QaConfig {
        layer_rate: 10_000.0,
        max_layers: 6,
        k_max: 2,
        ..QaConfig::default()
    };
    let mut qa = QaController::new(cfg).expect("valid config");

    // The congestion controller's additive-increase slope S (bytes/s²);
    // RAP's is packet_size / srtt².
    let slope = 20_000.0;
    qa.set_slope(slope);

    // A clean AIMD sawtooth between 18 and 36 KB/s.
    let dt = 0.1;
    let mut rate: f64 = 18_000.0;
    let mut now = 0.0;
    println!("time   rate     phase     layers  total-buffer  allocation (B/s per layer)");
    for step in 0..400 {
        if rate >= 36_000.0 {
            rate /= 2.0;
            qa.on_backoff(now, rate); // multiplicative decrease happened
        }
        let report = qa.tick(now, rate, dt);

        // A perfect transport: deliver exactly the allocated bytes. A real
        // one paces packets with `next_packet_layer` and credits on ACK.
        for (layer, &r) in report.per_layer_rate.iter().enumerate() {
            qa.on_packet_delivered(layer, r * dt);
        }

        if step % 20 == 0 {
            let alloc: Vec<String> = report
                .per_layer_rate
                .iter()
                .map(|r| format!("{r:5.0}"))
                .collect();
            println!(
                "{now:5.1}  {rate:6.0}  {:<8}  {:>6}  {:>12.0}  [{}]",
                match report.phase {
                    Phase::Filling => "filling",
                    Phase::Draining => "draining",
                },
                report.n_active,
                qa.total_buffer(),
                alloc.join(" ")
            );
        }
        rate += slope * dt;
        now += dt;
    }

    println!();
    println!(
        "final: {} layers, {:.0} B buffered, {} quality changes, {} stalls",
        qa.n_active(),
        qa.total_buffer(),
        qa.metrics().quality_changes(),
        qa.metrics().stalls()
    );
    assert_eq!(qa.metrics().stalls(), 0, "base layer must never stall");
}
