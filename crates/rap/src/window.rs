//! A window-based AIMD sender — the paper's §7 plan to "extend the idea of
//! quality adaptation to other congestion control schemes that employ
//! AIMD algorithms", made concrete.
//!
//! Where RAP is rate-based (paced by an inter-packet gap), this sender is
//! **ACK-clocked** like TCP: it may transmit whenever fewer than `cwnd`
//! packets are in flight, grows the window by one packet per RTT
//! (congestion avoidance; slow start below `ssthresh`), and halves it per
//! loss event. The quality-adaptation layer is agnostic: it only consumes
//! the derived rate `cwnd·pkt/srtt`, the AIMD slope `pkt/srtt²` (identical
//! to RAP's — one packet per RTT per RTT), and the same [`RapEvent`]
//! stream.

use crate::history::{LostPacket, PacketRecord, TransmissionHistory};
use crate::receiver::AckInfo;
use crate::rtt::RttEstimator;
use crate::sender::{BackoffCause, RapEvent};

/// Window-sender configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowConfig {
    /// Payload bytes per packet.
    pub packet_size: f64,
    /// Initial congestion window (packets).
    pub initial_cwnd: f64,
    /// Slow-start threshold (packets).
    pub initial_ssthresh: f64,
    /// Initial RTT guess (seconds).
    pub initial_rtt: f64,
    /// Packets after a hole before it is declared lost.
    pub reorder_threshold: u64,
    /// Window ceiling (packets).
    pub max_cwnd: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            packet_size: 1_000.0,
            initial_cwnd: 2.0,
            initial_ssthresh: 32.0,
            initial_rtt: 0.2,
            reorder_threshold: 3,
            max_cwnd: 10_000.0,
        }
    }
}

/// ACK-clocked AIMD sender with the same event interface as
/// [`crate::RapSender`].
#[derive(Debug, Clone)]
pub struct WindowSender {
    cfg: WindowConfig,
    cwnd: f64,
    ssthresh: f64,
    rtt: RttEstimator,
    history: TransmissionHistory,
    next_seq: u64,
    recovery_seq: Option<u64>,
    last_progress: f64,
    timeouts_in_row: u32,
    /// EWMA of the derived rate. `cwnd/srtt` jumps a whole packet's worth
    /// per ACK in slow start; the QA allocation tick wants something
    /// steadier than that, so the trait's `tick_rate` reads this instead.
    smoothed_rate: f64,
    events: Vec<RapEvent>,
}

/// EWMA gain for the smoothed tick rate.
const RATE_SMOOTHING: f64 = 0.25;

impl WindowSender {
    /// New sender whose clock starts at `now`.
    pub fn new(cfg: WindowConfig, now: f64) -> Self {
        let cwnd = cfg.initial_cwnd.max(1.0);
        let smoothed_rate = cwnd * cfg.packet_size / cfg.initial_rtt.max(1e-6);
        WindowSender {
            cwnd,
            ssthresh: cfg.initial_ssthresh,
            rtt: RttEstimator::new(cfg.initial_rtt),
            history: TransmissionHistory::new(cfg.reorder_threshold),
            next_seq: 0,
            recovery_seq: None,
            last_progress: now,
            timeouts_in_row: 0,
            smoothed_rate,
            events: Vec::new(),
            cfg,
        }
    }

    /// Congestion window (packets).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT (seconds).
    pub fn srtt(&self) -> f64 {
        self.rtt.srtt()
    }

    /// Derived transmission rate (bytes/s): `cwnd · pkt / srtt`.
    pub fn rate(&self) -> f64 {
        self.cwnd * self.cfg.packet_size / self.rtt.srtt().max(1e-6)
    }

    /// EWMA-smoothed transmission rate (bytes/s) — a steadier signal than
    /// [`rate`](Self::rate) for per-tick consumers like the QA allocator.
    pub fn smoothed_rate(&self) -> f64 {
        self.smoothed_rate
    }

    /// AIMD slope `S = pkt/srtt²` (bytes/s²) — one packet per RTT gained
    /// each RTT, exactly like RAP's.
    pub fn slope(&self) -> f64 {
        let srtt = self.rtt.srtt().max(1e-6);
        self.cfg.packet_size / (srtt * srtt)
    }

    /// Packets in flight.
    pub fn in_flight(&self) -> usize {
        self.history.outstanding()
    }

    /// Whether the window permits a transmission right now.
    pub fn can_send(&self) -> bool {
        (self.history.outstanding() as f64) < self.cwnd.floor().max(1.0)
    }

    /// Configured packet size.
    pub fn packet_size(&self) -> f64 {
        self.cfg.packet_size
    }

    /// The configuration this sender was built with.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Next timer deadline (timeout clock) the owner should poll at.
    pub fn next_timer(&self) -> f64 {
        if self.history.outstanding() == 0 {
            return f64::INFINITY;
        }
        let rto = self.rtt.rto() * 2f64.powi(self.timeouts_in_row.min(6) as i32);
        self.last_progress + rto
    }

    /// Register a transmission; returns the sequence number.
    pub fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.history.on_send(
            seq,
            PacketRecord {
                send_time: now,
                size,
                tag,
            },
        );
        if self.history.outstanding() == 1 {
            self.last_progress = now;
        }
        seq
    }

    /// Process an ACK: RTT sampling, per-ACK window growth, loss handling.
    pub fn on_ack(&mut self, now: f64, ack: AckInfo) {
        self.last_progress = now;
        self.timeouts_in_row = 0;
        let mut resolved: Vec<(u64, PacketRecord)> = Vec::new();
        if let Some(record) = self.history.mark_received(ack.ack_seq) {
            self.rtt.sample(now - record.send_time);
            resolved.push((ack.ack_seq, record));
        }
        if ack.cum_seq != u64::MAX {
            resolved.extend(self.history.mark_received_upto(ack.cum_seq));
        }
        if ack.highest >= 1 {
            // Set bits only; bit `i` names sequence `highest - 1 - i` and
            // bits at or above `highest` are invalid. Ascending bit order,
            // same as the old 0..64 scan.
            let valid = if ack.highest >= 64 {
                u64::MAX
            } else {
                (1u64 << ack.highest) - 1
            };
            let mut bits = ack.mask & valid;
            while bits != 0 {
                let i = u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                if let Some(r) = self.history.mark_received(ack.highest - 1 - i) {
                    resolved.push((ack.highest - 1 - i, r));
                }
            }
        }
        for (seq, record) in resolved {
            self.events.push(RapEvent::PacketAcked {
                time: now,
                seq,
                size: record.size,
                tag: record.tag,
            });
            // Per-ACK growth: slow start below ssthresh, else CA.
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd.max(1.0);
            }
            self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
        }
        self.smoothed_rate += RATE_SMOOTHING * (self.rate() - self.smoothed_rate);
        let losses = self.history.detect_losses();
        self.handle_losses(now, losses);
    }

    /// Poll the timeout clock.
    pub fn poll_timers(&mut self, now: f64) {
        if now >= self.next_timer() {
            for l in self.history.flush_all_as_lost() {
                self.events.push(RapEvent::PacketLost {
                    time: now,
                    seq: l.seq,
                    size: l.record.size,
                    tag: l.record.tag,
                });
            }
            self.rtt.on_timeout();
            self.timeouts_in_row = self.timeouts_in_row.saturating_add(1);
            let pre_rate = self.rate();
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = 1.0;
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.last_progress = now;
            let rate = self.rate();
            self.smoothed_rate = rate;
            self.events.push(RapEvent::Backoff {
                time: now,
                rate,
                pre_rate,
                slope: self.slope(),
                cause: BackoffCause::Timeout,
            });
        }
    }

    fn handle_losses(&mut self, now: f64, losses: Vec<LostPacket>) {
        if losses.is_empty() {
            return;
        }
        let mut new_event = false;
        for l in &losses {
            self.events.push(RapEvent::PacketLost {
                time: now,
                seq: l.seq,
                size: l.record.size,
                tag: l.record.tag,
            });
            if self.recovery_seq.is_none_or(|r| l.seq > r) {
                new_event = true;
            }
        }
        if new_event {
            let pre_rate = self.rate();
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.recovery_seq = self.next_seq.checked_sub(1);
            let rate = self.rate();
            self.smoothed_rate = rate;
            self.events.push(RapEvent::Backoff {
                time: now,
                rate,
                pre_rate,
                slope: self.slope(),
                cause: BackoffCause::Loss,
            });
        }
    }

    /// Drain accumulated events.
    pub fn take_events(&mut self) -> Vec<RapEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drain accumulated events into `out`, preserving both buffers'
    /// capacity — the zero-allocation alternative to
    /// [`take_events`](Self::take_events) for per-tick polling loops.
    pub fn drain_events_into(&mut self, out: &mut Vec<RapEvent>) {
        out.append(&mut self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::RapReceiverState;

    fn sender() -> WindowSender {
        WindowSender::new(
            WindowConfig {
                initial_rtt: 0.05,
                ..WindowConfig::default()
            },
            0.0,
        )
    }

    /// Lossless echo path with one-way delay `owd`.
    fn run_clean(mut s: WindowSender, dur: f64, owd: f64) -> WindowSender {
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipe: Vec<(f64, u64)> = Vec::new();
        while now < dur {
            s.poll_timers(now);
            while !pipe.is_empty() && pipe[0].0 <= now {
                let (_, seq) = pipe.remove(0);
                s.on_ack(now, rx.on_data(seq));
            }
            while s.can_send() {
                let seq = s.register_send(now, s.packet_size(), 0);
                pipe.push((now + 2.0 * owd, seq));
            }
            now += 0.001;
        }
        s
    }

    #[test]
    fn window_opens_without_loss() {
        let s = run_clean(sender(), 2.0, 0.02);
        assert!(s.cwnd() > 30.0, "cwnd {}", s.cwnd());
        assert!(s.rate() > 100_000.0);
    }

    #[test]
    fn can_send_respects_window() {
        let mut s = sender();
        assert!(s.can_send());
        let w = s.cwnd().floor() as usize;
        for _ in 0..w {
            assert!(s.can_send());
            s.register_send(0.0, 1_000.0, 0);
        }
        assert!(!s.can_send(), "window exhausted");
    }

    #[test]
    fn loss_halves_window_once_per_cluster() {
        let mut s = sender();
        let mut rx = RapReceiverState::new();
        // Open the window a little first.
        for i in 0..8u64 {
            s.register_send(i as f64 * 0.01, 1_000.0, 0);
        }
        // Lose 2 and 4 from the same flight.
        for seq in [0u64, 1, 3, 5, 6, 7] {
            s.on_ack(0.2, rx.on_data(seq));
        }
        let backoffs = s
            .take_events()
            .iter()
            .filter(|e| matches!(e, RapEvent::Backoff { .. }))
            .count();
        assert_eq!(backoffs, 1, "one backoff per congestion event");
    }

    #[test]
    fn timeout_collapses_to_one_packet() {
        let mut s = sender();
        for i in 0..5u64 {
            s.register_send(i as f64 * 0.01, 1_000.0, 3);
        }
        s.poll_timers(10.0);
        assert_eq!(s.cwnd(), 1.0);
        let events = s.take_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, RapEvent::PacketLost { .. }))
                .count(),
            5
        );
    }

    #[test]
    fn slope_matches_rap_formula() {
        let s = run_clean(sender(), 1.0, 0.02);
        let srtt = s.srtt();
        assert!((s.slope() - 1_000.0 / (srtt * srtt)).abs() < 1e-6);
    }

    #[test]
    fn acked_events_carry_tags() {
        let mut s = sender();
        let mut rx = RapReceiverState::new();
        let seq = s.register_send(0.0, 1_000.0, 7);
        s.on_ack(0.05, rx.on_data(seq));
        let tag = s.take_events().iter().find_map(|e| match e {
            RapEvent::PacketAcked { tag, .. } => Some(*tag),
            _ => None,
        });
        assert_eq!(tag, Some(7));
    }
}
