//! Span timing: RAII guards that record count / total / max wall time
//! per named scope.
//!
//! ```
//! fn step() {
//!     let _guard = laqa_obs::span!("engine.step");
//!     // ... timed work; the guard records on drop ...
//! }
//! ```
//!
//! Wall time comes from `std::time::Instant` — the same monotonic clock
//! the `laqa-bench` timing harness calibrates with — so span totals are
//! directly comparable with bench figures. Spans measure *host* time;
//! simulation-time context belongs in the event log
//! ([`crate::event!`]), which stamps entries with sim-time.
//!
//! When obs is disabled, starting a span is one relaxed atomic load and
//! the guard's drop does nothing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub(crate) struct SpanCell {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

static SPANS: OnceLock<Mutex<Vec<Arc<SpanCell>>>> = OnceLock::new();

fn spans() -> &'static Mutex<Vec<Arc<SpanCell>>> {
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// A named timed scope. Declare via [`crate::span!`].
pub struct Span {
    name: &'static str,
    cell: OnceLock<Arc<SpanCell>>,
}

impl Span {
    /// Const handle; the cell registers on first use.
    pub const fn new(name: &'static str) -> Self {
        Span {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<SpanCell> {
        self.cell.get_or_init(|| {
            let cell = Arc::new(SpanCell {
                name: self.name,
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            });
            spans().lock().expect("obs spans").push(cell.clone());
            cell
        })
    }

    /// Start timing; the returned guard records on drop. While obs is
    /// disabled this is one relaxed load and the guard is inert.
    #[inline]
    pub fn start(&self) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { timed: None };
        }
        SpanGuard {
            timed: Some((self.cell().clone(), Instant::now())),
        }
    }

    /// Record an externally measured duration (e.g. a wall time taken
    /// around code that cannot hold a guard). No-op while disabled.
    pub fn record_secs(&self, secs: f64) {
        if !crate::enabled() {
            return;
        }
        record(self.cell(), (secs.max(0.0) * 1e9) as u64);
    }
}

fn record(cell: &SpanCell, ns: u64) {
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(ns, Ordering::Relaxed);
}

/// RAII guard returned by [`Span::start`].
pub struct SpanGuard {
    timed: Option<(Arc<SpanCell>, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.timed.take() {
            record(&cell, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Point-in-time copy of one span's accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Times the scope completed.
    pub count: u64,
    /// Summed wall time (nanoseconds).
    pub total_ns: u64,
    /// Longest single scope (nanoseconds).
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean scope duration in nanoseconds, `None` when never entered.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }
}

/// Snapshot all spans (merged by name, accumulators summed / maxed).
pub(crate) fn snapshot_spans() -> BTreeMap<String, SpanSnapshot> {
    let mut out: BTreeMap<String, SpanSnapshot> = BTreeMap::new();
    for cell in spans().lock().expect("obs spans").iter() {
        let snap = SpanSnapshot {
            count: cell.count.load(Ordering::Relaxed),
            total_ns: cell.total_ns.load(Ordering::Relaxed),
            max_ns: cell.max_ns.load(Ordering::Relaxed),
        };
        out.entry(cell.name.to_string())
            .and_modify(|e| {
                e.count += snap.count;
                e.total_ns += snap.total_ns;
                e.max_ns = e.max_ns.max(snap.max_ns);
            })
            .or_insert(snap);
    }
    out
}

/// Zero every registered span (cells stay registered).
pub(crate) fn reset_spans() {
    for cell in spans().lock().expect("obs spans").iter() {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_ns.store(0, Ordering::Relaxed);
        cell.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Open a timed scope named by a string literal; expands to a
/// [`SpanGuard`] that records on drop. Bind it (`let _guard = ...`) or
/// it drops — and records — immediately.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __LAQA_OBS_SPAN: $crate::Span = $crate::Span::new($name);
        __LAQA_OBS_SPAN.start()
    }};
}

#[cfg(test)]
mod tests {
    use crate::tests::TEST_LOCK;

    #[test]
    fn span_guard_accumulates_count_total_max() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        for _ in 0..3 {
            let _s = span!("span.test.loop");
            std::hint::black_box(0u64);
        }
        crate::set_enabled(false);
        let spans = super::snapshot_spans();
        let s = spans.get("span.test.loop").unwrap();
        assert_eq!(s.count, 3);
        assert!(s.total_ns >= s.max_ns);
        assert!(s.mean_ns().unwrap() <= s.max_ns as f64);
    }

    #[test]
    fn record_secs_feeds_accumulators() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        static SPAN: crate::Span = crate::Span::new("span.test.manual");
        SPAN.record_secs(0.001);
        SPAN.record_secs(0.003);
        crate::set_enabled(false);
        let spans = super::snapshot_spans();
        let s = spans.get("span.test.manual").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 3_000_000);
        assert_eq!(s.total_ns, 4_000_000);
    }
}
