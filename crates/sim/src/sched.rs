//! Event schedulers: the priority queue at the heart of the engine,
//! behind a trait so the optimized implementation can always be checked
//! against a reference oracle.
//!
//! Two implementations share one contract:
//!
//! * [`HeapScheduler`] — the original `BinaryHeap` queue, kept verbatim
//!   as the **reference oracle**. O(log n) per operation, moves the full
//!   event record on every sift.
//! * [`TimerWheelScheduler`] — a hierarchical timer wheel: near-future
//!   events hash into integer-nanosecond bucket slots (O(1) insert),
//!   far-future events overflow into a `BTreeMap` ordered by exact key,
//!   and every record is parked once in a [`Slab`](crate::arena::Slab)
//!   arena so only 20-byte keys circulate.
//!
//! **Ordering contract.** Events drain in strictly increasing
//! `(time_ns, seq)` order — exactly the tie-break the engine has always
//! used. `seq` values must be unique and strictly increasing across
//! [`Scheduler::schedule`] calls, and `time_ns` must never be below the
//! time of the most recently popped event (the engine clamps times to
//! `now` before scheduling). Under that contract the two implementations
//! are *bit-identical*: `crates/sim/tests/sched_differential.rs` proves
//! it over every golden, fault and campaign workload, and the
//! `sched_properties` suite over randomized insert/pop/cancel traces.

use crate::arena::Slab;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Handle to a scheduled event, for cancellation.
///
/// Keys are validated by the globally unique `seq`, so cancelling an
/// event that already fired (or was already cancelled) is a safe no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    /// The unique sequence number passed to [`Scheduler::schedule`].
    pub seq: u64,
    /// Implementation-private slot hint (slab index for the wheel).
    slot: u32,
}

/// The engine's event-queue abstraction (min-queue on `(time_ns, seq)`).
pub trait Scheduler<T> {
    /// Insert `item` to fire at `time_ns`. `seq` must be unique and
    /// strictly increasing across calls on this scheduler.
    fn schedule(&mut self, time_ns: u64, seq: u64, item: T) -> EventKey;

    /// Cancel a scheduled event. Returns `true` when a live event was
    /// removed; cancelling an already-popped or already-cancelled key is
    /// a no-op returning `false` (the reference heap, which cannot check
    /// liveness cheaply, may return `true` for such keys — callers that
    /// need the strict answer track liveness themselves).
    fn cancel(&mut self, key: EventKey) -> bool;

    /// `(time_ns, seq)` of the next event without removing it.
    fn peek_next(&mut self) -> Option<(u64, u64)>;

    /// Remove and return the next event as `(time_ns, seq, item)`.
    fn pop_next(&mut self) -> Option<(u64, u64, T)>;

    /// Pop the next event only if it fires at or before `bound_ns`.
    /// Behaviourally `peek_next` + conditional `pop_next`; implementations
    /// override it to do the head search once (this is the engine hot
    /// loop's only entry point).
    fn pop_next_at_or_before(&mut self, bound_ns: u64) -> Option<(u64, u64, T)> {
        match self.peek_next() {
            Some((t, _)) if t <= bound_ns => self.pop_next(),
            _ => None,
        }
    }

    /// Number of live (scheduled, not yet popped or cancelled) events.
    fn len(&self) -> usize;

    /// True when no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every event and return to the just-constructed logical state
    /// (cursor at time zero, no tombstones) while keeping backing storage
    /// — slab capacity, drain buffer, heap array — allocated for reuse.
    /// The warm-world pool resets a retired session's scheduler this way
    /// instead of rebuilding one from scratch.
    fn reset(&mut self);
}

// ---------------------------------------------------------------------------
// Reference implementation: the original BinaryHeap queue.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct HeapEntry<T> {
    time_ns: u64,
    seq: u64,
    item: T,
}

impl<T: PartialEq> Eq for HeapEntry<T> {}
impl<T: PartialEq> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: PartialEq> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// The original engine queue — a `BinaryHeap` min-ordered by
/// `(time_ns, seq)` — kept as the reference oracle the timer wheel is
/// differentially tested against. Cancellation is by tombstone: the
/// entry stays in the heap and is skipped at pop.
#[derive(Debug, Default)]
pub struct HeapScheduler<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    /// Seqs cancelled but not yet popped-over (empty in engine use; the
    /// engine never cancels).
    tombstones: HashSet<u64>,
}

impl<T: PartialEq> HeapScheduler<T> {
    /// New empty scheduler.
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            tombstones: HashSet::new(),
        }
    }

    fn skip_tombstones(&mut self) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if self.tombstones.is_empty() || !self.tombstones.remove(&head.seq) {
                break;
            }
            self.heap.pop();
        }
    }
}

impl<T: PartialEq> Scheduler<T> for HeapScheduler<T> {
    #[inline]
    fn schedule(&mut self, time_ns: u64, seq: u64, item: T) -> EventKey {
        self.heap.push(Reverse(HeapEntry { time_ns, seq, item }));
        EventKey {
            seq,
            slot: u32::MAX,
        }
    }

    fn cancel(&mut self, key: EventKey) -> bool {
        self.tombstones.insert(key.seq)
    }

    fn peek_next(&mut self) -> Option<(u64, u64)> {
        self.skip_tombstones();
        self.heap.peek().map(|Reverse(e)| (e.time_ns, e.seq))
    }

    fn pop_next(&mut self) -> Option<(u64, u64, T)> {
        self.skip_tombstones();
        self.heap.pop().map(|Reverse(e)| (e.time_ns, e.seq, e.item))
    }

    #[inline]
    fn pop_next_at_or_before(&mut self, bound_ns: u64) -> Option<(u64, u64, T)> {
        self.skip_tombstones();
        match self.heap.peek() {
            Some(Reverse(e)) if e.time_ns <= bound_ns => self
                .heap
                .pop()
                .map(|Reverse(e)| (e.time_ns, e.seq, e.item)),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.tombstones.len())
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.tombstones.clear();
    }
}

// ---------------------------------------------------------------------------
// Timer-wheel implementation.
// ---------------------------------------------------------------------------

/// Bucket granularity: `2^21` ns ≈ 2.1 ms per slot. Coarse enough that a
/// slot batches several events at simulation packet rates (the batch is
/// sorted once and drained O(1) per event), fine enough that sorts stay
/// tiny. Granularity does not limit precision — exact `time_ns` is kept
/// in the key and ordered within the slot.
const GRAN_SHIFT: u32 = 21;
/// `2^12 = 4096` slots → a horizon of ~8.6 s of simulated time. Events
/// farther out (session starts, RTO backoffs, CBR burst edges) go to the
/// overflow tree and re-enter through the cursor scan.
const SLOT_BITS: u32 = 12;
const SLOT_COUNT: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOT_COUNT as u64) - 1;
/// Bitmap words covering the slots (64 slots per word).
const BITMAP_WORDS: usize = SLOT_COUNT / 64;

/// Compact key circulated through wheel structures; the record itself
/// stays in the slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct WheelKey {
    time_ns: u64,
    seq: u64,
    idx: u32,
}

/// Sentinel stored into a record's `seq` by [`TimerWheelScheduler::cancel`]:
/// the record is dead and is reclaimed lazily by whichever structure holds
/// its sole reference (slot chain, drain, or overflow). Engine
/// sequence numbers count up from zero and can never reach it.
const DEAD_SEQ: u64 = u64::MAX;

/// Index sentinel terminating a slot's intrusive chain.
const NONE_IDX: u32 = u32::MAX;

/// One scheduled event parked in the slab. `next` threads the record into
/// its slot's intrusive LIFO chain (unused — `NONE_IDX` — for records
/// referenced by `drain` or `overflow`), so steady-state scheduling
/// performs no allocation at all: slot buckets are linked lists through
/// slab storage, not per-slot vectors.
#[derive(Debug, Clone)]
struct Rec<T> {
    time_ns: u64,
    seq: u64,
    next: u32,
    item: T,
}

/// Hierarchical timer-wheel scheduler (see module docs).
///
/// * **Near future** (`< ~8.6 s` ahead of the cursor): O(1) push into
///   `slots[tick & MASK]`; a per-word occupancy bitmap lets the cursor
///   skip runs of empty slots 64 at a time.
/// * **Far future**: exact-keyed `BTreeMap` — O(log m) on the small
///   population of long timers only.
/// * **Active tick**: when the cursor lands on a tick its events are
///   sorted once (keys are unique, so `sort_unstable` is deterministic)
///   and drained back-to-front; events scheduled *at or behind* the
///   active tick while it drains (the engine's "deliver now" path) are
///   merged into the sorted drain vector by binary-search insertion —
///   such events fire almost immediately, so they land at or near the
///   pop end and the shift is effectively free, preserving exact
///   `(time_ns, seq)` order without a side heap.
#[derive(Debug)]
pub struct TimerWheelScheduler<T> {
    /// Event records, addressed by the `idx` of a [`WheelKey`]. The
    /// record's `seq` is stored alongside so stale keys are detectable.
    slab: Slab<Rec<T>>,
    /// Near-future buckets: head index of each slot's intrusive chain
    /// (`NONE_IDX` when empty).
    slots: Box<[u32]>,
    /// One bit per slot: set while the slot's chain is non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Tick (time_ns >> GRAN_SHIFT) the wheel is currently draining.
    cursor_tick: u64,
    /// Current tick's events, sorted descending so `pop()` is O(1).
    /// Same-tick schedules merge in by sorted insertion.
    drain: Vec<WheelKey>,
    /// Far-future events beyond the wheel horizon, exact-keyed.
    overflow: BTreeMap<(u64, u64), u32>,
    /// Live events (excludes cancelled).
    live: usize,
}

impl<T> Default for TimerWheelScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheelScheduler<T> {
    /// New empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimerWheelScheduler {
            slab: Slab::new(),
            slots: vec![NONE_IDX; SLOT_COUNT].into_boxed_slice(),
            occupied: [0u64; BITMAP_WORDS],
            cursor_tick: 0,
            drain: Vec::new(),
            overflow: BTreeMap::new(),
            live: 0,
        }
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// True when `key` still references its live slab record.
    #[inline]
    fn is_live(&self, key: &WheelKey) -> bool {
        matches!(self.slab.get(key.idx), Some(rec) if rec.seq == key.seq)
    }

    /// Reclaim the slab slot behind a pruned key. Keys staged in `drain`
    /// are their record's sole reference, so a dead record found here can
    /// only be freed here.
    fn reclaim_if_dead(&mut self, idx: u32) {
        if matches!(self.slab.get(idx), Some(rec) if rec.seq == DEAD_SEQ) {
            self.slab.remove(idx);
        }
    }

    /// First tick in `(from, from + SLOT_COUNT]` whose slot list is
    /// non-empty, found by scanning the occupancy bitmap word-wise.
    fn next_occupied_tick(&self, from: u64) -> Option<u64> {
        let start = (from + 1) & SLOT_MASK;
        let mut scanned = 0usize;
        let mut word_idx = (start >> 6) as usize;
        let mut bit = (start & 63) as u32;
        while scanned < SLOT_COUNT {
            let word = self.occupied[word_idx] >> bit;
            if word != 0 {
                let slot = ((word_idx as u64) << 6) + u64::from(bit + word.trailing_zeros());
                // Translate the slot back to an absolute tick > `from`.
                let base = (from + 1) & !SLOT_MASK;
                let tick = if slot >= ((from + 1) & SLOT_MASK) {
                    base + slot
                } else {
                    base + SLOT_COUNT as u64 + slot
                };
                return Some(tick);
            }
            scanned += 64 - bit as usize;
            word_idx = (word_idx + 1) % BITMAP_WORDS;
            bit = 0;
        }
        None
    }

    /// Move the cursor to the next tick holding events and load them into
    /// `drain`. Returns `false` when the wheel holds no live events.
    fn advance_cursor(&mut self) -> bool {
        if self.live == 0 {
            // Everything left (if anything) is cancelled debris; reset so
            // the backing storage is reclaimed and scans stay short.
            if !self.slab.is_empty() || !self.overflow.is_empty() {
                self.slab.clear();
                self.overflow.clear();
                self.slots.fill(NONE_IDX);
                self.occupied = [0u64; BITMAP_WORDS];
                self.drain.clear();
            }
            return false;
        }
        let mut from = self.cursor_tick;
        loop {
            let slot_tick = self.next_occupied_tick(from);
            let overflow_tick = self
                .overflow
                .first_key_value()
                .map(|((t, _), _)| t >> GRAN_SHIFT);
            let target = match (slot_tick, overflow_tick) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                // live > 0 but nothing in slots within a lap or in the
                // overflow: the remaining events sit in slots more than a
                // full lap behind their fire tick, which cannot happen —
                // every slot insert targets a tick within one lap.
                (None, None) => unreachable!("live events but no occupied slot or overflow"),
            };
            // Collect the target tick's events by walking the slot chain;
            // dead records are reclaimed here, future-lap residents are
            // relinked (bucket order is irrelevant — the drain sort below
            // restores exact order).
            let slot = (target & SLOT_MASK) as usize;
            if slot_tick == Some(target) {
                let mut idx = self.slots[slot];
                let mut kept = NONE_IDX;
                while idx != NONE_IDX {
                    let rec = self.slab.get(idx).expect("slot chain entry is parked");
                    let (time_ns, seq, next) = (rec.time_ns, rec.seq, rec.next);
                    if seq == DEAD_SEQ {
                        self.slab.remove(idx);
                    } else if time_ns >> GRAN_SHIFT == target {
                        self.drain.push(WheelKey { time_ns, seq, idx });
                    } else {
                        self.slab.get_mut(idx).expect("checked live").next = kept;
                        kept = idx;
                    }
                    idx = next;
                }
                self.slots[slot] = kept;
                if kept == NONE_IDX {
                    self.clear_bit(slot);
                }
            }
            // ...and any overflow entries that fire on the same tick.
            while let Some((&(t, s), &idx)) = self.overflow.first_key_value() {
                if t >> GRAN_SHIFT != target {
                    break;
                }
                self.overflow.remove(&(t, s));
                if matches!(self.slab.get(idx), Some(rec) if rec.seq == DEAD_SEQ) {
                    self.slab.remove(idx);
                } else {
                    self.drain.push(WheelKey {
                        time_ns: t,
                        seq: s,
                        idx,
                    });
                }
            }
            self.cursor_tick = target;
            if self.drain.is_empty() {
                // Bitmap hit was a future-lap entry; keep scanning.
                from = target;
                continue;
            }
            // Descending sort: unique keys make this fully deterministic.
            self.drain
                .sort_unstable_by_key(|k| Reverse((k.time_ns, k.seq)));
            return true;
        }
    }

    /// Drop cancelled keys from the drain tail, then ensure at least one
    /// live event is staged (advancing the cursor as needed).
    /// Returns `false` when the scheduler is out of live events.
    #[inline]
    fn settle(&mut self) -> bool {
        loop {
            while let Some(&k) = self.drain.last() {
                if self.is_live(&k) {
                    break;
                }
                self.reclaim_if_dead(k.idx);
                self.drain.pop();
            }
            if !self.drain.is_empty() {
                return true;
            }
            if !self.advance_cursor() {
                return false;
            }
        }
    }
}

impl<T> Scheduler<T> for TimerWheelScheduler<T> {
    #[inline]
    fn schedule(&mut self, time_ns: u64, seq: u64, item: T) -> EventKey {
        debug_assert_ne!(seq, DEAD_SEQ, "sequence space exhausted");
        let tick = time_ns >> GRAN_SHIFT;
        if laqa_obs::enabled() {
            // Arming horizon: how far ahead of the cursor the event lands.
            // This metric shipped as `sched.wheel_slack_ns` before PR 10
            // and its ~1 s p99 was misread as delivery lateness; it is
            // simply RTO / QA-join-grade timers armed ~1 s out — ~477
            // ticks into the 4096-slot window, nowhere near the overflow
            // tree. The per-path counters below make the split explicit;
            // delivery exactness is pinned by `sched_differential` and
            // `far_future_timer_stays_in_window_and_fires_on_time`.
            laqa_obs::histogram!("sched.wheel_horizon_ns", laqa_obs::LOG_NS_BOUNDS)
                .observe(time_ns.saturating_sub(self.cursor_tick << GRAN_SHIFT) as f64);
            if tick <= self.cursor_tick {
                laqa_obs::counter!("sched.wheel_insert_active").inc();
            } else if tick - self.cursor_tick < SLOT_COUNT as u64 {
                laqa_obs::counter!("sched.wheel_insert_window").inc();
            } else {
                laqa_obs::counter!("sched.wheel_insert_overflow").inc();
            }
        }
        let idx;
        if tick <= self.cursor_tick {
            // At (or — for clamped times — behind) the active tick: merge
            // into the sorted drain vector so ordering against the
            // partially drained tick stays exact. Such events fire nearly
            // immediately, so the insertion point is at or near the pop
            // end and the shift is a few keys at most.
            idx = self.slab.insert(Rec {
                time_ns,
                seq,
                next: NONE_IDX,
                item,
            });
            let pos = self
                .drain
                .partition_point(|k| (k.time_ns, k.seq) > (time_ns, seq));
            self.drain.insert(pos, WheelKey { time_ns, seq, idx });
        } else if tick - self.cursor_tick < SLOT_COUNT as u64 {
            let slot = (tick & SLOT_MASK) as usize;
            idx = self.slab.insert(Rec {
                time_ns,
                seq,
                next: self.slots[slot],
                item,
            });
            self.slots[slot] = idx;
            self.set_bit(slot);
        } else {
            idx = self.slab.insert(Rec {
                time_ns,
                seq,
                next: NONE_IDX,
                item,
            });
            self.overflow.insert((time_ns, seq), idx);
        }
        self.live += 1;
        EventKey { seq, slot: idx }
    }

    fn cancel(&mut self, key: EventKey) -> bool {
        match self.slab.get_mut(key.slot) {
            Some(rec) if rec.seq == key.seq => {
                // Mark dead in place; the record (and its payload) is
                // reclaimed lazily by whichever structure holds its sole
                // reference — unlinking a chain interior here would cost
                // a walk, and correctness only needs the seq mismatch.
                rec.seq = DEAD_SEQ;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    fn peek_next(&mut self) -> Option<(u64, u64)> {
        if !self.settle() {
            return None;
        }
        self.drain.last().map(|k| (k.time_ns, k.seq))
    }

    fn pop_next(&mut self) -> Option<(u64, u64, T)> {
        if !self.settle() {
            return None;
        }
        let key = self.drain.pop().expect("settle staged a head");
        let rec = self.slab.remove(key.idx).expect("head key is live");
        self.live -= 1;
        Some((key.time_ns, key.seq, rec.item))
    }

    #[inline]
    fn pop_next_at_or_before(&mut self, bound_ns: u64) -> Option<(u64, u64, T)> {
        // Fused peek + pop — the engine hot loop's only entry point. Unlike
        // `pop_next` this skips the up-front liveness checks: a staged key
        // is its record's sole reference, so `slab.remove` returns either
        // the live record (seq matches) or the same record marked dead —
        // in which case the removal *is* the reclaim and we retry. A dead
        // candidate losing the head race only delays a live event behind
        // an even-smaller dead key, never reorders live events.
        loop {
            let Some(&key) = self.drain.last() else {
                if !self.advance_cursor() {
                    return None;
                }
                continue;
            };
            if key.time_ns > bound_ns {
                // A dead candidate here stays staged for a later settle;
                // any live head fires no earlier, so None stands.
                return None;
            }
            self.drain.pop();
            match self.slab.remove(key.idx) {
                Some(rec) if rec.seq == key.seq => {
                    self.live -= 1;
                    return Some((key.time_ns, key.seq, rec.item));
                }
                // Cancelled while staged; the remove above reclaimed it.
                _ => continue,
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn reset(&mut self) {
        self.slab.clear();
        self.slots.fill(NONE_IDX);
        self.occupied = [0u64; BITMAP_WORDS];
        self.cursor_tick = 0;
        self.drain.clear();
        self.overflow.clear();
        self.live = 0;
    }
}

// ---------------------------------------------------------------------------
// Scheduler selection.
// ---------------------------------------------------------------------------

/// Which event-queue implementation a [`crate::engine::World`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The original `BinaryHeap` queue (the differential-testing oracle).
    Reference,
    /// The hierarchical timer wheel (the default).
    #[default]
    Wheel,
}

impl SchedulerKind {
    /// Both kinds, reference first (the order differential harnesses use).
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Reference, SchedulerKind::Wheel];

    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Reference => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" | "reference" | "binheap" => Ok(SchedulerKind::Reference),
            "wheel" | "timer-wheel" => Ok(SchedulerKind::Wheel),
            other => Err(format!(
                "unknown scheduler '{other}' (expected 'heap' or 'wheel')"
            )),
        }
    }
}

/// Either scheduler behind one enum, so the engine's hot loop uses a
/// two-way match instead of virtual dispatch.
#[derive(Debug)]
pub enum AnyScheduler<T> {
    /// Reference `BinaryHeap` queue.
    Heap(HeapScheduler<T>),
    /// Timer wheel.
    Wheel(Box<TimerWheelScheduler<T>>),
}

impl<T: PartialEq> AnyScheduler<T> {
    /// New empty scheduler of the requested kind.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Reference => AnyScheduler::Heap(HeapScheduler::new()),
            SchedulerKind::Wheel => AnyScheduler::Wheel(Box::default()),
        }
    }

    /// Which kind this is.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            AnyScheduler::Heap(_) => SchedulerKind::Reference,
            AnyScheduler::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Pre-size backing storage for `additional` more in-flight events
    /// (heap array or wheel slab). Purely an allocator hint: scheduling
    /// order and capacity limits are unchanged. The megasession engine
    /// calls this before absorbing a batch of sessions so the shared
    /// arena grows once instead of doubling mid-run.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            AnyScheduler::Heap(s) => s.heap.reserve(additional),
            AnyScheduler::Wheel(s) => s.slab.reserve(additional),
        }
    }
}

impl<T: PartialEq> Scheduler<T> for AnyScheduler<T> {
    #[inline]
    fn schedule(&mut self, time_ns: u64, seq: u64, item: T) -> EventKey {
        match self {
            AnyScheduler::Heap(s) => s.schedule(time_ns, seq, item),
            AnyScheduler::Wheel(s) => s.schedule(time_ns, seq, item),
        }
    }
    fn cancel(&mut self, key: EventKey) -> bool {
        match self {
            AnyScheduler::Heap(s) => s.cancel(key),
            AnyScheduler::Wheel(s) => s.cancel(key),
        }
    }
    #[inline]
    fn peek_next(&mut self) -> Option<(u64, u64)> {
        match self {
            AnyScheduler::Heap(s) => s.peek_next(),
            AnyScheduler::Wheel(s) => s.peek_next(),
        }
    }
    fn pop_next(&mut self) -> Option<(u64, u64, T)> {
        match self {
            AnyScheduler::Heap(s) => s.pop_next(),
            AnyScheduler::Wheel(s) => s.pop_next(),
        }
    }
    #[inline]
    fn pop_next_at_or_before(&mut self, bound_ns: u64) -> Option<(u64, u64, T)> {
        match self {
            AnyScheduler::Heap(s) => s.pop_next_at_or_before(bound_ns),
            AnyScheduler::Wheel(s) => s.pop_next_at_or_before(bound_ns),
        }
    }
    #[inline]
    fn len(&self) -> usize {
        match self {
            AnyScheduler::Heap(s) => s.len(),
            AnyScheduler::Wheel(s) => s.len(),
        }
    }
    fn reset(&mut self) {
        match self {
            AnyScheduler::Heap(s) => s.reset(),
            AnyScheduler::Wheel(s) => s.reset(),
        }
    }
}

/// Ambient default used by [`crate::engine::World::new`]:
/// 0 = unset (read `LAQA_SCHED` once), 1 = Reference, 2 = Wheel.
static AMBIENT: AtomicU8 = AtomicU8::new(0);
static ENV_KIND: OnceLock<SchedulerKind> = OnceLock::new();

fn env_kind() -> SchedulerKind {
    *ENV_KIND.get_or_init(|| {
        std::env::var("LAQA_SCHED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    })
}

/// The ambient scheduler kind new worlds are built with: whatever
/// [`set_ambient_scheduler`] last installed, else the `LAQA_SCHED`
/// environment variable (`heap` or `wheel`), else [`SchedulerKind::Wheel`].
pub fn ambient_scheduler() -> SchedulerKind {
    match AMBIENT.load(Ordering::Relaxed) {
        1 => SchedulerKind::Reference,
        2 => SchedulerKind::Wheel,
        _ => env_kind(),
    }
}

/// Override the ambient scheduler kind process-wide (differential
/// harnesses flip this between runs; per-world control is
/// [`crate::engine::World::with_scheduler`]).
pub fn set_ambient_scheduler(kind: SchedulerKind) {
    let v = match kind {
        SchedulerKind::Reference => 1,
        SchedulerKind::Wheel => 2,
    };
    AMBIENT.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all<S: Scheduler<u32>>(s: &mut S) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(next) = s.pop_next() {
            out.push(next);
        }
        out
    }

    fn both() -> (HeapScheduler<u32>, TimerWheelScheduler<u32>) {
        (HeapScheduler::new(), TimerWheelScheduler::new())
    }

    #[test]
    fn drains_in_time_seq_order() {
        let (mut h, mut w) = both();
        // Same-time burst (seq breaks ties), plus out-of-order inserts.
        let events = [
            (5_000u64, 0u64),
            (1_000, 1),
            (5_000, 2),
            (1_000, 3),
            (70_000_000, 4), // different near slot
            (5_000, 5),
        ];
        for &(t, s) in &events {
            h.schedule(t, s, s as u32);
            w.schedule(t, s, s as u32);
        }
        let expect = vec![
            (1_000, 1, 1),
            (1_000, 3, 3),
            (5_000, 0, 0),
            (5_000, 2, 2),
            (5_000, 5, 5),
            (70_000_000, 4, 4),
        ];
        assert_eq!(drain_all(&mut h), expect);
        assert_eq!(drain_all(&mut w), expect);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        let horizon = (SLOT_COUNT as u64) << GRAN_SHIFT;
        w.schedule(horizon * 10, 0, 10);
        w.schedule(3, 1, 1);
        w.schedule(horizon * 3, 2, 3);
        w.schedule(u64::MAX, 3, 99);
        assert_eq!(
            drain_all(&mut w),
            vec![
                (3, 1, 1),
                (horizon * 3, 2, 3),
                (horizon * 10, 0, 10),
                (u64::MAX, 3, 99),
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn insert_at_active_tick_during_drain_keeps_order() {
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        w.schedule(100, 0, 0);
        w.schedule(200, 1, 1);
        assert_eq!(w.pop_next(), Some((100, 0, 0)));
        // The engine's "deliver now" path: schedule at the popped time.
        w.schedule(100, 2, 2);
        w.schedule(150, 3, 3);
        assert_eq!(w.pop_next(), Some((100, 2, 2)));
        assert_eq!(w.pop_next(), Some((150, 3, 3)));
        assert_eq!(w.pop_next(), Some((200, 1, 1)));
    }

    #[test]
    fn peek_matches_pop_and_does_not_consume() {
        let (mut h, mut w) = both();
        for s in [
            &mut h as &mut dyn Scheduler<u32>,
            &mut w as &mut dyn Scheduler<u32>,
        ] {
            s.schedule(9, 0, 0);
            s.schedule(4, 1, 1);
            assert_eq!(s.peek_next(), Some((4, 1)));
            assert_eq!(s.peek_next(), Some((4, 1)), "peek is idempotent");
            assert_eq!(s.pop_next(), Some((4, 1, 1)));
            assert_eq!(s.peek_next(), Some((9, 0)));
        }
    }

    #[test]
    fn cancel_removes_event_everywhere() {
        let horizon = (SLOT_COUNT as u64) << GRAN_SHIFT;
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        let near = w.schedule(50, 0, 0);
        let far = w.schedule(horizon * 2, 1, 1);
        let keep = w.schedule(60, 2, 2);
        assert_eq!(w.len(), 3);
        assert!(w.cancel(near));
        assert!(w.cancel(far));
        assert!(!w.cancel(near), "double cancel is a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(drain_all(&mut w), vec![(60, 2, 2)]);
        assert!(!w.cancel(keep), "cancel after pop is a no-op");
    }

    #[test]
    fn cancelled_slab_slot_reuse_does_not_resurrect() {
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        let a = w.schedule(100, 0, 0);
        assert!(w.cancel(a));
        // Reuses a's slab slot with a different seq; the stale key in the
        // slot list must not surface b twice nor resurrect a.
        w.schedule(100, 1, 1);
        assert_eq!(drain_all(&mut w), vec![(100, 1, 1)]);
    }

    #[test]
    fn wheel_empties_and_restarts_cleanly() {
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        w.schedule(1 << 20, 0, 0);
        assert_eq!(drain_all(&mut w), vec![(1 << 20, 0, 0)]);
        assert_eq!(w.pop_next(), None);
        // Restart after empty, at a later time (monotone contract).
        w.schedule(1 << 21, 1, 1);
        w.schedule((1 << 20) + 5, 2, 2);
        assert_eq!(
            drain_all(&mut w),
            vec![((1 << 20) + 5, 2, 2), (1 << 21, 1, 1)]
        );
    }

    #[test]
    fn heap_tombstone_cancel_skips_at_pop() {
        let mut h: HeapScheduler<u32> = HeapScheduler::new();
        let a = h.schedule(10, 0, 0);
        h.schedule(20, 1, 1);
        assert!(h.cancel(a));
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop_next(), Some((20, 1, 1)));
        assert_eq!(h.pop_next(), None);
    }

    #[test]
    fn slot_collision_across_laps_resolves() {
        // Two events a whole lap apart share a slot; the earlier must
        // drain first and the later must survive in the slot.
        let lap = (SLOT_COUNT as u64) << GRAN_SHIFT;
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        let t0 = 7 << GRAN_SHIFT;
        w.schedule(t0, 0, 0);
        assert_eq!(w.pop_next(), Some((t0, 0, 0)));
        // Cursor now at tick 7; same slot, next lap, is within horizon.
        w.schedule(t0 + lap, 1, 1);
        w.schedule(t0 + 5, 2, 2); // active tick
        assert_eq!(w.pop_next(), Some((t0 + 5, 2, 2)));
        assert_eq!(w.pop_next(), Some((t0 + lap, 1, 1)));
    }

    #[test]
    fn far_future_timer_stays_in_window_and_fires_on_time() {
        // PR 10 satellite: the benched `wheel_slack_p99 ≈ 1.03e9` was
        // misread as timers firing a second late. A timer armed ~1 s
        // ahead of the cursor sits well inside the 4096-slot window
        // (~8.6 s), never in the overflow tree, and is delivered at
        // exactly its due time — the histogram measures arming horizon.
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        let one_sec = 1_030_000_000u64; // the reported p99 horizon
        let window = (SLOT_COUNT as u64) << GRAN_SHIFT; // ~8.59 s
        w.schedule(one_sec, 0, 1);
        assert!(w.overflow.is_empty(), "a ~1 s timer must use a wheel slot");
        w.schedule(window + 1, 1, 2);
        assert_eq!(w.overflow.len(), 1, "a past-window timer must overflow");
        assert_eq!(w.pop_next(), Some((one_sec, 0, 1)));
        assert_eq!(w.pop_next(), Some((window + 1, 1, 2)));
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn horizon_histogram_pins_far_future_arming() {
        // Arming a timer `d` ns ahead of the cursor records exactly `d`
        // into sched.wheel_horizon_ns: the metric's p99 reports how far
        // ahead timers are armed, not how late they fire.
        let d = 1_030_000_000u64;
        let bucket = |snap: &laqa_obs::Snapshot| -> u64 {
            snap.histogram("sched.wheel_horizon_ns").map_or(0, |h| {
                let idx = h.bounds.partition_point(|&b| b < d as f64);
                h.counts[idx]
            })
        };
        let before = laqa_obs::snapshot();
        laqa_obs::set_enabled(true);
        let mut w: TimerWheelScheduler<u32> = TimerWheelScheduler::new();
        w.schedule(d, 0, 0);
        laqa_obs::set_enabled(false);
        let after = laqa_obs::snapshot();
        // Strictly-greater, not equal-plus-one: the registry is
        // process-global and parallel tests may arm wheels of their own
        // while the flag is up.
        assert!(
            bucket(&after) > bucket(&before),
            "the 1.03e9-horizon bucket did not advance"
        );
        assert_eq!(w.pop_next(), Some((d, 0, 0)), "delivery is still exact");
    }

    #[test]
    fn kind_parsing_and_labels() {
        assert_eq!("heap".parse::<SchedulerKind>(), Ok(SchedulerKind::Reference));
        assert_eq!("wheel".parse::<SchedulerKind>(), Ok(SchedulerKind::Wheel));
        assert!("nope".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::Reference.label(), "heap");
        assert_eq!(SchedulerKind::Wheel.label(), "wheel");
        assert_eq!(AnyScheduler::<u32>::new(SchedulerKind::Wheel).kind(), SchedulerKind::Wheel);
    }
}

