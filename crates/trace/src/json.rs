//! A small self-contained JSON value model with writer and parser.
//!
//! The tier-1 verify runs with zero registry access (DESIGN.md, "Hermetic
//! offline builds"), so the trace crate cannot depend on `serde_json`.
//! This module covers everything the workspace needs from it: building
//! values, rendering compact or pretty text, and parsing text back —
//! enough for [`crate::RunSummary`] files and the golden-trace fixtures.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Render as compact JSON (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(*n, out),
            JsonValue::Str(s) => write_str(s, out),
            JsonValue::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            JsonValue::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_str(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer; map
                            // anything unpaired to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice. The input is a &str (valid UTF-8), and
                    // both delimiters are ASCII so they can never land
                    // inside a multi-byte sequence — the run is always
                    // char-boundary aligned. One validation per run keeps
                    // parsing linear; per-character validation of the tail
                    // made multi-megabyte trace files take minutes.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "3", "-2.5", "\"hi\"", "1e-3"] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_compact()).unwrap(), v, "for {text}");
        }
    }

    #[test]
    fn nested_round_trips_compact_and_pretty() {
        let text = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":{},"d":[]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_compact(), text);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        let v = JsonValue::Num(0.997_712_345_678_9);
        let back = parse(&v.to_compact()).unwrap();
        assert_eq!(back.as_num(), Some(0.997_712_345_678_9));
    }

    #[test]
    fn get_looks_up_keys() {
        let v = parse(r#"{"x": 1, "y": [2]}"#).unwrap();
        assert_eq!(v.get("x").and_then(JsonValue::as_num), Some(1.0));
        assert_eq!(v.get("y").and_then(JsonValue::as_arr).map(<[_]>::len), Some(1));
        assert!(v.get("z").is_none());
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.at, 6);
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }
}
