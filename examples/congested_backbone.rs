//! A quality-adaptive flow on a congested backbone: the paper's T1
//! workload — one QA-RAP video flow sharing an 800 Kb/s bottleneck with
//! 9 plain RAP flows and 10 TCP flows — in the packet-level simulator.
//!
//! ```sh
//! cargo run --release -p laqa-apps --example congested_backbone
//! ```

use laqa_sim::{run_scenario, ScenarioConfig};

/// Tiny terminal sparkline.
fn spark(points: &[(f64, f64)], width: usize) -> String {
    const G: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if points.len() < 2 {
        return String::new();
    }
    let max = points.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let min = points.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
    let range = (max - min).max(1e-9);
    let step = points.len().div_ceil(width);
    points
        .chunks(step)
        .map(|c| {
            let v = c.iter().map(|&(_, v)| v).sum::<f64>() / c.len() as f64;
            G[(((v - min) / range) * (G.len() - 1) as f64).round() as usize]
        })
        .collect()
}

fn main() {
    let duration = 40.0;
    let cfg = ScenarioConfig::t1(2, duration, 42);
    println!(
        "simulating {duration:.0} s: 1 QA flow + {} RAP + {} TCP over {:.0} B/s...",
        cfg.n_rap, cfg.n_tcp, cfg.dumbbell.bottleneck_bw
    );
    let out = run_scenario(&cfg);

    println!();
    println!("tx rate : {}", spark(&out.traces.tx_rate.points, 64));
    println!("layers  : {}", spark(&out.traces.n_active.points, 64));
    println!();
    println!("QA flow backoffs     : {}", out.backoffs);
    println!("quality changes      : {}", out.metrics.quality_changes());
    println!("buffering efficiency : {:?}", out.metrics.efficiency());
    println!("base-layer stalls    : {}", out.metrics.stalls());
    println!("bottleneck drops     : {}", out.bottleneck.dropped);
    println!(
        "background RAP (B/s) : {:?}",
        out.rap_throughput
            .iter()
            .map(|t| *t as i64)
            .collect::<Vec<_>>()
    );
    println!(
        "background TCP (B/s) : {:?}",
        out.tcp_goodput
            .iter()
            .map(|t| *t as i64)
            .collect::<Vec<_>>()
    );

    let peak = out.traces.n_active.max().unwrap_or(0.0);
    assert!(peak >= 2.0, "the QA flow should reach multiple layers");
    assert_eq!(out.metrics.stalls(), 0, "base layer must never stall");
}
