//! Live sessions (§7): "these mechanisms can also be deployed for
//! non-interactive live sessions where the client can tolerate a short
//! delay in delivery."
//!
//! Live changes one thing: the server cannot send data that does not exist
//! yet. A client that tolerates a delivery delay of `D` seconds lets the
//! server hold at most `D·c_i` bytes of layer `i` in the receiver's
//! buffer. That caps the protection: the analytic part below computes the
//! largest smoothing factor `K_max` whose optimal buffer states fit under
//! the cap; the driven part runs the controller against a sawtooth with
//! the cap enforced and shows the base layer still never stalls.
//!
//! ```sh
//! cargo run -p laqa-apps --example live_session
//! ```

use laqa_core::{QaConfig, QaController, StateSequence};

/// Largest k whose every per-layer target fits under `delay·C`.
fn max_supported_k(rate: f64, n: usize, c: f64, slope: f64, delay: f64) -> u32 {
    let cap = delay * c;
    let mut best = 0;
    for k in 1..=8u32 {
        let seq = StateSequence::build(rate, n, c, slope, k);
        let fits = seq
            .states
            .iter()
            .all(|st| st.per_layer.iter().all(|&b| b <= cap + 1e-9));
        if fits {
            best = k;
        }
    }
    best
}

fn main() {
    let c = 10_000.0;
    let n = 3;
    let slope = 8_000.0;
    let rate = 40_000.0;

    println!("live streaming: how much smoothing does a delay budget buy?");
    println!("(3 layers x 10 KB/s, peak rate 40 KB/s, S = 8 KB/s^2)\n");
    println!("tolerated delay D   largest K_max whose states fit under D*C");
    for delay in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let k = max_supported_k(rate, n, c, slope, delay);
        println!("{delay:>16.1}s   {k}");
    }
    println!();

    // Drive a live session: buffers hard-capped at D·C per layer.
    let delay = 2.0;
    let cap = delay * c;
    let cfg = QaConfig {
        layer_rate: c,
        max_layers: 4,
        k_max: max_supported_k(rate, n, c, slope, delay).max(1),
        ..QaConfig::default()
    };
    println!(
        "driving a sawtooth with D = {delay}s (cap {cap:.0} B/layer), K_max = {}",
        cfg.k_max
    );
    let mut qa = QaController::new(cfg).unwrap();
    qa.set_slope(slope);
    let dt = 0.05;
    let mut now = 0.0;
    let mut r: f64 = 20_000.0;
    let mut capped_deliveries = 0u64;
    for _ in 0..4000 {
        if r >= rate {
            r /= 2.0;
            qa.on_backoff(now, r);
        }
        let report = qa.tick(now, r, dt);
        for (layer, &alloc) in report.per_layer_rate.iter().enumerate() {
            // The live edge: never let a layer's buffer exceed the delay
            // budget — surplus transmissions simply cannot exist yet.
            let buffered = qa.buffers().get(layer).copied().unwrap_or(0.0);
            let room = (cap - buffered).max(0.0);
            let deliver = (alloc * dt).min(room + c * dt);
            if deliver < alloc * dt {
                capped_deliveries += 1;
            }
            qa.on_packet_delivered(layer, deliver);
        }
        r += slope * dt;
        now += dt;
    }
    println!(
        "after {now:.0}s: {} layers, {:.0} B buffered, {} stalls",
        qa.n_active(),
        qa.total_buffer(),
        qa.metrics().stalls()
    );
    println!("deliveries clipped by the live edge: {capped_deliveries}");
    println!();
    println!("takeaway: a couple of seconds of tolerated delay already buys");
    println!("multi-backoff protection; the mechanism needs no other change.");
    assert_eq!(qa.metrics().stalls(), 0);
    for &b in qa.buffers() {
        assert!(b <= cap + c * dt + 1.0, "live cap respected: {b}");
    }
}
