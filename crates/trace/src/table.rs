//! Aligned text tables — the format the experiment binaries print so the
//! output can be compared line-for-line with the paper's Tables 1 and 2.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to an aligned text block.
    pub fn render(&self) -> String {
        let n_cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
            let total: usize = widths
                .iter()
                .map(|w| w + 2)
                .sum::<usize>()
                .saturating_sub(2);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a fraction as a percentage with two decimals ("99.77%"), or "-"
/// for `None` — the paper's Table 1/2 cell style.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.2}%", v * 100.0),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["k", "value"]);
        t.row(vec!["2".into(), "99.77%".into()]);
        t.row(vec!["10".into(), "9%".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
        // Right-aligned: the "2" sits under the "k" column end.
        assert!(lines[3].contains(" 2"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("", &["a,b", "c"]);
        t.row(vec!["1".into(), "x\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn pct_formats_like_paper() {
        assert_eq!(pct(Some(0.9977)), "99.77%");
        assert_eq!(pct(Some(0.0)), "0.00%");
        assert_eq!(pct(None), "-");
    }

    #[test]
    fn ragged_rows_handled() {
        let mut t = Table::new("", &["a"]);
        t.row(vec!["1".into(), "extra".into()]);
        assert!(t.render().contains("extra"));
        assert_eq!(t.n_rows(), 1);
    }
}
