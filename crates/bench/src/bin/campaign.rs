//! `campaign` — parallel sweep driver over the paper's T1/T2 workloads.
//!
//! Re-derives Tables 1 and 2 as one multi-threaded campaign instead of
//! the one-cell-at-a-time loops in `table1_efficiency`/`table2_drop_quality`,
//! and doubles as the determinism harness: every mode cross-checks the
//! campaign fingerprint across thread counts and fails loudly on any
//! divergence.
//!
//! ```text
//! campaign                 # full Table 1+2 sweep (50 sessions, 90 s each)
//! campaign --smoke         # seconds-long sweep + 1-vs-2-thread replay check
//! campaign --scaling       # 64-session speedup measurement (1 vs N threads)
//! campaign --faults        # fault-injection intensity sweep (recovery time,
//!                          # layer-change rate, base-layer starvation)
//! campaign --faults --smoke  # seconds-long fault sweep + replay check
//! options: --threads N  --duration S  --kmax 2,3,4  --seeds 7,21  --out DIR
//!          --intensity 0,0.5,1   # fault-suite intensities (with --faults)
//!          --transport rap,bbr,nada,tcp  # QA-flow congestion controllers:
//!                         # every selected transport runs the full grid,
//!                         # turning the sweep into the QA × transport
//!                         # interop matrix (default rap only)
//!          --trace lte,bloat,diurnal,bonded  # hostile-network (TraceLink)
//!                         # axis: every selected trace family runs the full
//!                         # grid on a schedule-driven bottleneck (LTE-style
//!                         # capacity swings, on-off bufferbloat with a deep
//!                         # standing buffer, diurnal ramps, or a bonded
//!                         # two-path bottleneck). Composes with --transport
//!                         # and --faults (default: steady links)
//!          --obs DIR      # enable laqa-obs + the flight recorder and
//!                         # export snapshot + flight trace to DIR
//!          --mega         # run the sweep on the megasession executor
//!                         # (fingerprints identical to per-cell)
//!          --sched heap|wheel    # event-scheduler implementation (default wheel;
//!                                # fingerprints are identical either way)
//! ```
//!
//! `--obs` turns the workspace-wide instrumentation (and the flight
//! recorder) on for the run and writes `metrics.json` / `spans.json` /
//! `events.json` / `flight.json` to DIR afterwards (render with
//! `laqa obs-report --dir DIR`, convert the flight trace with
//! `laqa obs-trace --dir DIR`). Observability is inert: fingerprints are
//! bit-identical with and without it.

use laqa_bench::cli::Args;
use laqa_bench::outdir;
use laqa_sim::{
    run_campaign, run_campaign_opts, CampaignOptions, CampaignResult, CampaignSpec, SessionResult,
    TestKind, TraceKind, Transport,
};
use laqa_trace::{pct, Table};

/// Parse `--transport rap,bbr,nada,tcp` (default: RAP only).
fn parse_transports(args: &Args) -> Result<Vec<Transport>, AnyError> {
    parse_list(args, "transport", &[Transport::Rap])
}

/// Parse `--trace lte,bloat,diurnal,bonded` (default: no trace axis —
/// steady links, byte-identical to the historical sweeps).
fn parse_traces(args: &Args) -> Result<Vec<TraceKind>, AnyError> {
    parse_list(args, "trace", &[])
}

/// Expand a sweep across the selected transports: every session of the
/// base grid runs once per transport, transport-major so each
/// controller's cells stay contiguous in the output table. A plain
/// `[Rap]` selection returns the grid untouched (byte-identical labels
/// and fingerprints to the pre-interop sweeps).
fn expand_transports(mut spec: CampaignSpec, transports: &[Transport]) -> CampaignSpec {
    if transports == [Transport::Rap] {
        return spec;
    }
    let base = std::mem::take(&mut spec.sessions);
    spec.sessions = transports
        .iter()
        .flat_map(|&transport| {
            base.iter().cloned().map(move |mut s| {
                s.transport = transport;
                s
            })
        })
        .collect();
    spec
}

/// Expand a sweep across the selected trace families, trace-major (each
/// family's cells stay contiguous, mirroring [`expand_transports`]). An
/// empty selection returns the grid untouched — steady links, with the
/// historical labels and fingerprints.
fn expand_traces(mut spec: CampaignSpec, traces: &[TraceKind]) -> CampaignSpec {
    if traces.is_empty() {
        return spec;
    }
    let base = std::mem::take(&mut spec.sessions);
    spec.sessions = traces
        .iter()
        .flat_map(|&trace| {
            base.iter().cloned().map(move |mut s| {
                s.trace = Some(trace);
                s
            })
        })
        .collect();
    spec
}

/// Per-trace-family hostile summary: how fast quality recovers after the
/// link turns on the session, and what the damage cost — recovery time,
/// base-layer starvation, discarded bytes — plus the trace activity
/// itself (schedule points applied, second-leg bytes on bonded cells).
fn hostile_table(result: &CampaignResult, traces: &[TraceKind]) -> String {
    let mut tbl = Table::new(
        "hostile grid: QA damage by trace family (mean over cells)",
        &[
            "trace", "chg/s", "recovery", "starved B", "discarded B", "stalls", "trace pts",
            "bond B",
        ],
    );
    for &t in traces {
        let cells: Vec<&SessionResult> = result
            .sessions
            .iter()
            .filter(|s| s.spec.trace == Some(t))
            .collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let mean = |f: &dyn Fn(&SessionResult) -> f64| cells.iter().map(|s| f(s)).sum::<f64>() / n;
        let recoveries: Vec<f64> = cells.iter().filter_map(|s| s.recovery_secs_mean).collect();
        let recovery = if recoveries.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{:.2}s",
                recoveries.iter().sum::<f64>() / recoveries.len() as f64
            )
        };
        let bond: Vec<u64> = cells.iter().filter_map(|s| s.bond_leg_bytes).collect();
        let bond = if bond.is_empty() {
            "-".to_string()
        } else {
            format!("{:.0}", bond.iter().sum::<u64>() as f64 / bond.len() as f64)
        };
        tbl.row(vec![
            t.label().to_string(),
            format!("{:.3}", mean(&|s| s.layer_change_rate)),
            recovery,
            format!("{:.0}", mean(&|s| s.base_starved_bytes)),
            format!("{:.0}", mean(&|s| s.discarded_bytes)),
            format!("{:.1}", mean(&|s| s.stalls as f64)),
            format!("{:.0}", mean(&|s| s.trace_changes as f64)),
            bond,
        ]);
    }
    tbl.render()
}

/// Per-transport interop summary: the hardening metrics the QA ×
/// transport matrix is judged on (recovery time after drops, layer-change
/// rate, base-layer starvation), one row per transport.
fn interop_table(result: &CampaignResult, transports: &[Transport]) -> String {
    let mut tbl = Table::new(
        "interop matrix: QA metrics by transport (mean over cells)",
        &[
            "transport", "eff", "chg/s", "recovery", "starved B", "stalls", "backoffs",
            "underflows",
        ],
    );
    for &t in transports {
        let cells: Vec<&SessionResult> = result
            .sessions
            .iter()
            .filter(|s| s.spec.transport == t)
            .collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let mean = |f: &dyn Fn(&SessionResult) -> f64| cells.iter().map(|s| f(s)).sum::<f64>() / n;
        let effs: Vec<f64> = cells.iter().filter_map(|s| s.efficiency).collect();
        let eff = if effs.is_empty() {
            "-".to_string()
        } else {
            format!("{:.4}", effs.iter().sum::<f64>() / effs.len() as f64)
        };
        let recoveries: Vec<f64> = cells.iter().filter_map(|s| s.recovery_secs_mean).collect();
        let recovery = if recoveries.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{:.2}s",
                recoveries.iter().sum::<f64>() / recoveries.len() as f64
            )
        };
        tbl.row(vec![
            t.label().to_string(),
            eff,
            format!("{:.3}", mean(&|s| s.layer_change_rate)),
            recovery,
            format!("{:.0}", mean(&|s| s.base_starved_bytes)),
            format!("{:.1}", mean(&|s| s.stalls as f64)),
            format!("{:.1}", mean(&|s| s.backoffs as f64)),
            format!("{:.1}", mean(&|s| s.rx_underflows as f64)),
        ]);
    }
    tbl.render()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_none_or(|a| a.starts_with("--")) {
        raw.insert(0, "run".to_string());
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.command != "run" {
        // Catch e.g. `campaign smoke` (meaning `--smoke`) before it
        // silently runs the full 50-session sweep instead.
        eprintln!(
            "error: unexpected argument '{}' — this binary takes options only \
             (--smoke, --scaling, --faults, --threads N, --duration S, --kmax a,b, \
             --seeds a,b, --intensity a,b, --transport rap,bbr,nada,tcp, \
             --trace lte,bloat,diurnal,bonded, --out DIR, --obs DIR)",
            args.command
        );
        std::process::exit(2);
    }
    if let Some(raw) = args.options.get("sched") {
        match raw.parse::<laqa_sim::SchedulerKind>() {
            Ok(kind) => laqa_sim::set_ambient_scheduler(kind),
            Err(e) => {
                eprintln!("error: --sched {raw}: {e}");
                std::process::exit(2);
            }
        }
    }
    let obs_dir = args.options.get("obs").map(std::path::PathBuf::from);
    if obs_dir.is_some() {
        laqa_obs::set_enabled(true);
        laqa_obs::flight::set_enabled(true);
    }
    let result = if args.flag("faults") {
        cmd_faults(&args)
    } else if args.flag("smoke") {
        cmd_smoke(&args)
    } else if args.flag("scaling") {
        cmd_scaling(&args)
    } else {
        cmd_tables(&args)
    };
    let result = result.and_then(|()| match &obs_dir {
        Some(dir) => export_obs(dir),
        None => Ok(()),
    });
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Write the accumulated obs snapshot to `dir` (metrics/spans/events
/// JSON) plus the flight-recorder trace (`flight.json`).
fn export_obs(dir: &std::path::Path) -> Result<(), AnyError> {
    laqa_obs::set_enabled(false);
    laqa_obs::flight::set_enabled(false);
    let snap = laqa_obs::snapshot();
    snap.write_dir(dir)?;
    println!(
        "obs: wrote snapshot to {} ({} counters, {} spans, {} events kept) — \
         render with `laqa obs-report --dir {}`",
        dir.display(),
        snap.counters.len(),
        snap.spans.len(),
        snap.events.len(),
        dir.display(),
    );
    let flight = laqa_obs::flight::snapshot_flight();
    if !flight.records.is_empty() {
        std::fs::write(dir.join("flight.json"), flight.to_json().to_compact())?;
        println!(
            "obs: wrote flight.json ({} records on {} tracks, {} evicted) — \
             convert with `laqa obs-trace --dir {}`",
            flight.records.len(),
            flight.session_ids().len(),
            flight.evicted,
            dir.display(),
        );
    }
    Ok(())
}

type AnyError = Box<dyn std::error::Error>;

/// Run the sweep on the executor `--mega` selects (per-cell warm by
/// default, megasession with `--mega`) using the ambient scheduler.
fn run_sweep(args: &Args, spec: &CampaignSpec, threads: usize) -> CampaignResult {
    let mut opts = CampaignOptions::new(threads);
    if args.flag("mega") {
        opts = opts.mega();
    }
    run_campaign_opts(spec, opts)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

fn parse_list<T>(args: &Args, key: &str, default: &[T]) -> Result<Vec<T>, AnyError>
where
    T: std::str::FromStr + Copy,
{
    match args.options.get(key) {
        None => Ok(default.to_vec()),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<T>()
                    .map_err(|_| format!("invalid --{key} entry '{s}'").into())
            })
            .collect(),
    }
}

/// Assert the sweep reproduces bit-identically on a different thread count.
fn check_replay(spec: &CampaignSpec, reference: &CampaignResult, threads: usize) -> Result<(), AnyError> {
    let replay = run_campaign(spec, threads);
    if replay.fingerprint() != reference.fingerprint() {
        return Err(format!(
            "NON-DETERMINISM: fingerprint {:016x} with {} threads vs {:016x} with {}",
            replay.fingerprint(),
            replay.threads,
            reference.fingerprint(),
            reference.threads,
        )
        .into());
    }
    println!(
        "replay check: {} sessions, fingerprint {:016x} identical at {} and {} threads",
        spec.len(),
        reference.fingerprint(),
        reference.threads,
        replay.threads,
    );
    Ok(())
}

/// Seconds-long sweep wired into `scripts/verify.sh`.
fn cmd_smoke(args: &Args) -> Result<(), AnyError> {
    let duration: f64 = args.get("duration", 8.0)?;
    let transports = parse_transports(args)?;
    let traces = parse_traces(args)?;
    let spec = expand_traces(
        expand_transports(
            CampaignSpec::grid(&[TestKind::T1], &[2, 4], &[7, 21], duration),
            &transports,
        ),
        &traces,
    );
    let result = run_sweep(args, &spec, 2);
    println!("{}", result.table());
    if transports.len() > 1 {
        println!("{}", interop_table(&result, &transports));
    }
    if !traces.is_empty() {
        println!("{}", hostile_table(&result, &traces));
    }
    check_replay(&spec, &result, 1)?;
    println!("smoke ok: {} sessions in {:.2}s", spec.len(), result.wall_secs);
    Ok(())
}

/// Fault-injection intensity sweep: the `faults_suite` campaign. Reports
/// the hardening metrics (recovery time after drops, layer-change rate,
/// base-layer starvation) per intensity and cross-checks determinism the
/// same way every other mode does.
fn cmd_faults(args: &Args) -> Result<(), AnyError> {
    let smoke = args.flag("smoke");
    let threads: usize = args.get("threads", if smoke { 2 } else { default_threads() })?;
    let duration: f64 = args.get("duration", if smoke { 12.0 } else { 45.0 })?;
    let default_intensities: &[f64] = if smoke {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let intensities: Vec<f64> = parse_list(args, "intensity", default_intensities)?;
    let default_seeds: &[u64] = if smoke { &[7] } else { &[7, 21, 42] };
    let seeds: Vec<u64> = parse_list(args, "seeds", default_seeds)?;
    let k_values: Vec<u32> = parse_list(args, "kmax", &[2])?;
    let transports = parse_transports(args)?;
    let traces = parse_traces(args)?;
    let spec = expand_traces(
        expand_transports(
            CampaignSpec::faults_grid(&[TestKind::T1], &k_values, &intensities, &seeds, duration),
            &transports,
        ),
        &traces,
    );
    println!(
        "faults_suite: {} sessions ({duration:.0}s each) on {threads} threads, \
         intensities {intensities:?}",
        spec.len()
    );
    let result = run_sweep(args, &spec, threads);
    println!("{}", result.table());

    let mut tbl = Table::new(
        "fault suite: stability vs intensity (mean over seeds)",
        &["intensity", "chg/s", "recovery", "starved B", "stalls", "drops"],
    );
    for &i in &intensities {
        let cells: Vec<&SessionResult> = result
            .sessions
            .iter()
            .filter(|s| s.spec.fault_intensity.unwrap_or(0.0) == i)
            .collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let mean = |f: &dyn Fn(&SessionResult) -> f64| -> f64 {
            cells.iter().map(|s| f(s)).sum::<f64>() / n
        };
        let recoveries: Vec<f64> = cells.iter().filter_map(|s| s.recovery_secs_mean).collect();
        let recovery = if recoveries.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{:.2}s",
                recoveries.iter().sum::<f64>() / recoveries.len() as f64
            )
        };
        tbl.row(vec![
            format!("{i:.2}"),
            format!("{:.3}", mean(&|s| s.layer_change_rate)),
            recovery,
            format!("{:.0}", mean(&|s| s.base_starved_bytes)),
            format!("{:.1}", mean(&|s| s.stalls as f64)),
            format!("{:.1}", mean(&|s| s.drops as f64)),
        ]);
    }
    println!("{}", tbl.render());
    if transports.len() > 1 {
        println!("{}", interop_table(&result, &transports));
    }
    if !traces.is_empty() {
        println!("{}", hostile_table(&result, &traces));
    }
    check_replay(&spec, &result, if threads == 1 { 2 } else { 1 })?;

    if let Some(dir) = args.options.get("out") {
        let dir = std::path::PathBuf::from(dir);
        for summary in result.summaries() {
            let name = summary.experiment.replace('/', "_");
            summary.write_json(dir.join(format!("{name}.json")))?;
        }
        println!("wrote {} summaries to {}", result.sessions.len(), dir.display());
    }
    println!(
        "faults ok: {} sessions in {:.2}s",
        spec.len(),
        result.wall_secs
    );
    Ok(())
}

/// 64-session sweep timed at 1 worker and at `--threads` workers.
fn cmd_scaling(args: &Args) -> Result<(), AnyError> {
    let threads: usize = args.get("threads", default_threads().min(8))?;
    let duration: f64 = args.get("duration", 12.0)?;
    let seeds: Vec<u64> = parse_list(args, "seeds", &[7, 21, 42, 77, 99, 123, 256, 1024])?;
    let k_values: Vec<u32> = parse_list(args, "kmax", &[2, 3, 4, 8])?;
    let spec = CampaignSpec::grid(&TestKind::ALL, &k_values, &seeds, duration);
    println!(
        "scaling sweep: {} sessions of {duration:.0}s simulated time",
        spec.len()
    );
    let serial = run_campaign(&spec, 1);
    println!("  1 thread : {:>7.2}s wall", serial.wall_secs);
    let parallel = run_campaign(&spec, threads);
    println!("  {threads} threads: {:>7.2}s wall", parallel.wall_secs);
    check_replay(&spec, &serial, threads)?;
    let speedup = serial.wall_secs / parallel.wall_secs.max(1e-9);
    println!("speedup: {speedup:.2}x with {threads} threads");
    Ok(())
}

fn mean_over<T>(
    result: &CampaignResult,
    test: TestKind,
    k: u32,
    f: impl Fn(&SessionResult) -> T,
) -> f64
where
    T: Into<f64>,
{
    let vals: Vec<f64> = result
        .sessions
        .iter()
        .filter(|s| s.spec.test == test && s.spec.k_max == k)
        .map(|s| f(s).into())
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// The full Table 1 + Table 2 sweep as one campaign.
fn cmd_tables(args: &Args) -> Result<(), AnyError> {
    let threads: usize = args.get("threads", default_threads())?;
    let duration: f64 = args.get("duration", 90.0)?;
    let seeds: Vec<u64> = parse_list(args, "seeds", &[7, 21, 42, 77, 99])?;
    let k_values: Vec<u32> = parse_list(args, "kmax", &[2, 3, 4, 5, 8])?;
    let transports = parse_transports(args)?;
    let traces = parse_traces(args)?;
    let spec = expand_traces(
        expand_transports(
            CampaignSpec::grid(&TestKind::ALL, &k_values, &seeds, duration),
            &transports,
        ),
        &traces,
    );
    println!(
        "running {} sessions ({duration:.0}s simulated each) on {threads} threads...",
        spec.len()
    );
    let result = run_sweep(args, &spec, threads);
    println!("{}", result.table());

    let headers: Vec<String> = k_values.iter().map(|k| format!("K_max={k}")).collect();
    let mut header_refs: Vec<&str> = vec!["test"];
    header_refs.extend(headers.iter().map(String::as_str));

    // With several transports each gets its own Table 1/2 pair (a
    // cross-transport mean would compare nothing meaningful); the plain
    // RAP sweep keeps the exact titles the paper uses.
    let print_tables = |sub: &CampaignResult, suffix: &str| {
        let mut t1 = Table::new(
            &*format!("Table 1{suffix}: buffering efficiency e (mean over drop events)"),
            &header_refs,
        );
        for &test in &TestKind::ALL {
            let mut row = vec![test.label().to_string()];
            for &k in &k_values {
                row.push(pct(sub.mean_metric(test, k, |s| s.efficiency)));
            }
            t1.row(row);
        }
        println!("{}", t1.render());

        let mut t2 = Table::new(
            &*format!("Table 2{suffix}: avoidable drops / quality changes (mean per run)"),
            &header_refs,
        );
        for &test in &TestKind::ALL {
            let mut row = vec![test.label().to_string()];
            for &k in &k_values {
                let avoid = pct(sub.mean_metric(test, k, |s| s.avoidable_drops));
                let changes = mean_over(sub, test, k, |s| s.quality_changes as f64);
                row.push(format!("{avoid} / {changes:.1}"));
            }
            t2.row(row);
        }
        println!("{}", t2.render());
    };
    if transports.len() > 1 {
        for &t in &transports {
            let sub = CampaignResult {
                sessions: result
                    .sessions
                    .iter()
                    .filter(|s| s.spec.transport == t)
                    .cloned()
                    .collect(),
                threads: result.threads,
                wall_secs: 0.0,
                merge_secs: 0.0,
            };
            print_tables(&sub, &format!(" [{}]", t.label()));
        }
        println!("{}", interop_table(&result, &transports));
    } else {
        print_tables(&result, "");
    }
    if !traces.is_empty() {
        println!("{}", hostile_table(&result, &traces));
    }

    let dir = match args.options.get("out") {
        Some(d) => std::path::PathBuf::from(d),
        None => outdir("campaign"),
    };
    for summary in result.summaries() {
        let name = summary.experiment.replace('/', "_");
        summary.write_json(dir.join(format!("{name}.json")))?;
    }
    println!(
        "wrote {} summaries to {} (campaign fingerprint {:016x}, {:.1}s wall)",
        result.sessions.len(),
        dir.display(),
        result.fingerprint(),
        result.wall_secs,
    );
    Ok(())
}
