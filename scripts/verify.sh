#!/usr/bin/env bash
# Tier-1 verification for the hermetic default workspace.
#
# Runs entirely offline: the default workspace graph contains only local
# path dependencies (see DESIGN.md, "Hermetic offline builds"), so every
# step below must succeed with zero registry access. The network-facing
# laqa-net crate is excluded from the workspace and is NOT covered here —
# build it explicitly with `cargo build --manifest-path crates/net/Cargo.toml`
# on a machine with registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/5 build (release) =="
cargo build --release

echo "== 2/5 tests =="
cargo test -q

echo "== 3/5 clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== 4/5 campaign smoke sweep =="
cargo run --release -p laqa-bench --bin campaign -- --smoke

echo "== 5/5 observability inertness (fingerprints with --obs on vs off) =="
# The smoke sweep prints one fingerprint line per replay check; enabling
# the laqa-obs instrumentation must not change a single bit of any of
# them (see crates/sim/tests/obs_inertness.rs for the in-tree half).
obs_dir=target/obs-smoke
rm -rf "$obs_dir"
fp_off=$(cargo run --release -p laqa-bench --bin campaign -- --smoke \
  | grep -oE 'fingerprint [0-9a-f]{16}')
fp_on=$(cargo run --release -p laqa-bench --bin campaign -- --smoke --obs "$obs_dir" \
  | grep -oE 'fingerprint [0-9a-f]{16}')
if [ "$fp_off" != "$fp_on" ]; then
  echo "FAIL: fingerprints diverge with observability enabled" >&2
  echo "  obs off: $fp_off" >&2
  echo "  obs on : $fp_on" >&2
  exit 1
fi
echo "fingerprints identical with obs on/off: $fp_off"
cargo run --release -p laqa-bench --bin laqa -- obs-report --dir "$obs_dir"

echo "verify OK"
