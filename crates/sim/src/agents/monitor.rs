//! Passive measurement agents: queue-occupancy sampling for the
//! bottleneck panels of the trace figures.

use crate::engine::{Agent, Ctx};
use crate::packet::{LinkId, Packet};
use laqa_trace::TimeSeries;
use std::any::Any;

/// Samples the queue length of a set of links on a fixed period.
pub struct QueueMonitor {
    links: Vec<LinkId>,
    period: f64,
    /// One series per monitored link, in the order given.
    pub series: Vec<TimeSeries>,
}

impl QueueMonitor {
    /// Monitor `links` every `period` seconds.
    pub fn new(links: Vec<LinkId>, period: f64) -> Self {
        assert!(period > 0.0);
        let series = links
            .iter()
            .map(|l| TimeSeries::new(format!("queue_len_link{l}")))
            .collect();
        QueueMonitor {
            links,
            period,
            series,
        }
    }
}

impl Agent for QueueMonitor {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer_after(self.period, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        for (i, &link) in self.links.iter().enumerate() {
            self.series[i].push(ctx.now, ctx.link_queue_len(link) as f64);
        }
        ctx.set_timer_after(self.period, 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::cbr::{CbrAgent, CountingSink};
    use crate::engine::World;
    use crate::link::LinkConfig;

    #[test]
    fn monitor_samples_queue_growth() {
        let mut w = World::new(3);
        // Slow link: a 5x overload builds the queue.
        let l = w.add_link(LinkConfig {
            bandwidth: 10_000.0,
            delay: 0.001,
            queue_packets: 50,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(CountingSink::default()));
        let _cbr = w.add_agent(Box::new(CbrAgent::new(
            sink,
            vec![l],
            1,
            50_000.0,
            1_000,
            0.0,
            2.0,
        )));
        let mon = w.add_agent(Box::new(QueueMonitor::new(vec![l], 0.05)));
        w.run_until(1.0);
        let m: &QueueMonitor = w.agent(mon).unwrap();
        let series = &m.series[0];
        assert!(series.len() >= 18, "{} samples", series.len());
        assert!(series.max().unwrap() > 3.0, "queue should build");
        // Monotone-ish growth early in the overload.
        let early = series.at(0.2).unwrap();
        let late = series.at(0.9).unwrap();
        assert!(late >= early, "queue grows under sustained overload");
    }

    #[test]
    fn monitor_of_idle_link_reads_zero() {
        let mut w = World::new(3);
        let l = w.add_link(LinkConfig::uncongested());
        let mon = w.add_agent(Box::new(QueueMonitor::new(vec![l], 0.1)));
        w.run_until(1.0);
        let m: &QueueMonitor = w.agent(mon).unwrap();
        assert_eq!(m.series[0].max(), Some(0.0));
    }
}
