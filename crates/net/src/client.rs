//! The buffering playback client over tokio UDP.
//!
//! Subscribes with `Hello`, feeds arriving data into a
//! [`laqa_layered::LayeredReceiver`], acknowledges every packet (RAP), and
//! advances playout on a fixed interval. Verifies payload integrity against
//! the deterministic stream content.

use crate::wire::Message;
use laqa_layered::{LayeredReceiver, LayeredStream, PacketId, ReceiverStats};
use laqa_rap::RapReceiverState;
use laqa_trace::TimeSeries;
use std::net::SocketAddr;
use tokio::net::UdpSocket;
use tokio::time::{interval, Duration, Instant};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Flow id to subscribe to.
    pub flow: u32,
    /// Seconds of base-layer data before playout starts.
    pub startup_secs: f64,
    /// Playout advance period (seconds).
    pub adv_dt: f64,
    /// Give up after this long without any datagram.
    pub idle_timeout: Duration,
    /// Where to send `Hello` and ACKs (the ACK-path shaper, or the server
    /// directly).
    pub peer: SocketAddr,
}

/// What the client observed.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Data packets received.
    pub received: u64,
    /// Payload bytes received.
    pub bytes: u64,
    /// Packets whose payload failed verification.
    pub corrupt: u64,
    /// Playout underflow steps observed.
    pub underflows: u64,
    /// Receiver statistics at session end.
    pub stats: ReceiverStats,
    /// Buffered bytes of the base layer over time.
    pub base_buffer_trace: TimeSeries,
    /// Active-layer signal over time (as announced by the server).
    pub n_active_trace: TimeSeries,
    /// True when the session ended with the server's `Fin` (vs timeout).
    pub got_fin: bool,
}

/// Run the client until `Fin` or idle timeout.
pub async fn run_client(
    socket: UdpSocket,
    cfg: ClientConfig,
    stream: LayeredStream,
) -> std::io::Result<ClientReport> {
    let encoding = stream.encoding().clone();
    let mut receiver = LayeredReceiver::new(encoding, 1, cfg.startup_secs);
    let mut rap_rx = RapReceiverState::new();
    let mut buf = vec![0u8; 65_536];
    let t0 = Instant::now();
    let mut report = ClientReport {
        received: 0,
        bytes: 0,
        corrupt: 0,
        underflows: 0,
        stats: receiver.stats(),
        base_buffer_trace: TimeSeries::new("rx_base_buffer"),
        n_active_trace: TimeSeries::new("rx_n_active"),
        got_fin: false,
    };

    socket
        .send_to(&Message::Hello { flow: cfg.flow }.encode(), cfg.peer)
        .await?;
    let mut adv = interval(Duration::from_secs_f64(cfg.adv_dt));
    adv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    let mut last_rx = Instant::now();

    loop {
        tokio::select! {
            r = socket.recv_from(&mut buf) => {
                let (len, _) = r?;
                last_rx = Instant::now();
                match Message::decode(bytes::Bytes::copy_from_slice(&buf[..len])) {
                    Ok(Message::Data { seq, layer, n_active, payload, .. }) => {
                        report.received += 1;
                        report.bytes += payload.len() as u64;
                        let now = t0.elapsed().as_secs_f64();
                        receiver.on_data(now, layer as usize, len as f64);
                        receiver.set_active_layers(n_active as usize);
                        report.n_active_trace.push(now, n_active as f64);
                        // Verify the deterministic content.
                        if payload.len() >= 8 {
                            let media_seq =
                                u64::from_le_bytes(payload[..8].try_into().unwrap());
                            let id = PacketId { layer, seq: media_seq };
                            if !stream.verify_payload(id, &payload[8..]) {
                                report.corrupt += 1;
                            }
                        } else {
                            report.corrupt += 1;
                        }
                        let info = rap_rx.on_data(seq);
                        let ack = Message::Ack { flow: cfg.flow, info };
                        socket.send_to(&ack.encode(), cfg.peer).await?;
                    }
                    Ok(Message::Fin { .. }) => {
                        report.got_fin = true;
                        break;
                    }
                    _ => {}
                }
            }
            _ = adv.tick() => {
                report.underflows += receiver.advance(cfg.adv_dt) as u64;
                let now = t0.elapsed().as_secs_f64();
                report.base_buffer_trace.push(now, receiver.buffered(0));
                if last_rx.elapsed() > cfg.idle_timeout {
                    break;
                }
            }
        }
    }
    report.stats = receiver.stats();
    Ok(report)
}
