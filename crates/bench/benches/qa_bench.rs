//! Criterion benchmarks for the quality-adaptation kernels — the code on
//! the per-packet/per-tick hot path of figures 2, 4/5, 8–10 and every
//! trace experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use laqa_core::draining::plan_draining;
use laqa_core::filling::{allocate_filling, next_fill_layer};
use laqa_core::geometry::band_allocation;
use laqa_core::scenario::{buf_total, per_layer, Scenario};
use laqa_core::{QaConfig, QaController, StateSequence};

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    g.bench_function("band_allocation_5_layers", |b| {
        b.iter(|| band_allocation(black_box(35_000.0), 10_000.0, 12_500.0, 5))
    });
    g.bench_function("buf_total_s2_k5", |b| {
        b.iter(|| buf_total(Scenario::Two, 5, black_box(60_000.0), 5, 10_000.0, 12_500.0))
    });
    g.bench_function("per_layer_s2_k5", |b| {
        b.iter(|| per_layer(Scenario::Two, 5, black_box(60_000.0), 5, 10_000.0, 12_500.0))
    });
    g.finish();
}

fn bench_states(c: &mut Criterion) {
    let mut g = c.benchmark_group("states");
    for k in [2u32, 8, 16] {
        g.bench_function(format!("state_sequence_build_k{k}"), |b| {
            b.iter(|| StateSequence::build(black_box(60_000.0), 5, 10_000.0, 12_500.0, k))
        });
    }
    g.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let seq = StateSequence::build(60_000.0, 5, 10_000.0, 12_500.0, 8);
    let full = seq.states.last().unwrap().per_layer.clone();
    let half: Vec<f64> = full.iter().map(|x| x / 2.0).collect();
    let mut g = c.benchmark_group("allocators");
    g.bench_function("next_fill_layer", |b| {
        b.iter(|| next_fill_layer(&seq, black_box(&half), 1.0))
    });
    g.bench_function("allocate_filling", |b| {
        b.iter(|| allocate_filling(&seq, black_box(&half), 60_000.0, 0.05, 2, 1.0))
    });
    g.bench_function("plan_draining", |b| {
        b.iter(|| plan_draining(&seq, black_box(&full), 30_000.0, 0.05, 1.0))
    });
    g.finish();
}

fn bench_controller(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    g.bench_function("tick_filling", |b| {
        let mut qa = QaController::new(QaConfig::default()).unwrap();
        qa.set_slope(12_500.0);
        let mut now = 0.0;
        b.iter(|| {
            let r = qa.tick(now, black_box(45_000.0), 0.05);
            for (layer, &rate) in r.per_layer_rate.iter().enumerate() {
                qa.on_packet_delivered(layer, rate * 0.05);
            }
            now += 0.05;
        })
    });
    g.bench_function("next_packet_layer", |b| {
        let mut qa = QaController::new(QaConfig::default()).unwrap();
        qa.set_slope(12_500.0);
        qa.tick(0.0, 45_000.0, 0.05);
        b.iter(|| qa.next_packet_layer(black_box(1_000.0)))
    });
    g.finish();
}

fn bench_nonlinear(c: &mut Criterion) {
    use laqa_core::nonlinear::{nl_band_allocation, nl_per_layer, LayerRates};
    use laqa_core::scenario::Scenario as Sc;
    let rates = LayerRates::exponential(6, 2_000.0, 1.7).unwrap();
    let mut g = c.benchmark_group("nonlinear");
    g.bench_function("nl_band_allocation_6_layers", |b| {
        b.iter(|| nl_band_allocation(&rates, 6, black_box(25_000.0), 12_500.0))
    });
    g.bench_function("nl_per_layer_s2_k4", |b| {
        b.iter(|| nl_per_layer(&rates, 6, Sc::Two, 4, black_box(60_000.0), 12_500.0))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_geometry,
    bench_states,
    bench_allocators,
    bench_controller,
    bench_nonlinear
);
criterion_main!(benches);
