//! Integration: the full simulated stack (laqa-core + laqa-rap +
//! laqa-layered + laqa-sim) on the paper's workloads.

use laqa_sim::{run_scenario, ScenarioConfig};

#[test]
fn t1_full_stack_adapts_without_stalling() {
    let cfg = ScenarioConfig::t1(2, 30.0, 21);
    let out = run_scenario(&cfg);

    // Quality exceeded the base layer.
    assert!(out.traces.n_active.max().unwrap_or(0.0) >= 2.0);
    // Congestion control actually engaged.
    assert!(out.backoffs > 0);
    assert!(out.bottleneck.dropped > 0);
    // The headline safety property: the base layer never stalls at the
    // sender's accounting, and receiver-side base underflows are rare
    // (packetization edges at layer adds only).
    assert_eq!(out.metrics.stalls(), 0);
    assert!(
        out.rx_base_underflows <= 5,
        "{} base underflows",
        out.rx_base_underflows
    );
    // Background flows were not starved.
    assert!(out.rap_throughput.iter().all(|&t| t > 500.0));
    assert!(out.tcp_goodput.iter().all(|&t| t > 500.0));
}

#[test]
fn qa_flow_is_tcp_friendly() {
    // The QA flow's long-run share must be in the same ballpark as the
    // other RAP flows — quality adaptation must not change RAP's fairness.
    let cfg = ScenarioConfig::t1(2, 60.0, 5);
    let out = run_scenario(&cfg);
    let qa_rate = out
        .traces
        .tx_rate
        .points
        .iter()
        .filter(|&&(t, _)| t > 20.0)
        .map(|&(_, v)| v)
        .sum::<f64>()
        / out
            .traces
            .tx_rate
            .points
            .iter()
            .filter(|&&(t, _)| t > 20.0)
            .count()
            .max(1) as f64;
    let rap_mean = out.rap_throughput.iter().sum::<f64>() / out.rap_throughput.len() as f64;
    let ratio = qa_rate / rap_mean;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "QA share {qa_rate:.0} vs RAP mean {rap_mean:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn t2_burst_reduces_and_recovers_quality() {
    let cfg = ScenarioConfig::t2(2, 60.0, 21);
    let (start, stop, _) = cfg.cbr.unwrap();
    let out = run_scenario(&cfg);
    let mean_in = |lo: f64, hi: f64| {
        let v: Vec<f64> = out
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let before = mean_in(10.0, start);
    let during = mean_in(start + 3.0, stop);
    let after = mean_in(stop + 3.0, 60.0);
    assert!(
        during < before,
        "burst must reduce quality: {before:.2} -> {during:.2}"
    );
    assert!(
        after > during,
        "quality must recover: {during:.2} -> {after:.2}"
    );
    assert_eq!(out.metrics.stalls(), 0, "base layer survives the burst");
}

#[test]
fn efficiency_stays_high_across_k_max() {
    for k_max in [2u32, 4] {
        let cfg = ScenarioConfig::t1(k_max, 45.0, 3);
        let out = run_scenario(&cfg);
        if let Some(e) = out.metrics.efficiency() {
            assert!(e > 0.75, "K_max={k_max}: efficiency {e:.3} too low");
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let a = run_scenario(&ScenarioConfig::t1(2, 12.0, 77));
    let b = run_scenario(&ScenarioConfig::t1(2, 12.0, 77));
    assert_eq!(a.traces.n_active.points, b.traces.n_active.points);
    assert_eq!(a.backoffs, b.backoffs);
    assert_eq!(a.bottleneck.dropped, b.bottleneck.dropped);
}

#[test]
fn different_seeds_differ() {
    let a = run_scenario(&ScenarioConfig::t1(2, 12.0, 1));
    let b = run_scenario(&ScenarioConfig::t1(2, 12.0, 2));
    // TCP start jitter and queue dynamics must actually vary.
    assert_ne!(a.bottleneck.dropped, b.bottleneck.dropped);
}

#[test]
fn background_flows_share_with_reasonable_fairness() {
    use laqa_sim::{jain_fairness, summarize_sharing};
    let cfg = ScenarioConfig::t1(2, 60.0, 9);
    let out = run_scenario(&cfg);
    // RAP flows among themselves: same protocol, same paths — Jain's index
    // should be high.
    let rap_fairness = jain_fairness(&out.rap_throughput).unwrap();
    assert!(rap_fairness > 0.9, "RAP fairness {rap_fairness:.3}");
    // All 19 background flows together: cross-protocol sharing is looser
    // but nobody starves.
    let all: Vec<f64> = out
        .rap_throughput
        .iter()
        .chain(out.tcp_goodput.iter())
        .copied()
        .collect();
    let s = summarize_sharing(&all).unwrap();
    assert!(
        s.fairness > 0.5,
        "cross-protocol fairness {:.3}",
        s.fairness
    );
    assert!(s.max_min_ratio.is_finite(), "no flow may starve completely");
}
