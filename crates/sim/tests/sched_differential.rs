//! Differential replay: the timer-wheel scheduler must be observationally
//! indistinguishable from the reference `BinaryHeap` scheduler.
//!
//! Every test runs the same workload once per [`SchedulerKind`] and
//! requires bit-identical trace fingerprints. The heap implementation is
//! the oracle — it is the original engine queue kept verbatim — so any
//! divergence is a wheel ordering bug, not a tolerance question. Covered
//! surface: the goldens' scenario configs (T1/T2 across `K_max`), the
//! fault suite across intensities, and the threaded campaign grid.

use laqa_sim::campaign::{run_campaign_with, CampaignSpec, TestKind};
use laqa_sim::faults::FaultPlan;
use laqa_sim::{hash_outcome, run_scenario_with, ScenarioConfig, SchedulerKind};

/// Run `cfg` under both schedulers and assert identical outcome hashes.
fn assert_scenario_agrees(cfg: &ScenarioConfig, what: &str) {
    let heap = run_scenario_with(cfg, SchedulerKind::Reference);
    let wheel = run_scenario_with(cfg, SchedulerKind::Wheel);
    assert_eq!(
        hash_outcome(&heap),
        hash_outcome(&wheel),
        "{what}: wheel trace diverged from heap oracle"
    );
    assert_eq!(
        heap.events_processed, wheel.events_processed,
        "{what}: event counts diverged"
    );
    assert_eq!(heap.fault_stats, wheel.fault_stats);
}

#[test]
fn goldens_scenarios_agree_between_schedulers() {
    // The scenario configs underlying the repo's golden traces: T1 across
    // the K_max values the figures sweep, and T2 with its CBR burst.
    for k in [1, 2, 4] {
        assert_scenario_agrees(&ScenarioConfig::t1(k, 10.0, 7), &format!("t1 k={k}"));
    }
    assert_scenario_agrees(&ScenarioConfig::t2(2, 12.0, 21), "t2 k=2");
}

#[test]
fn smoothing_sweep_agrees_between_schedulers() {
    // The figure-12 style sweep varies the QA smoothing horizon; each
    // point is a distinct event-cadence pattern for the scheduler.
    for k in [1, 3] {
        for seed in [7, 42] {
            let cfg = ScenarioConfig::t1(k, 8.0, seed);
            assert_scenario_agrees(&cfg, &format!("smoothing k={k} seed={seed}"));
        }
    }
}

#[test]
fn fault_suite_agrees_between_schedulers_across_intensities() {
    // Faults exercise the scheduler paths a clean run never touches:
    // cancels (link-down flushes), same-tick cascades from burst loss,
    // and long-horizon church timers that land in the overflow tree.
    for &intensity in &[0.0, 0.5, 1.0] {
        let mut cfg = ScenarioConfig::t1(2, 12.0, 7);
        cfg.faults = FaultPlan::suite(intensity);
        assert_scenario_agrees(&cfg, &format!("fault suite intensity={intensity}"));
    }
}

#[test]
fn campaign_grid_agrees_between_schedulers_and_thread_counts() {
    // The full cross product: 2 schedulers × {1, 2, 8} threads must give
    // one fingerprint. This pins both invariants at once — scheduler
    // independence and thread-count independence — and guards their
    // interaction (per-thread worlds each build their own scheduler).
    let spec = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &[7, 21], 6.0);
    let reference = run_campaign_with(&spec, 1, SchedulerKind::Reference);
    let fp = reference.fingerprint();
    for kind in SchedulerKind::ALL {
        for threads in [1, 2, 8] {
            let got = run_campaign_with(&spec, threads, kind);
            assert_eq!(
                got.fingerprint(),
                fp,
                "campaign fingerprint diverged under {} with {threads} threads",
                kind.label()
            );
        }
    }
}

#[test]
fn faulted_campaign_agrees_between_schedulers() {
    let spec = CampaignSpec::faults_grid(&[TestKind::T1], &[2], &[0.0, 1.0], &[7], 12.0);
    let heap = run_campaign_with(&spec, 2, SchedulerKind::Reference);
    let wheel = run_campaign_with(&spec, 2, SchedulerKind::Wheel);
    assert_eq!(heap.fingerprint(), wheel.fingerprint());
    for (a, b) in heap.sessions.iter().zip(&wheel.sessions) {
        assert_eq!(a.trace_hash, b.trace_hash, "cell {} diverged", a.spec.label());
        assert_eq!(a.fault_transitions, b.fault_transitions);
    }
}
