#!/usr/bin/env bash
# Tier-1 verification for the hermetic default workspace.
#
# Runs entirely offline: the default workspace graph contains only local
# path dependencies (see DESIGN.md, "Hermetic offline builds"), so every
# step below must succeed with zero registry access. The network-facing
# laqa-net crate is excluded from the workspace and is NOT covered here —
# build it explicitly with `cargo build --manifest-path crates/net/Cargo.toml`
# on a machine with registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/13 build (release) =="
cargo build --release

echo "== 2/13 tests =="
cargo test -q

echo "== 3/13 clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== 4/13 campaign smoke sweep =="
cargo run --release -p laqa-bench --bin campaign -- --smoke

echo "== 5/13 observability inertness (fingerprints with --obs on vs off) =="
# The smoke sweep prints one fingerprint line per replay check; enabling
# the laqa-obs instrumentation must not change a single bit of any of
# them (see crates/sim/tests/obs_inertness.rs for the in-tree half).
obs_dir=target/obs-smoke
rm -rf "$obs_dir"
fp_off=$(cargo run --release -p laqa-bench --bin campaign -- --smoke \
  | grep -oE 'fingerprint [0-9a-f]{16}')
fp_on=$(cargo run --release -p laqa-bench --bin campaign -- --smoke --obs "$obs_dir" \
  | grep -oE 'fingerprint [0-9a-f]{16}')
if [ "$fp_off" != "$fp_on" ]; then
  echo "FAIL: fingerprints diverge with observability enabled" >&2
  echo "  obs off: $fp_off" >&2
  echo "  obs on : $fp_on" >&2
  exit 1
fi
echo "fingerprints identical with obs on/off: $fp_off"
cargo run --release -p laqa-bench --bin laqa -- obs-report --dir "$obs_dir"

echo "== 6/13 fault-injection smoke (seed-replay fingerprint) =="
# The fault sweep must be a pure function of its seeds: two consecutive
# runs of the same grid (which also each self-check across thread
# counts) must print the same campaign fingerprint.
fault_fp_a=$(cargo run --release -p laqa-bench --bin campaign -- --faults --smoke \
  | grep -oE 'fingerprint [0-9a-f]{16}')
fault_fp_b=$(cargo run --release -p laqa-bench --bin campaign -- --faults --smoke \
  | grep -oE 'fingerprint [0-9a-f]{16}')
if [ -z "$fault_fp_a" ] || [ "$fault_fp_a" != "$fault_fp_b" ]; then
  echo "FAIL: fault campaign fingerprints diverge between runs" >&2
  echo "  run A: $fault_fp_a" >&2
  echo "  run B: $fault_fp_b" >&2
  exit 1
fi
echo "fault campaign replays bit-identically: $fault_fp_a"

echo "== 7/13 scheduler differential harness + bench smoke =="
# The timer wheel must replay every workload bit-identically to the
# BinaryHeap reference oracle (crates/sim/tests/sched_differential.rs),
# and the perf harness re-checks fingerprint agreement while measuring.
# Throughput is recorded into BENCH_sched.json for trend tracking, not
# gated — only fingerprint divergence fails this step (the bench exits
# non-zero on any heap/wheel mismatch).
cargo test -q --release -p laqa-sim --test sched_differential
cargo run --release -p laqa-bench --bin sched -- --smoke \
  --out target/bench-sched-smoke.json

echo "== 8/13 warm-world campaign executor bench + regression gate =="
# Sweeps {cold,warm} x {heap,wheel} x {1,2,8,16} threads over one grid and
# exits non-zero unless every cell reproduces the same fingerprint bit for
# bit (including the streaming run_campaign_fold cross-check), or if
# overall events/sec dropped >20% against the checked-in baseline.
# --out is redirected so the smoke run never clobbers BENCH_campaign.json.
cargo run --release -p laqa-bench --bin campaign_bench -- --smoke \
  --check BENCH_campaign.json --out target/bench-campaign-smoke.json

echo "== 9/13 megasession differential harness + mega bench gate =="
# Every scenario multiplexed on the shared-wheel MegaEngine must replay
# bit-identically to its isolated per-world run
# (crates/sim/tests/mega_differential.rs), and the campaign bench re-runs
# the executor sweep with mega cells: fingerprint divergence between the
# mega and per-cell executors, or a >20% mega events/sec regression
# against the checked-in baseline, fails the step.
cargo test -q --release -p laqa-sim --test mega_differential
cargo run --release -p laqa-bench --bin campaign_bench -- --smoke --mega \
  --check BENCH_campaign.json --out target/bench-campaign-mega-smoke.json

echo "== 10/13 flight-recorder trace export (mega faults run -> Perfetto JSON) =="
# A fault-suite smoke sweep on the megasession executor with the flight
# recorder live must (a) leave the campaign fingerprint untouched vs the
# plain run in step 6, and (b) export a timeline that `laqa obs-trace`
# converts into well-formed Chrome trace-event JSON with at least one
# non-empty per-session track — obs-trace re-parses the written file and
# exits non-zero on malformed output or an empty timeline.
flight_dir=target/obs-flight-smoke
rm -rf "$flight_dir"
flight_fp=$(cargo run --release -p laqa-bench --bin campaign -- --faults --smoke --mega \
  --obs "$flight_dir" | grep -oE 'fingerprint [0-9a-f]{16}')
if [ -z "$flight_fp" ] || [ "$flight_fp" != "$fault_fp_a" ]; then
  echo "FAIL: mega+flight fault fingerprint diverged from plain run" >&2
  echo "  plain       : $fault_fp_a" >&2
  echo "  mega+flight : $flight_fp" >&2
  exit 1
fi
echo "fault campaign unchanged under mega executor + flight recorder: $flight_fp"
cargo run --release -p laqa-bench --bin laqa -- obs-trace --dir "$flight_dir" \
  --out "$flight_dir/trace.json"

echo "== 11/13 QA x transport interop smoke =="
# The pluggable-RateController matrix: the same smoke grid runs under
# all four transports (RAP, BBR-style, NADA-style, TCP baseline).
# Gates: (a) the multi-transport sweep replays bit-identically across
# thread counts (the campaign binary exits non-zero otherwise), (b) the
# RAP rows' per-session trace hashes are byte-identical to the RAP-only
# sweep — the trait seam and the transport axis must be invisible to
# the default transport — and (c) every transport shows up in the
# interop matrix summary. Non-RAP transports are sanity-gated (present
# and deterministic), not fingerprint-pinned: their traces are expected
# to evolve with their controllers.
plain=$(cargo run --release -p laqa-bench --bin campaign -- --smoke)
interop=$(cargo run --release -p laqa-bench --bin campaign -- --smoke \
  --transport rap,bbr,nada,tcp)
for row in 'T1/k2/seed7 ' 'T1/k2/seed21 ' 'T1/k4/seed7 ' 'T1/k4/seed21 '; do
  h_plain=$(grep -F "$row" <<<"$plain" | grep -oE '[0-9a-f]{16}' | tail -1)
  h_interop=$(grep -F "$row" <<<"$interop" | grep -oE '[0-9a-f]{16}' | tail -1)
  if [ -z "$h_plain" ] || [ "$h_plain" != "$h_interop" ]; then
    echo "FAIL: RAP session ${row% } trace hash changed under the transport axis" >&2
    echo "  rap-only sweep : $h_plain" >&2
    echo "  interop sweep  : $h_interop" >&2
    exit 1
  fi
done
for t in rap bbr nada tcp; do
  if ! grep -qE "^ *$t " <<<"$interop"; then
    echo "FAIL: transport $t missing from the interop matrix summary" >&2
    exit 1
  fi
done
echo "interop smoke ok: RAP rows bit-identical, all four transports deterministic"

echo "== 12/13 hostile-network (TraceLink) smoke =="
# The hostile-corpus axis: the smoke grid re-run on schedule-driven
# bottlenecks (LTE capacity swings, on-off bufferbloat, diurnal ramp,
# bonded two-path striping). Gates: (a) the hostile sweep replays
# bit-identically across thread counts (the campaign binary exits
# non-zero otherwise), (b) two consecutive runs print the same campaign
# fingerprint — trace generation is a pure function of the seed — and
# (c) every trace family shows up in the hostile damage summary.
hostile_a=$(cargo run --release -p laqa-bench --bin campaign -- --smoke \
  --trace lte,bloat,diurnal,bonded)
hostile_fp_a=$(grep -oE 'fingerprint [0-9a-f]{16}' <<<"$hostile_a")
hostile_fp_b=$(cargo run --release -p laqa-bench --bin campaign -- --smoke \
  --trace lte,bloat,diurnal,bonded | grep -oE 'fingerprint [0-9a-f]{16}')
if [ -z "$hostile_fp_a" ] || [ "$hostile_fp_a" != "$hostile_fp_b" ]; then
  echo "FAIL: hostile campaign fingerprints diverge between runs" >&2
  echo "  run A: $hostile_fp_a" >&2
  echo "  run B: $hostile_fp_b" >&2
  exit 1
fi
for t in lte bloat diurnal bonded; do
  if ! grep -qE "^ *$t " <<<"$hostile_a"; then
    echo "FAIL: trace family $t missing from the hostile damage summary" >&2
    exit 1
  fi
done
echo "hostile smoke ok: all four trace families deterministic: $hostile_fp_a"

echo "== 13/13 mega hot-path throughput gate + profile =="
# PR 10's headline: one MegaEngine multiplexing the 64-session grid must
# stay at least as fast as the warm per-cell executor. The bench measures
# both at the baseline's full duration and --check fails if the
# mega-vs-per-cell speedup ratio drops below the checked-in baseline's
# ratio x 0.9 (on top of the absolute events/sec gates). --profile prints
# the zero-dep per-dispatch-site breakdown (obs histograms + wheel
# insert-path and geometry-memo counters) so a regression here comes with
# the numbers needed to localize it.
mega_out=$(cargo run --release -p laqa-bench --bin campaign_bench -- \
  --smoke --duration 8 --mega --profile \
  --check BENCH_campaign.json --out target/bench-campaign-mega-gate.json)
echo "$mega_out" | tail -20
if ! grep -q '"mega_vs_percell_ratio"' target/bench-campaign-mega-gate.json; then
  echo "FAIL: bench output is missing the mega_vs_percell_ratio key" >&2
  exit 1
fi

echo "verify OK"
