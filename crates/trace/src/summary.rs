//! Machine-readable run summaries (JSON) consumed by EXPERIMENTS.md tooling
//! and the cross-experiment comparison scripts.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::JsonValue;

/// Summary of one experiment run: scalar metrics plus free-form notes.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunSummary {
    /// Experiment id (e.g. "fig11", "table1/T1/kmax2").
    pub experiment: String,
    /// Key parameters of the run.
    pub params: BTreeMap<String, String>,
    /// Scalar results.
    pub metrics: BTreeMap<String, f64>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
}

impl RunSummary {
    /// New summary for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        RunSummary {
            experiment: experiment.into(),
            ..Default::default()
        }
    }

    /// Record a parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Record a scalar metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Record run timing: wall-clock seconds, simulator events dispatched,
    /// and the derived `events_per_sec` throughput (omitted when
    /// `wall_secs` is not positive, e.g. a sub-resolution run).
    pub fn timing(&mut self, wall_secs: f64, events: u64) -> &mut Self {
        self.metric("wall_secs", wall_secs)
            .metric("sim_events", events as f64);
        if wall_secs > 0.0 {
            self.metric("events_per_sec", events as f64 / wall_secs);
        }
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Write JSON to `path`, creating parent directories.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Read a summary back from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = crate::json::parse(text).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }

    /// Lower into the JSON value model.
    pub fn to_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "experiment".into(),
                JsonValue::Str(self.experiment.clone()),
            ),
            (
                "params".into(),
                JsonValue::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "metrics".into(),
                JsonValue::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "notes".into(),
                JsonValue::Arr(
                    self.notes
                        .iter()
                        .map(|n| JsonValue::Str(n.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstruct from the JSON value model.
    pub fn from_value(v: &JsonValue) -> Result<Self, String> {
        let experiment = v
            .get("experiment")
            .and_then(JsonValue::as_str)
            .ok_or("summary: missing 'experiment'")?
            .to_string();
        let mut params = BTreeMap::new();
        for (k, val) in v.get("params").and_then(JsonValue::as_obj).unwrap_or(&[]) {
            let s = val
                .as_str()
                .ok_or_else(|| format!("summary: param '{k}' is not a string"))?;
            params.insert(k.clone(), s.to_string());
        }
        let mut metrics = BTreeMap::new();
        for (k, val) in v.get("metrics").and_then(JsonValue::as_obj).unwrap_or(&[]) {
            let n = val
                .as_num()
                .ok_or_else(|| format!("summary: metric '{k}' is not a number"))?;
            metrics.insert(k.clone(), n);
        }
        let mut notes = Vec::new();
        for note in v.get("notes").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            notes.push(
                note.as_str()
                    .ok_or("summary: note is not a string")?
                    .to_string(),
            );
        }
        Ok(RunSummary {
            experiment,
            params,
            metrics,
            notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut s = RunSummary::new("fig11");
        s.param("k_max", 2)
            .metric("efficiency", 0.9977)
            .note("shaper substitution");
        let json = s.to_json();
        let back = RunSummary::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn file_round_trip() {
        let mut s = RunSummary::new("t");
        s.metric("x", 1.0);
        let path = std::env::temp_dir()
            .join(format!("laqa_summary_{}", std::process::id()))
            .join("s.json");
        s.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunSummary::from_json(&text).unwrap(), s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timing_records_throughput() {
        let mut s = RunSummary::new("t");
        s.timing(2.0, 1_000_000);
        assert_eq!(s.metrics.get("wall_secs"), Some(&2.0));
        assert_eq!(s.metrics.get("sim_events"), Some(&1_000_000.0));
        assert_eq!(s.metrics.get("events_per_sec"), Some(&500_000.0));
    }

    #[test]
    fn timing_omits_rate_for_zero_wall() {
        let mut s = RunSummary::new("t");
        s.timing(0.0, 42);
        assert_eq!(s.metrics.get("sim_events"), Some(&42.0));
        assert!(!s.metrics.contains_key("events_per_sec"));
    }

    #[test]
    fn builder_chains() {
        let mut s = RunSummary::new("x");
        s.param("a", "1")
            .param("b", 2.5)
            .metric("m", 3.0)
            .note("n1")
            .note("n2");
        assert_eq!(s.params.len(), 2);
        assert_eq!(s.metrics.len(), 1);
        assert_eq!(s.notes.len(), 2);
    }
}
