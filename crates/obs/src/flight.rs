//! Flight recorder: bounded per-thread, sim-time-stamped timeline traces
//! with per-session attribution.
//!
//! The metrics registry answers "how many" and the event ring answers
//! "what happened", but neither can answer *why session 17 starved at
//! t=31s* — that needs a timeline: QA state spans, layer add/drop
//! instants, backoff markers and buffer-level samples, all attributed to
//! the session that produced them no matter which worker thread or
//! executor (solo world, warm pool, megasession engine) ran it.
//!
//! ## Recording model
//!
//! Producers call [`state`], [`instant`] or [`sample`] with a static
//! name, the session-local simulation time, and a value. The record is
//! stamped with the calling thread's *current session* (set by the
//! campaign workers and the megasession dispatcher via [`set_session`])
//! and a **per-session sequence number**, then appended to the calling
//! thread's bounded ring. Engine-global records that belong to no single
//! session (megasession batch dispatches, stale-token drops) use the
//! reserved [`HOST_TRACK`] id.
//!
//! ## Determinism
//!
//! The merge sorts by `(session, time, seq)` and finally by full record
//! content. A session runs entirely on one thread, its records are
//! appended in dispatch order, and its sequence counter depends only on
//! how many records the session produced before — never on which worker
//! ran it or what else that worker ran. Two runs of the same campaign
//! therefore export **byte-identical** per-session tracks for any thread
//! count, as long as no ring evicted (`tests/flight_determinism.rs` pins
//! this). [`HOST_TRACK`] records reflect executor scheduling and are only
//! deterministic per run.
//!
//! ## Inertness
//!
//! The recorder has its own enable flag, off by default: a disabled site
//! costs one relaxed atomic load. Enabled, it only copies values it is
//! handed — fingerprints are bit-identical with the recorder on and off
//! (`obs_inertness.rs` and `verify.sh` enforce this).
//!
//! ## Capacity
//!
//! Each thread ring holds [`FLIGHT_RING_CAPACITY`] records by default;
//! set the `LAQA_OBS_FLIGHT_RING` environment variable (read once) to
//! resize. Evictions are counted and surfaced as the
//! `obs.flight_evicted` counter in snapshots.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use laqa_trace::chrome::ChromeTrace;
use laqa_trace::JsonValue;

/// Session id for engine-global records (batch dispatches, stale-token
/// drops) that belong to no single session. Sorts after every real
/// session and is exported as the `engine` track.
pub const HOST_TRACK: u64 = u64::MAX;

/// Default flight records retained per thread before eviction.
pub const FLIGHT_RING_CAPACITY: usize = 65_536;

static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the flight recorder is live. One relaxed load — the entire
/// cost of a disabled recording site. Independent of [`crate::enabled`]
/// so timelines can be recorded without turning every metric on.
#[inline(always)]
pub fn enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable the flight recorder. Off by default.
pub fn set_enabled(on: bool) {
    FLIGHT_ENABLED.store(on, Ordering::Relaxed);
}

static CAPACITY: OnceLock<usize> = OnceLock::new();

fn parse_capacity(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|v| v.max(16))
        .unwrap_or(FLIGHT_RING_CAPACITY)
}

/// Per-thread ring capacity: the `LAQA_OBS_FLIGHT_RING` environment
/// variable (read once, clamped to at least 16), else
/// [`FLIGHT_RING_CAPACITY`].
pub fn ring_capacity() -> usize {
    *CAPACITY.get_or_init(|| parse_capacity(std::env::var("LAQA_OBS_FLIGHT_RING").ok().as_deref()))
}

/// What a [`FlightRecord`] marks on its session's track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// The session entered a new state (e.g. a QA phase); the previous
    /// state span on the track ends here. Exported as a Chrome duration
    /// span.
    State,
    /// A point event (layer add/drop, backoff, timer fire). Exported as
    /// a Chrome instant.
    Instant,
    /// A numeric sample (buffer level). Exported as a Chrome counter
    /// series.
    Value,
}

impl FlightKind {
    /// Lower-case label used in the JSON export.
    pub fn label(&self) -> &'static str {
        match self {
            FlightKind::State => "state",
            FlightKind::Instant => "instant",
            FlightKind::Value => "value",
        }
    }

    /// Parse the export label back.
    pub fn from_label(s: &str) -> Option<FlightKind> {
        match s {
            "state" => Some(FlightKind::State),
            "instant" => Some(FlightKind::Instant),
            "value" => Some(FlightKind::Value),
            _ => None,
        }
    }
}

/// One merged, owned timeline record (see [`FlightTrace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Owning session ([`HOST_TRACK`] for engine-global records).
    pub session: u64,
    /// Session-local simulation time (seconds).
    pub time: f64,
    /// Per-session sequence number (monotone over the session's records).
    pub seq: u64,
    /// Record kind.
    pub kind: FlightKind,
    /// Dotted name (state label for [`FlightKind::State`]).
    pub name: String,
    /// Payload value (layer count, rate, buffer bytes, ...).
    pub value: f64,
}

/// In-ring record; names stay `&'static str` so recording never
/// allocates per record.
#[derive(Debug, Clone, PartialEq)]
struct RawRecord {
    session: u64,
    time: f64,
    seq: u64,
    kind: FlightKind,
    name: &'static str,
    value: f64,
}

struct Ring {
    records: VecDeque<RawRecord>,
    /// Next sequence number per session. Lives in the ring (not thread-
    /// local storage) so [`clear`] can reset it from any thread.
    next_seq: BTreeMap<u64, u64>,
    evicted: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            records: VecDeque::with_capacity(ring_capacity().min(FLIGHT_RING_CAPACITY)),
            next_seq: BTreeMap::new(),
            evicted: 0,
        }
    }
}

static ALL_RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();

fn all_rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    ALL_RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    /// The session records on this thread are attributed to.
    static CURRENT_SESSION: Cell<u64> = const { Cell::new(0) };
}

/// Attribute subsequent records on this thread to `session`. Campaign
/// workers call this with the grid index before running a cell; the
/// megasession dispatcher calls it per event with the session's flight
/// id. Callers should gate on [`enabled`] to keep the disabled cost at
/// one load.
pub fn set_session(session: u64) {
    CURRENT_SESSION.with(|c| c.set(session));
}

fn record(kind: FlightKind, name: &'static str, time: f64, value: f64) {
    if !enabled() {
        return;
    }
    let session = CURRENT_SESSION.with(Cell::get);
    THREAD_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring::new()));
            all_rings().lock().expect("flight rings").push(ring.clone());
            ring
        });
        let mut ring = ring.lock().expect("flight ring");
        if ring.records.len() >= ring_capacity() {
            ring.records.pop_front();
            ring.evicted += 1;
        }
        let seq_slot = ring.next_seq.entry(session).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        ring.records.push_back(RawRecord {
            session,
            time,
            seq,
            kind,
            name,
            value,
        });
    });
}

/// Record a state transition: the current session enters state `name` at
/// session-local time `time`, ending whatever state it was in.
#[inline]
pub fn state(name: &'static str, time: f64) {
    record(FlightKind::State, name, time, 0.0);
}

/// Record a point event with a payload value (layer index, rate, token).
#[inline]
pub fn instant(name: &'static str, time: f64, value: f64) {
    record(FlightKind::Instant, name, time, value);
}

/// Record a numeric sample for a per-session counter series (e.g. a
/// buffer level).
#[inline]
pub fn sample(name: &'static str, time: f64, value: f64) {
    record(FlightKind::Value, name, time, value);
}

/// The merged flight trace: every thread's ring, deterministically
/// ordered (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightTrace {
    /// Records sorted by `(session, time, seq)`.
    pub records: Vec<FlightRecord>,
    /// Records evicted from the bounded rings before this snapshot. A
    /// nonzero count means the timeline is truncated (oldest first).
    pub evicted: u64,
}

/// Merge every thread's flight ring into one deterministically ordered
/// trace (non-destructive; [`crate::reset`] clears the rings).
pub fn snapshot_flight() -> FlightTrace {
    let mut records: Vec<FlightRecord> = Vec::new();
    let mut evicted = 0;
    for ring in all_rings().lock().expect("flight rings").iter() {
        let ring = ring.lock().expect("flight ring");
        records.extend(ring.records.iter().map(|r| FlightRecord {
            session: r.session,
            time: r.time,
            seq: r.seq,
            kind: r.kind,
            name: r.name.to_string(),
            value: r.value,
        }));
        evicted += ring.evicted;
    }
    records.sort_by(|a, b| {
        a.session
            .cmp(&b.session)
            .then(a.time.total_cmp(&b.time))
            .then(a.seq.cmp(&b.seq))
            .then_with(|| a.name.cmp(&b.name))
            .then(a.value.total_cmp(&b.value))
    });
    FlightTrace { records, evicted }
}

/// Clear every ring (sequence counters restart too).
pub(crate) fn clear() {
    for ring in all_rings().lock().expect("flight rings").iter() {
        let mut ring = ring.lock().expect("flight ring");
        ring.records.clear();
        ring.next_seq.clear();
        ring.evicted = 0;
    }
}

/// Total records evicted across all rings (surfaced by snapshots as the
/// `obs.flight_evicted` counter).
pub(crate) fn total_evicted() -> u64 {
    all_rings()
        .lock()
        .expect("flight rings")
        .iter()
        .map(|r| r.lock().expect("flight ring").evicted)
        .sum()
}

/// The Chrome trace `pid` every track lives under.
const CHROME_PID: u64 = 1;

impl FlightTrace {
    /// Distinct session ids in the trace, ascending ([`HOST_TRACK`] last
    /// when present).
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = Vec::new();
        for r in &self.records {
            if ids.last() != Some(&r.session) {
                ids.push(r.session);
            }
        }
        ids
    }

    /// Raw JSON form (`flight.json`): `{"evicted": n, "records": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("evicted".into(), JsonValue::Num(self.evicted as f64)),
            (
                "records".into(),
                JsonValue::Arr(
                    self.records
                        .iter()
                        .map(|r| {
                            JsonValue::Obj(vec![
                                ("session".into(), JsonValue::Num(r.session as f64)),
                                ("time".into(), JsonValue::Num(r.time)),
                                ("seq".into(), JsonValue::Num(r.seq as f64)),
                                ("kind".into(), JsonValue::Str(r.kind.label().into())),
                                ("name".into(), JsonValue::Str(r.name.clone())),
                                ("value".into(), JsonValue::Num(r.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a trace previously serialized by [`FlightTrace::to_json`].
    ///
    /// `u64::MAX` does not round-trip exactly through `f64`, so any
    /// session id at or beyond the `f64`-exact integer range is mapped
    /// back to [`HOST_TRACK`].
    pub fn from_json(v: &JsonValue) -> Result<FlightTrace, String> {
        let records = v
            .get("records")
            .and_then(JsonValue::as_arr)
            .ok_or("flight trace: missing records array")?;
        let mut out = FlightTrace {
            records: Vec::with_capacity(records.len()),
            evicted: v.get("evicted").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
        };
        for r in records {
            let session_raw = r
                .get("session")
                .and_then(JsonValue::as_num)
                .ok_or("flight record: missing session")?;
            let session = if session_raw >= 9_007_199_254_740_992.0 {
                HOST_TRACK
            } else {
                session_raw as u64
            };
            let kind_label = r
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("flight record: missing kind")?;
            out.records.push(FlightRecord {
                session,
                time: r.get("time").and_then(JsonValue::as_num).unwrap_or(0.0),
                seq: r.get("seq").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
                kind: FlightKind::from_label(kind_label)
                    .ok_or_else(|| format!("flight record: unknown kind '{kind_label}'"))?,
                name: r
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("flight record: missing name")?
                    .to_string(),
                value: r.get("value").and_then(JsonValue::as_num).unwrap_or(0.0),
            });
        }
        Ok(out)
    }

    /// Export as Chrome trace-event JSON (load in Perfetto or
    /// `chrome://tracing`): one named thread track per session under one
    /// process, [`FlightKind::State`] records as `B`/`E` duration spans,
    /// instants as `i` events, and samples as per-session `C` counter
    /// series. Times are session-local; staggered sessions align at
    /// their own zero, which is exactly what side-by-side comparison
    /// wants.
    pub fn to_chrome(&self) -> JsonValue {
        let mut chrome = ChromeTrace::new();
        chrome.process_name(CHROME_PID, "laqa");
        for (lane, &session) in self.session_ids().iter().enumerate() {
            let tid = lane as u64 + 1;
            let label = if session == HOST_TRACK {
                "engine".to_string()
            } else {
                format!("session {session}")
            };
            chrome.thread_name(CHROME_PID, tid, &label);

            // Per-track pass: records are already (time, seq)-sorted.
            let mut open_state: Option<&str> = None;
            let mut last_us = 0.0f64;
            for r in self.records.iter().filter(|r| r.session == session) {
                let ts_us = r.time * 1e6;
                last_us = last_us.max(ts_us);
                match r.kind {
                    FlightKind::State => {
                        if open_state.take().is_some() {
                            chrome.end(CHROME_PID, tid, ts_us);
                        }
                        chrome.begin(CHROME_PID, tid, ts_us, &r.name);
                        open_state = Some(&r.name);
                    }
                    FlightKind::Instant => {
                        chrome.instant(
                            CHROME_PID,
                            tid,
                            ts_us,
                            &r.name,
                            vec![("value".into(), JsonValue::Num(r.value))],
                        );
                    }
                    FlightKind::Value => {
                        let series = if session == HOST_TRACK {
                            r.name.clone()
                        } else {
                            format!("{} s{session}", r.name)
                        };
                        chrome.counter(CHROME_PID, ts_us, &series, r.value);
                    }
                }
            }
            if open_state.is_some() {
                // Close the final state span at the track's last stamp.
                chrome.end(CHROME_PID, tid, last_us);
            }
        }
        chrome.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        set_enabled(false);
        state("flight.test.idle", 0.0);
        instant("flight.test.ev", 1.0, 2.0);
        assert!(snapshot_flight().records.is_empty());
    }

    #[test]
    fn records_sort_by_session_then_time_and_round_trip() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        set_enabled(true);
        set_session(7);
        state("filling", 0.5);
        instant("qa.layer_add", 1.0, 2.0);
        set_session(3);
        sample("qa.buf_base", 0.25, 4096.0);
        set_session(HOST_TRACK);
        instant("mega.batch", 0.1, 4.0);
        set_enabled(false);

        let trace = snapshot_flight();
        assert_eq!(trace.evicted, 0);
        assert_eq!(trace.session_ids(), vec![3, 7, HOST_TRACK]);
        let names: Vec<&str> = trace.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["qa.buf_base", "filling", "qa.layer_add", "mega.batch"]
        );
        // Per-session sequence restarts per session, not per thread.
        assert_eq!(trace.records[1].seq, 0);
        assert_eq!(trace.records[2].seq, 1);
        assert_eq!(trace.records[0].seq, 0);

        let back = FlightTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
        crate::reset();
        assert!(snapshot_flight().records.is_empty());
    }

    #[test]
    fn rings_are_bounded_and_count_evictions() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        set_enabled(true);
        set_session(1);
        for i in 0..(ring_capacity() + 5) {
            instant("flight.test.flood", i as f64, 0.0);
        }
        set_enabled(false);
        let trace = snapshot_flight();
        assert_eq!(trace.records.len(), ring_capacity());
        assert_eq!(trace.evicted, 5);
        assert_eq!(total_evicted(), 5);
        // Oldest evicted: surviving seqs start at 5 and stay monotone.
        assert_eq!(trace.records.first().unwrap().seq, 5);
        crate::reset();
    }

    #[test]
    fn capacity_parses_with_floor_and_default() {
        assert_eq!(parse_capacity(None), FLIGHT_RING_CAPACITY);
        assert_eq!(parse_capacity(Some("1024")), 1024);
        assert_eq!(parse_capacity(Some("3")), 16);
        assert_eq!(parse_capacity(Some("nope")), FLIGHT_RING_CAPACITY);
    }

    #[test]
    fn chrome_export_builds_one_track_per_session_with_balanced_spans() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        set_enabled(true);
        for s in [0u64, 1] {
            set_session(s);
            state("filling", 0.0);
            instant("qa.layer_add", 0.4, 2.0);
            state("draining", 1.0);
            sample("qa.buf_base", 1.5, 900.0);
        }
        set_enabled(false);
        let trace = snapshot_flight();
        let chrome = trace.to_chrome();
        let stats = laqa_trace::chrome::validate(&chrome).expect("well-formed");
        assert_eq!(stats.spans, 4); // two states per session, all closed
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.counters, 2);
        let sessions: Vec<&str> = stats
            .tracks
            .values()
            .filter(|t| t.name.starts_with("session "))
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(sessions, vec!["session 0", "session 1"]);
        // The export survives its own serialization.
        let reparsed = laqa_trace::json::parse(&chrome.to_compact()).unwrap();
        assert_eq!(
            laqa_trace::chrome::validate(&reparsed).unwrap().events,
            stats.events
        );
        crate::reset();
    }
}
