//! Tuning probe for the megasession hot path: runs the 64-session bench
//! grid through the per-cell and mega executors with the chunk/slice
//! knobs on the command line and prints the speedup ratio. This is the
//! loop that found the slice-infinity clamp bug and picked the
//! run-to-completion default (see DESIGN.md §6i).
//!
//!     cargo run --release -p laqa-bench --example mega_probe -- \
//!         [chunk] [slice_secs|inf] [duration] [reps]
//!
//! With MEGA_PROBE_OBS=1 an extra instrumented mega run prints the
//! laqa-obs histogram/span totals, which is how per-event dispatch cost
//! is separated from slot-switch and admission overhead.

use laqa_sim::{run_campaign_opts, CampaignOptions, CampaignSpec, TestKind};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let chunk: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(32);
    let slice: f64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(0.268435456);
    let duration: f64 = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(8.0);
    let reps: usize = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(3);

    let seeds64: Vec<u64> = (0..16).map(|i| 7 + 14 * i).collect();
    let wide = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &seeds64, duration);

    let measure = |opts: &dyn Fn() -> CampaignOptions, label: &str| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut events = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = run_campaign_opts(&wide, opts());
            let dt = t0.elapsed().as_secs_f64();
            events = out.sessions.iter().map(|s| s.events_processed).sum();
            if dt < best {
                best = dt;
            }
        }
        println!("{label:10} {:.3}s  {:.0} ev/s", best, events as f64 / best);
        (best, events)
    };

    let (pc, _) = measure(&|| CampaignOptions::new(1), "percell");
    let (mg, _) = measure(
        &|| CampaignOptions::new(1).mega().mega_chunk(chunk).mega_slice(slice),
        "mega",
    );
    println!("chunk={chunk} slice={slice}: mega/percell = {:.3}x", pc / mg);

    if std::env::var("MEGA_PROBE_OBS").is_ok() {
        laqa_obs::set_enabled(true);
        laqa_obs::reset();
        let t0 = Instant::now();
        run_campaign_opts(
            &wide,
            CampaignOptions::new(1).mega().mega_chunk(chunk).mega_slice(slice),
        );
        let wall = t0.elapsed().as_secs_f64();
        laqa_obs::set_enabled(false);
        let snap = laqa_obs::snapshot();
        println!("instrumented mega wall {wall:.3}s");
        for h in &snap.histograms {
            if h.count > 0 {
                println!(
                    "  hist {:28} count {:>9} total {:>9.1}ms mean {:>8.1}ns",
                    h.name,
                    h.count,
                    h.sum / 1e6,
                    h.mean().unwrap_or(0.0)
                );
            }
        }
        for (name, s) in &snap.spans {
            println!(
                "  span {:28} count {:>9} total {:>9.1}ms",
                name,
                s.count,
                s.total_ns as f64 / 1e6
            );
        }
    }
}
