//! Microbenchmarks for the quality-adaptation kernels — the code on the
//! per-packet/per-tick hot path of figures 2, 4/5, 8–10 and every trace
//! experiment. Std-only (`laqa_bench::timing`), no criterion.

use laqa_bench::timing::Runner;
use laqa_core::draining::plan_draining;
use laqa_core::filling::{allocate_filling, next_fill_layer};
use laqa_core::geometry::band_allocation;
use laqa_core::nonlinear::{nl_band_allocation, nl_per_layer, LayerRates};
use laqa_core::scenario::{buf_total, per_layer, Scenario};
use laqa_core::{QaConfig, QaController, StateSequence};
use std::hint::black_box;

fn main() {
    let mut r = Runner::from_args();

    r.bench("geometry/band_allocation_5_layers", || {
        band_allocation(black_box(35_000.0), 10_000.0, 12_500.0, 5)
    });
    r.bench("geometry/buf_total_s2_k5", || {
        buf_total(Scenario::Two, 5, black_box(60_000.0), 5, 10_000.0, 12_500.0)
    });
    r.bench("geometry/per_layer_s2_k5", || {
        per_layer(Scenario::Two, 5, black_box(60_000.0), 5, 10_000.0, 12_500.0)
    });

    for k in [2u32, 8, 16] {
        r.bench(&format!("states/state_sequence_build_k{k}"), || {
            StateSequence::build(black_box(60_000.0), 5, 10_000.0, 12_500.0, k)
        });
    }

    let seq = StateSequence::build(60_000.0, 5, 10_000.0, 12_500.0, 8);
    let full = seq.states.last().unwrap().per_layer.clone();
    let half: Vec<f64> = full.iter().map(|x| x / 2.0).collect();
    r.bench("allocators/next_fill_layer", || {
        next_fill_layer(&seq, black_box(&half), 1.0)
    });
    r.bench("allocators/allocate_filling", || {
        allocate_filling(&seq, black_box(&half), 60_000.0, 0.05, 2, 1.0)
    });
    r.bench("allocators/plan_draining", || {
        plan_draining(&seq, black_box(&full), 30_000.0, 0.05, 1.0)
    });

    {
        let mut qa = QaController::new(QaConfig::default()).unwrap();
        qa.set_slope(12_500.0);
        let mut now = 0.0;
        r.bench("controller/tick_filling", || {
            let tick = qa.tick(now, black_box(45_000.0), 0.05);
            for (layer, &rate) in tick.per_layer_rate.iter().enumerate() {
                qa.on_packet_delivered(layer, rate * 0.05);
            }
            now += 0.05;
        });
    }
    {
        let mut qa = QaController::new(QaConfig::default()).unwrap();
        qa.set_slope(12_500.0);
        qa.tick(0.0, 45_000.0, 0.05);
        r.bench("controller/next_packet_layer", || {
            qa.next_packet_layer(black_box(1_000.0))
        });
    }

    let rates = LayerRates::exponential(6, 2_000.0, 1.7).unwrap();
    r.bench("nonlinear/nl_band_allocation_6_layers", || {
        nl_band_allocation(&rates, 6, black_box(25_000.0), 12_500.0)
    });
    r.bench("nonlinear/nl_per_layer_s2_k4", || {
        nl_per_layer(&rates, 6, Scenario::Two, 4, black_box(60_000.0), 12_500.0)
    });

    r.finish();
}
