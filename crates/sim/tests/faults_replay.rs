//! Fault-injection acceptance tests: campaigns under faults must replay
//! bit-exactly per seed, actually perturb the world, and never panic or
//! starve the base layer into an unresolved stall — the §2.2 contract
//! ("quality yields before continuity") under weather the paper never
//! simulated.

use laqa_sim::campaign::{run_campaign, run_session, CampaignSpec, SessionSpec, TestKind};
use laqa_sim::Transport;
use laqa_sim::faults::FaultPlan;
use laqa_sim::{hash_outcome, run_scenario, ScenarioConfig};

fn faulted_t1(intensity: f64, duration: f64, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::t1(2, duration, seed);
    cfg.faults = FaultPlan::suite(intensity);
    cfg
}

#[test]
fn zero_intensity_suite_is_fingerprint_identical_to_faultless_baseline() {
    // `FaultPlan::suite(0.0)` must compose onto any scenario as a perfect
    // no-op: not "statistically similar", but the *same bits* — no
    // injector agent, no extra RNG draws, no extra scheduler events.
    for cfg in [
        ScenarioConfig::t1(2, 10.0, 7),
        ScenarioConfig::t1(4, 8.0, 42),
        ScenarioConfig::t2(2, 12.0, 21),
    ] {
        let mut faulted = cfg.clone();
        faulted.faults = FaultPlan::suite(0.0);
        let base_out = run_scenario(&cfg);
        let faulted_out = run_scenario(&faulted);
        assert_eq!(
            hash_outcome(&base_out),
            hash_outcome(&faulted_out),
            "suite(0.0) perturbed the trajectory"
        );
        assert_eq!(base_out.events_processed, faulted_out.events_processed);
        assert_eq!(faulted_out.fault_stats.transitions(), 0);
    }
}

#[test]
fn fault_run_replays_bit_identically_per_seed() {
    let cfg = faulted_t1(0.8, 12.0, 7);
    let a = run_scenario(&cfg);
    let b = run_scenario(&cfg);
    assert_eq!(
        hash_outcome(&a),
        hash_outcome(&b),
        "same seed + same plan must reproduce the exact trace"
    );
    assert_eq!(a.fault_stats, b.fault_stats);
}

#[test]
fn faults_actually_perturb_the_baseline() {
    let faulted = run_scenario(&faulted_t1(0.8, 12.0, 7));
    let baseline = run_scenario(&ScenarioConfig::t1(2, 12.0, 7));
    assert!(
        faulted.fault_stats.transitions() > 0,
        "the suite at 0.8 must fire within 12 s (stats: {:?})",
        faulted.fault_stats
    );
    assert_ne!(
        hash_outcome(&faulted),
        hash_outcome(&baseline),
        "an active fault plan must change the trajectory"
    );
    assert_eq!(
        baseline.fault_stats.transitions(),
        0,
        "no injector in a fault-free run"
    );
}

#[test]
fn full_intensity_sweep_survives_and_degrades_gracefully() {
    // The acceptance bar for the QA controller under the full suite: every
    // intensity completes (no panic), critical situations resolve through
    // layer drops rather than base-layer stalls, and the starvation
    // metrics come back for the run summary.
    for &intensity in &[0.25, 0.5, 1.0] {
        let out = run_scenario(&faulted_t1(intensity, 30.0, 7));
        assert!(
            out.metrics.drops() > 0,
            "intensity {intensity}: faults must force layer drops"
        );
        assert!(
            out.metrics.stalls() <= 2,
            "intensity {intensity}: base layer must stay essentially \
             continuous, got {} stalls",
            out.metrics.stalls()
        );
        assert!(
            out.base_starved_bytes.is_finite() && out.base_starved_bytes >= 0.0,
            "starvation metric must be reported"
        );
        assert!(out.events_processed > 0, "run actually simulated");
    }
}

#[test]
fn faults_campaign_fingerprint_is_thread_invariant() {
    // Long enough to pass the suite's start time (8 s) so the faulted cell
    // genuinely diverges from the baseline cell.
    let spec = CampaignSpec::faults_grid(&[TestKind::T1], &[2], &[0.0, 1.0], &[7], 12.0);
    let serial = run_campaign(&spec, 1);
    let parallel = run_campaign(&spec, 4);
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "fault sweeps must stay scheduling-independent"
    );
    // The baseline and the faulted cell share seed and workload; only the
    // injector separates them.
    assert_ne!(serial.sessions[0].trace_hash, serial.sessions[1].trace_hash);
    assert_eq!(serial.sessions[0].fault_transitions, 0);
}

#[test]
fn fault_session_result_reports_recovery_metrics() {
    let spec = SessionSpec {
        test: TestKind::T1,
        k_max: 2,
        seed: 7,
        duration: 30.0,
        fault_intensity: Some(1.0),
        transport: Transport::Rap,
        trace: None,
    };
    let r = run_session(&spec);
    assert!(r.fault_transitions > 0);
    assert!(r.layer_change_rate > 0.0);
    assert!(
        r.recovery_secs_mean.is_some(),
        "a 30 s full-suite run must drop and re-add at least once"
    );
    assert!(r.recovery_secs_mean.unwrap() > 0.0);
}

#[test]
fn fault_mutations_and_trace_schedules_compose_deterministically() {
    // Campaign level: the full suite at 1.0 on an LTE trace must replay
    // bit-identically and keep both perturbation sources active.
    let spec = SessionSpec {
        test: TestKind::T1,
        k_max: 2,
        seed: 5,
        duration: 12.0,
        fault_intensity: Some(1.0),
        transport: Transport::Rap,
        trace: Some(laqa_sim::TraceKind::Lte),
    };
    let a = run_session(&spec);
    let b = run_session(&spec);
    assert_eq!(
        a.trace_hash, b.trace_hash,
        "faults-on-trace must replay bit-identically"
    );
    assert!(a.fault_transitions > 0, "the suite must fire");
    assert!(a.trace_changes > 0, "the trace must keep applying points");
    assert!(a.stalls <= 4, "composition must stay survivable");
}

#[test]
fn trace_points_reassert_link_params_over_fault_mutations() {
    // The pinned precedence rule: last writer wins. A fault that rewrites
    // the link's bandwidth between schedule points holds exactly until the
    // trace's next point reasserts its own absolute value — the trace
    // never "remembers" the fault, and the fault never survives a point.
    use laqa_sim::{Agent, Ctx, LinkConfig, LinkId, Packet, TraceDriver, TraceSchedule, World};
    use laqa_trace::LinkTracePoint;

    struct Meddler {
        link: LinkId,
    }
    impl Agent for Meddler {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_at(1.0, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            // Stand-in for a FaultInjector degradation transition.
            ctx.set_link_bandwidth(self.link, 12_345.0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let pt = |at, bandwidth| LinkTracePoint {
        at,
        bandwidth,
        delay: None,
        loss: None,
    };
    let mut w = World::new(7);
    let link = w.add_link(LinkConfig::default());
    let schedule =
        TraceSchedule::from_points(vec![pt(0.0, 100_000.0), pt(1.5, 50_000.0)], None).unwrap();
    w.set_link_trace(link, schedule);
    w.add_agent(Box::new(TraceDriver::new(link)));
    w.add_agent(Box::new(Meddler { link }));

    w.run_until(1.2);
    assert_eq!(
        w.link_config(link).bandwidth,
        12_345.0,
        "between schedule points the fault's value must hold"
    );
    w.run_until(2.0);
    assert_eq!(
        w.link_config(link).bandwidth,
        50_000.0,
        "the next schedule point must reassert the trace's value"
    );
}
