//! Integration: the paper's headline result *shapes*, asserted.
//!
//! These are the claims EXPERIMENTS.md records — if one of these fails,
//! the reproduction no longer reproduces.

use laqa_core::scenario::{buf_total, Scenario};
use laqa_core::StateSequence;
use laqa_sim::{run_scenario, ScenarioConfig};

/// Figure 12's shape: higher K_max → fewer steady-state quality changes
/// and more peak buffering.
#[test]
fn smoothing_reduces_quality_changes() {
    let changes_and_buffer = |k_max: u32| {
        let out = run_scenario(&ScenarioConfig::t1(k_max, 60.0, 7));
        let steady: Vec<f64> = out
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t > 15.0)
            .map(|&(_, v)| v)
            .collect();
        let changes = steady
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 1e-9)
            .count();
        let peak_buf: f64 = (0..out.traces.buffer[0].points.len())
            .map(|i| {
                out.traces
                    .buffer
                    .iter()
                    .map(|b| b.points.get(i).map(|&(_, v)| v.max(0.0)).unwrap_or(0.0))
                    .sum::<f64>()
            })
            .fold(0.0, f64::max);
        (changes, peak_buf)
    };
    let (c2, b2) = changes_and_buffer(2);
    let (c4, b4) = changes_and_buffer(4);
    assert!(c4 < c2, "K_max=4 changes {c4} !< K_max=2 changes {c2}");
    assert!(b4 > b2, "K_max=4 peak buffer {b4} !> K_max=2 {b2}");
}

/// Table 2's T1 shape: essentially no drops attributable to poor buffer
/// distribution under the plain T1 load.
#[test]
fn t1_drops_are_not_distribution_failures() {
    let out = run_scenario(&ScenarioConfig::t1(2, 90.0, 7));
    if let Some(f) = out.metrics.avoidable_drop_fraction() {
        assert!(f <= 0.15, "avoidable drop fraction {f:.2} too high for T1");
    }
}

/// Table 1's shape: buffering efficiency near 1 — dropped layers carry
/// almost no stranded buffering.
#[test]
fn dropped_layers_strand_little_buffer() {
    let out = run_scenario(&ScenarioConfig::t1(3, 90.0, 7));
    if let Some(e) = out.metrics.efficiency() {
        // The paper reports ~99% at C = 10 KB/s with 1 KB packets; at this
        // scaled-down operating point (C = 1.25 KB/s, 250 B packets) a
        // single stranded packet costs several percent, so the bound is
        // proportionally looser while still asserting "almost nothing
        // stranded".
        assert!(e > 0.7, "efficiency {e:.3}");
    }
}

/// Figure 13's shape: a half-bottleneck CBR burst forces layers down and
/// the base layer survives.
#[test]
fn responsiveness_shape() {
    let cfg = ScenarioConfig::t2(4, 60.0, 7);
    let (start, stop, _) = cfg.cbr.unwrap();
    let out = run_scenario(&cfg);
    let window_mean = |lo: f64, hi: f64| {
        let v: Vec<f64> = out
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    assert!(window_mean(start + 3.0, stop) < window_mean(10.0, start));
    assert_eq!(out.metrics.stalls(), 0);
}

/// §4's analytic shape: both scenario requirements grow with k; scenario
/// 1 saturates (its post-backoff rate bottoms out at zero, capping the
/// triangle) while scenario 2 keeps growing linearly, so S2 eventually
/// dominates — which is why figure 9's ordering interleaves the two
/// scenario families rather than alternating strictly.
#[test]
fn scenario_requirements_shape() {
    let (rate, n, c, s) = (40_000.0, 3usize, 10_000.0, 12_500.0);
    let mut prev1 = 0.0;
    let mut prev2 = 0.0;
    let mut s1_led_somewhere = false;
    for k in 1..=8u32 {
        let t1 = buf_total(Scenario::One, k, rate, n, c, s);
        let t2 = buf_total(Scenario::Two, k, rate, n, c, s);
        assert!(t1 >= prev1 && t2 >= prev2, "monotone in k");
        if t1 > t2 {
            s1_led_somewhere = true;
        }
        if k >= 6 {
            assert!(t2 > t1, "k={k}: S2 {t2} must eventually exceed S1 {t1}");
        }
        prev1 = t1;
        prev2 = t2;
    }
    assert!(
        s1_led_somewhere,
        "the orderings should interleave (figure 9)"
    );
}

/// Figures 9/10's shape: the naive total-ordered state path requires
/// draining some layer between consecutive states; the monotone path does
/// not.
#[test]
fn monotone_path_exists_and_is_needed() {
    let seq = StateSequence::build(60_000.0, 5, 10_000.0, 12_500.0, 5);
    let mut naive_violations = 0;
    for w in seq.states.windows(2) {
        for i in 0..5 {
            if w[1].raw_per_layer[i] < w[0].raw_per_layer[i] - 1e-6 {
                naive_violations += 1;
            }
            assert!(
                w[1].per_layer[i] + 1e-9 >= w[0].per_layer[i],
                "monotone path violated at layer {i}"
            );
        }
    }
    assert!(
        naive_violations > 0,
        "the fig-9 inversion should appear here"
    );
}
