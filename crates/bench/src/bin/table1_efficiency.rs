//! **Table 1** — buffering efficiency `e = (buf_total − buf_drop) /
//! buf_total`, averaged over all drop events, for
//! `K_max ∈ {2, 3, 4, 5, 8}` under T1 (fig-11 load) and T2 (fig-13 load).
//!
//! The paper reports values in the high 90s: a maximally efficient
//! distribution strands almost nothing in a dropped layer.

use laqa_bench::outdir;
use laqa_sim::{run_scenario, ScenarioConfig};
use laqa_trace::{pct, RunSummary, Table};

fn main() {
    let duration = 90.0;
    // Average over several seeds: a single run has only a handful of drop
    // events, so per-cell estimates would swing by 5-10% per event.
    let seeds = [7u64, 21, 42, 77, 99];
    let k_values = [2u32, 3, 4, 5, 8];
    let mut tbl = Table::new(
        "Table 1: buffering efficiency e (mean over drop events)",
        &[
            "test", "K_max=2", "K_max=3", "K_max=4", "K_max=5", "K_max=8",
        ],
    );
    let dir = outdir("table1");
    let mut rows = Vec::new();
    for (name, t2) in [("T1", false), ("T2", true)] {
        let mut row = vec![name.to_string()];
        for &k in &k_values {
            let mut e_sum = 0.0;
            let mut e_n = 0usize;
            let mut drops = 0usize;
            for &seed in &seeds {
                let cfg = if t2 {
                    ScenarioConfig::t2(k, duration, seed)
                } else {
                    ScenarioConfig::t1(k, duration, seed)
                };
                let out = run_scenario(&cfg);
                if let Some(e) = out.metrics.efficiency() {
                    e_sum += e;
                    e_n += 1;
                }
                drops += out.metrics.drops();
            }
            let e = (e_n > 0).then(|| e_sum / e_n as f64);
            row.push(pct(e));
            let mut summary = RunSummary::new(format!("table1/{name}/k{k}"));
            summary
                .param("k_max", k)
                .param("test", name)
                .param("seeds", seeds.len())
                .metric("efficiency", e.unwrap_or(f64::NAN))
                .metric("drops_total", drops as f64);
            summary
                .write_json(dir.join(format!("summary_{name}_k{k}.json")))
                .expect("summary");
            eprintln!(
                "{name} K_max={k}: e={} ({drops} drops over {} seeds)",
                pct(e),
                seeds.len()
            );
        }
        rows.push(row);
    }
    for row in rows {
        tbl.row(row);
    }
    println!("{}", tbl.render());
    println!("paper reported (for reference, their testbed):");
    println!("  T1: 99.77%  99.97%  99.84%  99.85%  99.99%");
    println!("  T2: 99.15%  99.81%  99.92%  99.80%  96.07%");
    println!("expected shape: all cells near 100% — dropped layers carry");
    println!("(almost) no stranded buffering.");
    std::fs::write(dir.join("table1.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());
}
