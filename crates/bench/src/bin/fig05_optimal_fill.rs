//! **Figures 4 & 5** — the optimal inter-layer buffer distribution and the
//! sequential filling/draining pattern.
//!
//! Figure 4 is analytic: the single-backoff deficit triangle sliced into
//! per-layer bands (base layer largest). Figure 5 shows the filling order
//! that reaches those targets sequentially and the drain pattern where
//! upper layers hand off to the network first. We print both.

use laqa_bench::outdir;
use laqa_core::draining::plan_draining;
use laqa_core::filling::next_fill_layer;
use laqa_core::geometry::{band_allocation, buffering_layer_count, deficit, triangle_area};
use laqa_core::StateSequence;
use laqa_trace::{RunSummary, Table};

fn main() {
    let c = 10_000.0;
    let s = 12_500.0;
    let n_a = 5;
    let rate = 42_000.0; // pre-backoff rate; post-backoff 21 KB/s vs 50 KB/s consumption

    let d0 = deficit(n_a as f64 * c, rate / 2.0);
    let n_b = buffering_layer_count(d0, c);
    let shares = band_allocation(d0, c, s, n_a);
    let area = triangle_area(d0, s);

    println!("== Figure 4: optimal inter-layer buffer distribution ==");
    println!("n_a = {n_a} layers, C = {c:.0} B/s, S = {s:.0} B/s², R = {rate:.0} B/s");
    println!("post-backoff deficit d0 = {d0:.0} B/s  →  n_b = {n_b} buffering layers");
    let mut t = Table::new("optimal shares", &["layer", "bytes", "% of total"]);
    for (i, &share) in shares.iter().enumerate() {
        t.row(vec![
            format!("L{i}"),
            format!("{share:.0}"),
            format!("{:.1}%", 100.0 * share / area),
        ]);
    }
    t.row(vec!["total".into(), format!("{area:.0}"), "100.0%".into()]);
    println!("{}", t.render());

    // Figure 5: sequential filling order (packet by packet) and the drain
    // handoff pattern.
    let seq = StateSequence::build(rate, n_a, c, s, 1);
    let mut bufs = vec![0.0f64; n_a];
    let pkt = 1_000.0;
    let mut order = Vec::new();
    while let Some(layer) = next_fill_layer(&seq, &bufs, 1.0) {
        bufs[layer] += pkt;
        order.push(layer);
        if order.len() > 10_000 {
            break;
        }
    }
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (layer, packets)
    for &l in &order {
        match runs.last_mut() {
            Some((layer, count)) if *layer == l => *count += 1,
            _ => runs.push((l, 1)),
        }
    }
    println!("== Figure 5: sequential filling pattern (1 KB packets) ==");
    let runs_str: Vec<String> = runs.iter().map(|(l, n)| format!("L{l}×{n}")).collect();
    println!("fill order: {}", runs_str.join(" → "));

    // Drain pattern: plan successive periods of the draining phase and show
    // the per-layer drain rates handing off from top to bottom.
    println!();
    println!("drain pattern after the backoff (per 0.2 s period, B/s):");
    let mut drain_tbl = Table::new("draining", &["t", "rate", "L0", "L1", "L2", "L3", "L4"]);
    let mut cur = rate / 2.0;
    let mut tme = 0.0;
    let dt = 0.2;
    while cur < n_a as f64 * c {
        let plan = plan_draining(&seq, &bufs, cur, dt, 1.0);
        let mut row = vec![format!("{tme:.1}"), format!("{cur:.0}")];
        for (buf, drain) in bufs.iter_mut().zip(&plan.drain) {
            row.push(format!("{:.0}", drain / dt));
            *buf -= drain;
        }
        drain_tbl.row(row);
        cur += s * dt;
        tme += dt;
    }
    println!("{}", drain_tbl.render());
    println!("expected shape: base layer holds the largest share; filling is");
    println!("strictly sequential L0→L1→…; during draining the highest layers'");
    println!("buffers are released first while lower layers drain longest.");

    let dir = outdir("fig05");
    let mut summary = RunSummary::new("fig05");
    summary
        .param("n_a", n_a)
        .param("rate", rate)
        .metric("deficit", d0)
        .metric("n_b", n_b as f64)
        .metric("total_area", area)
        .metric("l0_share", shares[0]);
    for (i, &sh) in shares.iter().enumerate() {
        summary.metric(&format!("share_l{i}"), sh);
    }
    summary
        .write_json(dir.join("summary.json"))
        .expect("write summary");
    println!("wrote {}", dir.display());
}
