//! Constant-bit-rate (unresponsive) source — the paper's figure-13 burst
//! that claims half the bottleneck and forces the QA flow to shed layers.

use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, Packet, PacketKind, Route};
use std::any::Any;

/// Unresponsive CBR traffic source.
pub struct CbrAgent {
    /// Destination agent.
    pub dst: AgentId,
    /// Forward route.
    pub route: Route,
    /// Flow id for stats.
    pub flow: u32,
    /// Send rate (bytes/s).
    pub rate: f64,
    /// Packet size (bytes).
    pub packet_size: u32,
    /// Start time (seconds).
    pub start_at: f64,
    /// Stop time (seconds).
    pub stop_at: f64,
    /// Packets sent (counter).
    pub sent: u64,
}

impl CbrAgent {
    /// New CBR source active in `[start_at, stop_at)`.
    pub fn new(
        dst: AgentId,
        route: impl Into<Route>,
        flow: u32,
        rate: f64,
        packet_size: u32,
        start_at: f64,
        stop_at: f64,
    ) -> Self {
        assert!(rate > 0.0 && packet_size > 0);
        CbrAgent {
            dst,
            route: route.into(),
            flow,
            rate,
            packet_size,
            start_at,
            stop_at,
            sent: 0,
        }
    }

    fn interval(&self) -> f64 {
        self.packet_size as f64 / self.rate
    }
}

impl Agent for CbrAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer_at(self.start_at, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if ctx.now >= self.stop_at {
            return;
        }
        let uid = ctx.alloc_uid();
        ctx.send(Packet {
            uid,
            flow: self.flow,
            size: self.packet_size,
            kind: PacketKind::Cbr,
            dst: self.dst,
            route: self.route.clone(),
            hop: 0,
            sent_at: ctx.now,
        });
        self.sent += 1;
        ctx.set_timer_after(self.interval(), 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts arriving packets; shared null sink for CBR and diagnostics.
#[derive(Default)]
pub struct CountingSink {
    /// Packets received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
}

impl Agent for CountingSink {
    fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
        self.packets += 1;
        self.bytes += pkt.size as u64;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;
    use crate::link::LinkConfig;

    #[test]
    fn cbr_sends_at_configured_rate() {
        let mut w = World::new(7);
        let l = w.add_link(LinkConfig::uncongested());
        let sink = w.add_agent(Box::new(CountingSink::default()));
        let cbr = w.add_agent(Box::new(CbrAgent::new(
            sink,
            vec![l],
            1,
            50_000.0,
            1_000,
            1.0,
            3.0,
        )));
        w.run_until(5.0);
        let c: &CountingSink = w.agent(sink).unwrap();
        // 2 s at 50 packets/s = 100 packets (±1 boundary).
        assert!(
            (99..=101).contains(&(c.packets as i64)),
            "{} packets",
            c.packets
        );
        let src: &CbrAgent = w.agent(cbr).unwrap();
        assert_eq!(src.sent, c.packets);
    }

    #[test]
    fn cbr_respects_start_stop_window() {
        let mut w = World::new(7);
        let l = w.add_link(LinkConfig::uncongested());
        let sink = w.add_agent(Box::new(CountingSink::default()));
        let _ = w.add_agent(Box::new(CbrAgent::new(
            sink,
            vec![l],
            1,
            10_000.0,
            1_000,
            2.0,
            2.5,
        )));
        w.run_until(1.9);
        assert_eq!(w.agent::<CountingSink>(sink).unwrap().packets, 0);
        w.run_until(10.0);
        let got = w.agent::<CountingSink>(sink).unwrap().packets;
        assert!((4..=6).contains(&got), "{got} packets in 0.5 s at 10/s");
    }
}
