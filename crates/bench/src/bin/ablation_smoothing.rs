//! **Ablation (DESIGN.md §7.3)** — the paper's buffer-based add rule vs
//! the rejected *average-bandwidth* rule, on §3.1's "2.9-layer modem
//! link".
//!
//! A clean AIMD sawtooth whose long-run average sits between 2 and 3
//! layers: the average-bandwidth rule never adds the third layer; the
//! buffer-based rule streams it most of the time. We drive the controller
//! with the sawtooth directly (both rules see identical bandwidth).

use laqa_bench::outdir;
use laqa_core::{QaConfig, QaController};
use laqa_trace::{RunSummary, Table};

/// Drive a sawtooth between `lo` and `hi` at slope `s`; returns the
/// fraction of (post-warm-up) time spent at ≥ 3 layers under the
/// buffer-based rule, plus the sawtooth's long-run average rate.
fn run_buffer_rule(lo: f64, hi: f64, s: f64, c: f64, dur: f64) -> (f64, f64) {
    let cfg = QaConfig {
        layer_rate: c,
        max_layers: 4,
        k_max: 2,
        underflow_slack_bytes: 1_500.0,
        ..QaConfig::default()
    };
    let mut qa = QaController::new(cfg).unwrap();
    qa.set_slope(s);
    let dt = 0.05;
    let mut rate = lo;
    let mut now = 0.0;
    let mut rate_sum = 0.0;
    let mut steps = 0u64;
    let mut three_time = 0.0;
    let mut total_time = 0.0;
    while now < dur {
        if rate >= hi {
            rate /= 2.0;
            qa.on_backoff(now, rate);
        }
        let report = qa.tick(now, rate, dt);
        for (layer, &r) in report.per_layer_rate.iter().enumerate() {
            qa.on_packet_delivered(layer, r * dt);
        }
        rate_sum += rate;
        steps += 1;
        if now > 20.0 {
            total_time += dt;
            if report.n_active >= 3 {
                three_time += dt;
            }
        }
        rate += s * dt;
        now += dt;
    }
    (three_time / total_time.max(1e-9), rate_sum / steps as f64)
}

fn main() {
    let c = 10_000.0;
    let s = 25_000.0;
    // Sawtooth 19..38 KB/s: average 28.5 KB/s = 2.85 layers.
    let (lo, hi) = (19_000.0, 38_000.0);
    let dur = 300.0;
    let (three_frac, avg_rate) = run_buffer_rule(lo, hi, s, c, dur);

    // The average-bandwidth rule: add layer n+1 only when the *average*
    // bandwidth exceeds (n+1)·C. With avg = 2.85·C it never reaches 3·C.
    let avg_rule_adds_third = avg_rate >= 3.0 * c;

    let mut tbl = Table::new(
        "Ablation: add-rule comparison on a 2.85-layer link",
        &["rule", "third layer streamed", "notes"],
    );
    tbl.row(vec![
        "buffer-based (paper)".into(),
        format!("{:.0}% of time", 100.0 * three_frac),
        "adds at sawtooth peaks, buffers sustain it".into(),
    ]);
    tbl.row(vec![
        "average-bandwidth".into(),
        if avg_rule_adds_third {
            "yes".into()
        } else {
            "never".into()
        },
        format!("avg rate {avg_rate:.0} < 3C = {:.0}", 3.0 * c),
    ]);
    println!("{}", tbl.render());
    println!("paper's claim (§3.1): on a 2.9-layer link the buffer-based rule");
    println!("sends 3 layers ~90% of the time; the average rule, never.");
    println!("expected shape: the buffer rule streams the third layer a large");
    println!("fraction of the time; the average rule cannot add it at all.");

    let dir = outdir("ablation_smoothing");
    let mut summary = RunSummary::new("ablation_smoothing");
    summary
        .param("avg_rate", avg_rate)
        .metric("three_layer_fraction_buffer_rule", three_frac)
        .metric(
            "avg_rule_adds_third",
            f64::from(u8::from(avg_rule_adds_third)),
        );
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());

    assert!(
        three_frac > 0.2,
        "buffer rule should stream the third layer"
    );
    assert!(
        !avg_rule_adds_third,
        "average rule must never add the third layer"
    );
}
