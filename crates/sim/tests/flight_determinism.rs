//! Flight-recorder determinism: two identical multi-worker campaign runs
//! must merge to byte-identical Chrome trace exports.
//!
//! The work-stealing executor assigns cells to workers nondeterministically,
//! so this only holds because records are attributed to *sessions* (grid
//! index), stamped with deterministic sim time, sequenced per session, and
//! merged under a total order. A single test function keeps the global
//! flight toggle race-free within this binary.

use laqa_sim::{run_campaign_opts, CampaignOptions, CampaignSpec, TestKind};

#[test]
fn eight_worker_flight_exports_are_byte_identical() {
    let spec = CampaignSpec::grid(&[TestKind::T1], &[2, 4], &[7, 21, 35, 49], 6.0);
    assert_eq!(spec.len(), 8, "one session per worker");

    let run = || {
        laqa_obs::reset();
        laqa_obs::flight::set_enabled(true);
        let result = run_campaign_opts(&spec, CampaignOptions::new(8));
        laqa_obs::flight::set_enabled(false);
        let trace = laqa_obs::flight::snapshot_flight();
        laqa_obs::reset();
        (result.fingerprint(), trace)
    };
    let (fp_a, trace_a) = run();
    let (fp_b, trace_b) = run();

    assert_eq!(fp_a, fp_b, "campaign itself must replay bit-identically");
    assert_eq!(
        trace_a.evicted, 0,
        "short run must fit the ring — eviction would make the comparison vacuous"
    );
    assert!(
        !trace_a.records.is_empty(),
        "flight recorder produced no records with recording enabled"
    );

    let chrome_a = trace_a.to_chrome().to_compact();
    let chrome_b = trace_b.to_chrome().to_compact();
    assert_eq!(
        chrome_a, chrome_b,
        "merged chrome export must be byte-identical across 8-worker runs"
    );

    let parsed = laqa_trace::parse_json(&chrome_a).expect("export parses");
    let stats = laqa_trace::validate_chrome(&parsed).expect("export validates");
    assert_eq!(
        stats.session_tracks(),
        8,
        "one non-empty track per campaign session"
    );

    // The flight JSON round-trip must reproduce the same export too, so
    // `campaign --obs DIR` + `laqa obs-trace` sees exactly this trace.
    let flight_json = trace_a.to_json().to_compact();
    let reloaded = laqa_obs::FlightTrace::from_json(
        &laqa_trace::parse_json(&flight_json).expect("flight.json parses"),
    )
    .expect("flight.json round-trips");
    assert_eq!(reloaded.to_chrome().to_compact(), chrome_a);
}
