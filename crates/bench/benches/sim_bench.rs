//! Microbenchmarks for the discrete-event simulator: the cost of the
//! paper's scenario runs (figures 11–13, tables 1–2) per simulated
//! second, plus the campaign engine's fan-out overhead. Std-only
//! (`laqa_bench::timing`), no criterion.

use laqa_bench::timing::Runner;
use laqa_sim::{run_campaign, run_scenario, CampaignSpec, ScenarioConfig, TestKind};

fn main() {
    let mut r = Runner::from_args();

    r.bench("scenarios/t1_10s", || {
        run_scenario(&ScenarioConfig::t1(2, 10.0, 7))
    });
    r.bench("scenarios/t2_10s", || {
        run_scenario(&ScenarioConfig::t2(2, 10.0, 7))
    });

    let spec = CampaignSpec::grid(&[TestKind::T1], &[2], &[7, 21, 42, 77], 2.0);
    r.bench("campaign/grid_4x2s_1_thread", || run_campaign(&spec, 1));
    r.bench("campaign/grid_4x2s_4_threads", || run_campaign(&spec, 4));

    r.finish();
}
