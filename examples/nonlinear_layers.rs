//! Non-linear layer spacing (the paper's §7 future work, implemented in
//! `laqa_core::nonlinear`): how the optimal buffer distribution and the
//! multi-backoff requirements change when layers are spaced exponentially
//! instead of linearly.
//!
//! ```sh
//! cargo run -p laqa-apps --example nonlinear_layers
//! ```

use laqa_core::nonlinear::{
    nl_band_allocation, nl_band_drain_rates, nl_buf_total, nl_per_layer, LayerRates,
};
use laqa_core::scenario::Scenario;

fn main() {
    let slope = 12_500.0;
    let linear = LayerRates::linear(4, 7_500.0).expect("valid");
    let expo = LayerRates::exponential(4, 2_000.0, 2.0).expect("valid"); // 2,4,8,16 K

    println!("two encodings with the same 30 KB/s total:");
    println!("  linear      : {:?}", linear.rates());
    println!("  exponential : {:?}", expo.rates());
    println!();

    let d0 = 18_000.0;
    println!("optimal buffer bands for an 18 KB/s post-backoff deficit:");
    println!("{:<12} {:>10} {:>12}", "", "linear (B)", "expo (B)");
    let lin = nl_band_allocation(&linear, 4, d0, slope);
    let exp = nl_band_allocation(&expo, 4, d0, slope);
    for i in 0..4 {
        println!(
            "{:<12} {:>10.0} {:>12.0}",
            format!("layer {i}"),
            lin[i],
            exp[i]
        );
    }
    println!(
        "{:<12} {:>10.0} {:>12.0}",
        "total",
        lin.iter().sum::<f64>(),
        exp.iter().sum::<f64>()
    );
    println!();
    println!("note: byte shares move toward the *wide* layers, but protection");
    println!("in seconds (share / rate) still decreases with layer index:");
    let secs: Vec<String> = exp
        .iter()
        .zip(expo.rates())
        .map(|(s, c)| format!("{:.2}s", s / c))
        .collect();
    println!("  exponential protection: [{}]", secs.join(", "));
    println!();

    println!("instantaneous drain handoff at deficit 10 KB/s (B/s per layer):");
    println!(
        "  linear      : {:?}",
        nl_band_drain_rates(&linear, 4, 10_000.0)
    );
    println!(
        "  exponential : {:?}",
        nl_band_drain_rates(&expo, 4, 10_000.0)
    );
    println!();

    println!("K-backoff total requirements from a 45 KB/s peak (bytes):");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "k", "lin S1", "lin S2", "exp S1", "exp S2"
    );
    for k in 1..=4u32 {
        println!(
            "{:<6} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            k,
            nl_buf_total(&linear, 4, Scenario::One, k, 45_000.0, slope),
            nl_buf_total(&linear, 4, Scenario::Two, k, 45_000.0, slope),
            nl_buf_total(&expo, 4, Scenario::One, k, 45_000.0, slope),
            nl_buf_total(&expo, 4, Scenario::Two, k, 45_000.0, slope),
        );
    }
    println!();
    println!("per-layer S2/k=2 targets, exponential:");
    println!(
        "  {:?}",
        nl_per_layer(&expo, 4, Scenario::Two, 2, 45_000.0, slope)
    );

    // Sanity assertions so the example doubles as a smoke test.
    assert!((lin.iter().sum::<f64>() - exp.iter().sum::<f64>()).abs() < 1e-6);
    assert!(exp[0] > 0.0);
}
