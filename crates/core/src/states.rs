//! The sequence of optimal buffer states traversed during filling and
//! draining (§4.1, figures 8–10).
//!
//! For every `k = 1..=k_horizon` and both scenarios we get an optimal buffer
//! state — a total requirement and a per-layer split. The filling phase
//! walks these states in increasing order of total buffering, always working
//! toward the next one; the draining phase walks the same path backwards.
//!
//! Sorting by total alone is not enough: moving from one state to the next
//! may then require *draining* a layer that the previous state had filled
//! (the paper shows `{S2,k=2} → {S1,k=2}` draining L2, and `{S1,k=4} →
//! {S2,k=3}` draining L3 for its figure-9 parameters). Because buffered data
//! for a higher layer can substitute for missing lower-layer buffer (but not
//! vice versa), the paper constrains the per-layer targets so that both the
//! total and every per-layer amount increase monotonically along the path
//! (figure 10). We realize that constraint as a running per-layer maximum
//! over the sorted sequence, which is exactly "no less than every earlier
//! state" and keeps the path drain-free; the pre-clamp targets are kept
//! available for the ablation benchmarks.

use crate::scenario::{min_backoffs_below_with, per_layer_into_with, Scenario};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// One optimal buffer state `(scenario, k)` with its per-layer targets.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferState {
    /// Which extremal loss pattern this state protects against.
    pub scenario: Scenario,
    /// Number of backoffs survived.
    pub k: u32,
    /// Raw per-layer optimal allocation (bytes, index 0 = base), before the
    /// monotonicity clamp.
    pub raw_per_layer: Vec<f64>,
    /// Per-layer targets after the figure-10 monotonicity constraint.
    pub per_layer: Vec<f64>,
}

impl BufferState {
    /// Total buffering of the *raw* optimal allocation.
    pub fn raw_total(&self) -> f64 {
        self.raw_per_layer.iter().sum()
    }

    /// Total buffering of the clamped targets (≥ `raw_total`).
    pub fn total(&self) -> f64 {
        self.per_layer.iter().sum()
    }

    /// True when `bufs` meets every per-layer target within `eps` bytes.
    pub fn satisfied_by(&self, bufs: &[f64], eps: f64) -> bool {
        self.per_layer
            .iter()
            .zip(bufs.iter().chain(std::iter::repeat(&0.0)))
            .all(|(target, have)| have + eps >= *target)
    }
}

/// The ordered, monotone path of buffer states for a given operating point.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateSequence {
    /// Transmission rate (bytes/s) the sequence was computed for — the rate
    /// from which the hypothetical backoffs occur.
    pub rate: f64,
    /// Number of active layers.
    pub n_active: usize,
    /// Per-layer consumption rate `C`.
    pub layer_rate: f64,
    /// Additive-increase slope `S`.
    pub slope: f64,
    /// `k₁` for this operating point.
    pub k1: u32,
    /// States in increasing order of total required buffering, after the
    /// monotonicity clamp. Never empty for `n_active ≥ 1` and `k_horizon ≥ 1`.
    pub states: Vec<BufferState>,
}

impl StateSequence {
    /// Build the sequence for backoff counts `1..=k_horizon`.
    ///
    /// States with zero requirement (fewer than `k₁` backoffs) and duplicate
    /// `(S1,k₁) == (S2,k₁)` states are pruned. The result is sorted by raw
    /// total with Scenario 1 first on ties (its taller-triangle distribution
    /// can stand in for the Scenario 2 one of equal total, §4), then the
    /// running per-layer maximum is applied.
    pub fn build(rate: f64, n_active: usize, layer_rate: f64, slope: f64, k_horizon: u32) -> Self {
        Self::build_with(rate, n_active, layer_rate, slope, k_horizon, 0.5)
    }

    /// [`build`](Self::build) generalized to an arbitrary multiplicative
    /// decrease factor (bit-identical at `0.5`, the AIMD halving).
    pub fn build_with(
        rate: f64,
        n_active: usize,
        layer_rate: f64,
        slope: f64,
        k_horizon: u32,
        decrease_factor: f64,
    ) -> Self {
        let mut seq = StateSequence::default();
        seq.rebuild_with(rate, n_active, layer_rate, slope, k_horizon, decrease_factor);
        seq
    }

    /// Recompute the sequence in place for a new operating point, recycling
    /// the previous contents' allocations. Produces exactly the same value
    /// as [`build`](Self::build) with the same arguments; the point is that
    /// a caller ticking every period (the QA controller) reuses the state
    /// and per-layer vectors instead of reallocating ~2 `Vec`s per state
    /// per tick.
    pub fn rebuild(
        &mut self,
        rate: f64,
        n_active: usize,
        layer_rate: f64,
        slope: f64,
        k_horizon: u32,
    ) {
        self.rebuild_with(rate, n_active, layer_rate, slope, k_horizon, 0.5);
    }

    /// [`rebuild`](Self::rebuild) generalized to an arbitrary multiplicative
    /// decrease factor (bit-identical at `0.5`, the AIMD halving).
    pub fn rebuild_with(
        &mut self,
        rate: f64,
        n_active: usize,
        layer_rate: f64,
        slope: f64,
        k_horizon: u32,
        decrease_factor: f64,
    ) {
        let consumption = n_active as f64 * layer_rate;
        let k1 = if consumption > 0.0 {
            min_backoffs_below_with(rate, consumption, decrease_factor)
        } else {
            1
        };
        // Recycle every vector the previous contents owned.
        let mut pool: Vec<Vec<f64>> = Vec::with_capacity(2 * self.states.len() + 1);
        for st in self.states.drain(..) {
            pool.push(st.raw_per_layer);
            pool.push(st.per_layer);
        }
        let mut tmp = pool.pop().unwrap_or_default();
        for k in 1..=k_horizon {
            for &scenario in &Scenario::ALL {
                if scenario == Scenario::Two && k <= k1 {
                    // Identical to Scenario 1 with k = k1; skip duplicates.
                    continue;
                }
                let mut raw = pool.pop().unwrap_or_default();
                per_layer_into_with(
                    scenario,
                    k,
                    rate,
                    n_active,
                    layer_rate,
                    slope,
                    decrease_factor,
                    &mut raw,
                    &mut tmp,
                );
                if raw.iter().sum::<f64>() <= 0.0 {
                    pool.push(raw);
                    continue; // k < k1: no draining phase, nothing to protect.
                }
                let mut clamped = pool.pop().unwrap_or_default();
                clamped.clear();
                clamped.extend_from_slice(&raw);
                self.states.push(BufferState {
                    scenario,
                    k,
                    per_layer: clamped,
                    raw_per_layer: raw,
                });
            }
        }
        self.states.sort_by(|a, b| {
            a.raw_total()
                .partial_cmp(&b.raw_total())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    // Scenario 1 first on equal totals.
                    let rank = |s: &BufferState| match s.scenario {
                        Scenario::One => 0,
                        Scenario::Two => 1,
                    };
                    rank(a).cmp(&rank(b))
                })
        });
        // Figure-10 monotonicity: running per-layer maximum.
        tmp.clear();
        tmp.resize(n_active, 0.0);
        for state in &mut self.states {
            for (target, run) in state.per_layer.iter_mut().zip(tmp.iter_mut()) {
                if *target < *run {
                    *target = *run;
                } else {
                    *run = *target;
                }
            }
        }
        self.rate = rate;
        self.n_active = n_active;
        self.layer_rate = layer_rate;
        self.slope = slope;
        self.k1 = k1;
    }

    /// Overwrite `self` with a copy of `src`, recycling every vector `self`
    /// already owns. Equivalent to `self.clone_from(src)` except that no
    /// allocation happens once `self` has the capacity. (The
    /// [`GeometryCache`] hit path used to restore sequences this way; it
    /// now rehydrates from flattened `CachedSeq` entries, but this remains
    /// the allocation-free way to copy one live sequence into another.)
    pub fn copy_from(&mut self, src: &StateSequence) {
        self.rate = src.rate;
        self.n_active = src.n_active;
        self.layer_rate = src.layer_rate;
        self.slope = src.slope;
        self.k1 = src.k1;
        self.states.truncate(src.states.len());
        let copied = self.states.len();
        for (dst, s) in self.states.iter_mut().zip(src.states.iter()) {
            dst.scenario = s.scenario;
            dst.k = s.k;
            dst.raw_per_layer.clear();
            dst.raw_per_layer.extend_from_slice(&s.raw_per_layer);
            dst.per_layer.clear();
            dst.per_layer.extend_from_slice(&s.per_layer);
        }
        self.states.extend(src.states.iter().skip(copied).cloned());
    }

    /// Index of the first state not yet satisfied by `bufs`, or `None` when
    /// every state on the path is satisfied.
    pub fn first_unsatisfied(&self, bufs: &[f64], eps: f64) -> Option<usize> {
        self.states.iter().position(|s| !s.satisfied_by(bufs, eps))
    }

    /// Index of the last (largest) state fully satisfied by `bufs`, or
    /// `None` when not even the first state is satisfied.
    pub fn last_satisfied(&self, bufs: &[f64], eps: f64) -> Option<usize> {
        match self.first_unsatisfied(bufs, eps) {
            Some(0) => None,
            Some(i) => Some(i - 1),
            None => self.states.len().checked_sub(1),
        }
    }

    /// True when `bufs` satisfies every state with `k ≤ k_max` (the §3.1
    /// smoothing condition for adding a layer).
    pub fn satisfied_up_to_k(&self, bufs: &[f64], k_max: u32, eps: f64) -> bool {
        self.states
            .iter()
            .filter(|s| s.k <= k_max)
            .all(|s| s.satisfied_by(bufs, eps))
    }

    /// The §3.1 smoothing condition evaluated against a *post-add* path:
    /// for every state with `k ≤ k_max`, the first `existing` layers' shares
    /// must be covered in aggregate, and the base layer's share must be
    /// covered individually. The aggregate form reflects §4.2 substitution —
    /// buffered data for a higher layer can stand in for a lower one — and
    /// keeps the requirement reachable (the filling allocator parks leftover
    /// rate in the base, not in upper layers). The base share is demanded
    /// per-layer because nothing can substitute for it or refill it quickly
    /// once the add lands and consumption jumps by a whole `C`. The
    /// candidate layer's own share is excluded: it cannot have buffered
    /// anything before it starts.
    pub fn satisfied_up_to_k_post_add(
        &self,
        bufs: &[f64],
        k_max: u32,
        eps: f64,
        existing: usize,
    ) -> bool {
        let have_base = bufs.first().copied().unwrap_or(0.0);
        let have_total: f64 = bufs.iter().take(existing).map(|b| b.max(0.0)).sum();
        self.states.iter().filter(|s| s.k <= k_max).all(|s| {
            let want_base = s.per_layer.first().copied().unwrap_or(0.0);
            let want_total: f64 = s.per_layer.iter().take(existing).sum();
            have_base + eps >= want_base && have_total + eps >= want_total
        })
    }
}

/// Exact operating-point key of a [`StateSequence`] derivation. Floats
/// enter via their bit patterns, so a hit can only ever return a sequence
/// that `rebuild` with the same arguments would have produced bit for bit
/// — memoization is value-transparent by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GeoKey {
    rate_bits: u64,
    n_active: usize,
    layer_rate_bits: u64,
    slope_bits: u64,
    k_horizon: u32,
    decrease_factor_bits: u64,
}

/// Flattened, immutable copy of a derived [`StateSequence`] as stored in
/// the memo: per-state metadata plus one contiguous buffer holding every
/// state's raw and clamped per-layer targets. Admitting an entry costs
/// two allocations, where cloning the full `StateSequence` would pin two
/// fresh `Vec`s per state — the difference is what pushed warm campaign
/// cells above the cold baseline's allocs/session before PR 10 (the
/// `warm_alloc` budgets gate it now).
#[derive(Debug)]
struct CachedSeq {
    rate: f64,
    n_active: usize,
    layer_rate: f64,
    slope: f64,
    k1: u32,
    /// `(scenario, k)` per state, in sequence order.
    meta: Vec<(Scenario, u32)>,
    /// `2 * n_active` floats per state: raw targets, then clamped.
    flat: Vec<f64>,
}

impl CachedSeq {
    fn from_seq(seq: &StateSequence) -> Self {
        let n = seq.n_active;
        let mut meta = Vec::with_capacity(seq.states.len());
        let mut flat = Vec::with_capacity(2 * n * seq.states.len());
        for st in &seq.states {
            debug_assert_eq!(st.raw_per_layer.len(), n);
            debug_assert_eq!(st.per_layer.len(), n);
            meta.push((st.scenario, st.k));
            flat.extend_from_slice(&st.raw_per_layer);
            flat.extend_from_slice(&st.per_layer);
        }
        CachedSeq {
            rate: seq.rate,
            n_active: n,
            layer_rate: seq.layer_rate,
            slope: seq.slope,
            k1: seq.k1,
            meta,
            flat,
        }
    }

    /// Overwrite `seq` with this entry's contents, recycling the vectors
    /// `seq` already owns — the exact floats [`StateSequence::copy_from`]
    /// of the original would have written.
    fn write_into(&self, seq: &mut StateSequence) {
        seq.rate = self.rate;
        seq.n_active = self.n_active;
        seq.layer_rate = self.layer_rate;
        seq.slope = self.slope;
        seq.k1 = self.k1;
        seq.states.truncate(self.meta.len());
        while seq.states.len() < self.meta.len() {
            seq.states.push(BufferState {
                scenario: Scenario::One,
                k: 0,
                raw_per_layer: Vec::new(),
                per_layer: Vec::new(),
            });
        }
        let n = self.n_active;
        for (i, (st, &(scenario, k))) in seq.states.iter_mut().zip(&self.meta).enumerate() {
            let base = 2 * n * i;
            st.scenario = scenario;
            st.k = k;
            st.raw_per_layer.clear();
            st.raw_per_layer.extend_from_slice(&self.flat[base..base + n]);
            st.per_layer.clear();
            st.per_layer.extend_from_slice(&self.flat[base + n..base + 2 * n]);
        }
    }
}

/// Memo cache for [`StateSequence`] derivations, keyed by the exact
/// operating point `(rate, n_active, C, S, k_horizon)`.
///
/// Grid sweeps re-derive identical sequences whenever two sessions (or two
/// ticks) pass through the same operating point — replayed cells hit on
/// every tick, first-run cells on repeated rates (rate caps, pre-start
/// defaults, drain plateaus). One cache is meant to be shared per campaign
/// *worker* (wrapped in `Arc<Mutex<_>>`, see [`SharedGeometryCache`]) and
/// live as long as the worker's world pool; entries are immutable once
/// inserted and the population is capped, so memory stays bounded on
/// grids whose operating points never repeat.
#[derive(Debug, Default)]
pub struct GeometryCache {
    map: HashMap<GeoKey, CachedSeq>,
    /// Two-touch admission filter: keys missed exactly once so far. A
    /// sequence is cloned into `map` only on its *second* miss — an
    /// operating point seen once and never again (seed-dependent transient
    /// rates make up most of a session's misses) costs one `HashSet` entry
    /// instead of a full `StateSequence` clone. Warm campaign workers
    /// previously cloned ~2.6k never-reused sequences per session into
    /// the shared memo; admission-on-reuse removes those allocations
    /// without changing any hit result.
    seen_once: HashSet<GeoKey>,
    hits: u64,
    misses: u64,
}

/// Shared handle campaign workers hand to every [`crate::QaController`]
/// they build: `Mutex` (not `RefCell`) so controllers stay `Send`.
pub type SharedGeometryCache = Arc<Mutex<GeometryCache>>;

impl GeometryCache {
    /// Entries kept at most; past this population, misses still rebuild
    /// correctly but are no longer inserted (the sweep's operating points
    /// evidently do not repeat, so growing further buys nothing).
    pub const MAX_ENTRIES: usize = 4096;

    /// Admission-filter population cap. When the filter fills up it is
    /// cleared wholesale — repeat keys then need two fresh misses to be
    /// admitted, which only delays (never prevents) memoization of a
    /// genuinely recurring operating point.
    pub const MAX_SEEN_ONCE: usize = 4 * Self::MAX_ENTRIES;

    /// Fresh empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh shareable cache handle.
    pub fn shared() -> SharedGeometryCache {
        Arc::new(Mutex::new(Self::new()))
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Cached operating points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// [`StateSequence::rebuild`] through the memo: on a hit, `seq` is
    /// overwritten from the cached copy (recycling its allocations); on a
    /// miss it is rebuilt and the result memoized. The value of `seq`
    /// afterwards is bit-identical to an uncached rebuild either way.
    pub fn rebuild_memoized(
        &mut self,
        seq: &mut StateSequence,
        rate: f64,
        n_active: usize,
        layer_rate: f64,
        slope: f64,
        k_horizon: u32,
    ) {
        self.rebuild_memoized_with(seq, rate, n_active, layer_rate, slope, k_horizon, 0.5);
    }

    /// [`rebuild_memoized`](Self::rebuild_memoized) generalized to an
    /// arbitrary decrease factor; the factor's bit pattern is part of the
    /// memo key so sessions with different controllers never share entries.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild_memoized_with(
        &mut self,
        seq: &mut StateSequence,
        rate: f64,
        n_active: usize,
        layer_rate: f64,
        slope: f64,
        k_horizon: u32,
        decrease_factor: f64,
    ) {
        let key = GeoKey {
            rate_bits: rate.to_bits(),
            n_active,
            layer_rate_bits: layer_rate.to_bits(),
            slope_bits: slope.to_bits(),
            k_horizon,
            decrease_factor_bits: decrease_factor.to_bits(),
        };
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            laqa_obs::counter!("qa.geometry_cache.hits").inc();
            cached.write_into(seq);
            return;
        }
        self.misses += 1;
        laqa_obs::counter!("qa.geometry_cache.misses").inc();
        seq.rebuild_with(rate, n_active, layer_rate, slope, k_horizon, decrease_factor);
        if self.map.len() < Self::MAX_ENTRIES && self.seen_once.remove(&key) {
            laqa_obs::counter!("qa.geometry_cache.admissions").inc();
            self.map.insert(key, CachedSeq::from_seq(seq));
        } else if self.map.len() < Self::MAX_ENTRIES {
            if self.seen_once.len() >= Self::MAX_SEEN_ONCE {
                self.seen_once.clear();
            }
            self.seen_once.insert(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 10_000.0;
    const S: f64 = 25_000.0;

    fn seq(rate: f64, n: usize, k: u32) -> StateSequence {
        StateSequence::build(rate, n, C, S, k)
    }

    #[test]
    fn sequence_sorted_by_raw_total() {
        let s = seq(40_000.0, 3, 5);
        for w in s.states.windows(2) {
            assert!(w[0].raw_total() <= w[1].raw_total() + 1e-9);
        }
        assert!(!s.states.is_empty());
    }

    #[test]
    fn clamped_targets_monotone_per_layer() {
        let s = seq(40_000.0, 4, 6);
        for w in s.states.windows(2) {
            for i in 0..4 {
                assert!(
                    w[0].per_layer[i] <= w[1].per_layer[i] + 1e-9,
                    "layer {i} not monotone: {:?} -> {:?}",
                    w[0].per_layer,
                    w[1].per_layer
                );
            }
        }
    }

    #[test]
    fn clamp_never_reduces_targets_below_raw() {
        let s = seq(70_000.0, 4, 6);
        for state in &s.states {
            for (t, r) in state.per_layer.iter().zip(state.raw_per_layer.iter()) {
                assert!(t + 1e-9 >= *r);
            }
        }
    }

    #[test]
    fn duplicate_s2_states_at_or_below_k1_pruned() {
        let s = seq(40_000.0, 3, 5); // k1 = 1
        assert_eq!(s.k1, 1);
        assert!(!s
            .states
            .iter()
            .any(|st| st.scenario == Scenario::Two && st.k <= 1));
        // Exactly one state per k=1 (the shared S1/S2 state).
        assert_eq!(s.states.iter().filter(|st| st.k == 1).count(), 1);
    }

    #[test]
    fn zero_requirement_states_pruned() {
        // rate 130 KB/s, 3 layers → k1 = 3: k = 1, 2 need no buffering.
        let s = seq(130_000.0, 3, 5);
        assert_eq!(s.k1, 3);
        assert!(s.states.iter().all(|st| st.k >= 3));
        assert!(s.states.iter().all(|st| st.raw_total() > 0.0));
    }

    #[test]
    fn first_unsatisfied_walks_with_buffer_level() {
        let s = seq(40_000.0, 3, 4);
        // Empty buffers: first state unsatisfied.
        assert_eq!(s.first_unsatisfied(&[0.0, 0.0, 0.0], 1.0), Some(0));
        // Satisfy exactly the first state's targets.
        let t0 = s.states[0].per_layer.clone();
        assert_eq!(s.first_unsatisfied(&t0, 1.0), Some(1));
        // Satisfy everything.
        let last = s.states.last().unwrap().per_layer.clone();
        assert_eq!(s.first_unsatisfied(&last, 1.0), None);
        assert_eq!(s.last_satisfied(&last, 1.0), Some(s.states.len() - 1));
    }

    #[test]
    fn last_satisfied_none_with_empty_buffers() {
        let s = seq(40_000.0, 3, 4);
        assert_eq!(s.last_satisfied(&[0.0, 0.0, 0.0], 1.0), None);
    }

    #[test]
    fn satisfied_up_to_k_gates_adding() {
        let s = seq(40_000.0, 3, 8);
        let k_max = 2;
        let needed: Vec<f64> = (0..3)
            .map(|i| {
                s.states
                    .iter()
                    .filter(|st| st.k <= k_max)
                    .map(|st| st.per_layer[i])
                    .fold(0.0, f64::max)
            })
            .collect();
        assert!(s.satisfied_up_to_k(&needed, k_max, 1.0));
        let mut short = needed.clone();
        short[0] -= 10.0;
        assert!(!s.satisfied_up_to_k(&short, k_max, 1.0));
    }

    #[test]
    fn satisfied_by_tolerates_short_buffer_slice() {
        let s = seq(40_000.0, 3, 2);
        // A slice shorter than n_active is treated as zeros beyond its end.
        let state = &s.states[0];
        assert!(!state.satisfied_by(&[1e9], 1.0) || state.per_layer[1] == 0.0);
        assert!(state.satisfied_by(&[1e9, 1e9, 1e9], 1.0));
    }

    #[test]
    fn traversal_without_clamp_would_require_draining() {
        // Reproduce the figure-9 phenomenon: somewhere in the sorted raw
        // sequence a layer's optimal share *decreases* from one state to the
        // next — the motivation for the clamp. Search a few operating points
        // for at least one occurrence.
        let mut found = false;
        'outer: for &rate in &[40_000.0, 55_000.0, 70_000.0, 90_000.0] {
            for n in 2..=5usize {
                let s = StateSequence::build(rate, n, C, S, 6);
                for w in s.states.windows(2) {
                    for i in 0..n {
                        if w[1].raw_per_layer[i] < w[0].raw_per_layer[i] - 1e-6 {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(found, "expected at least one non-monotone raw transition");
    }

    #[test]
    fn single_layer_sequence_has_base_only_states() {
        let s = seq(15_000.0, 1, 3);
        for st in &s.states {
            assert_eq!(st.per_layer.len(), 1);
            assert!(st.per_layer[0] > 0.0);
        }
    }

    #[test]
    fn build_with_half_is_bit_identical_to_build() {
        for &rate in &[15_000.0, 40_000.0, 70_000.0, 130_000.0] {
            for n in 1..=5usize {
                let a = StateSequence::build(rate, n, C, S, 6);
                let b = StateSequence::build_with(rate, n, C, S, 6, 0.5);
                assert_eq!(a.k1, b.k1);
                assert_eq!(a.states.len(), b.states.len());
                for (sa, sb) in a.states.iter().zip(&b.states) {
                    assert_eq!(sa.scenario, sb.scenario);
                    assert_eq!(sa.k, sb.k);
                    for (x, y) in sa.per_layer.iter().zip(&sb.per_layer) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    for (x, y) in sa.raw_per_layer.iter().zip(&sb.raw_per_layer) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn nonhalf_factor_sequence_stays_sorted_and_monotone() {
        for &f in &[0.7, 0.85] {
            let s = StateSequence::build_with(40_000.0, 4, C, S, 6, f);
            assert!(!s.states.is_empty(), "f={f}");
            for w in s.states.windows(2) {
                assert!(w[0].raw_total() <= w[1].raw_total() + 1e-9, "f={f}");
                for i in 0..4 {
                    assert!(w[0].per_layer[i] <= w[1].per_layer[i] + 1e-9, "f={f}");
                }
            }
        }
    }

    #[test]
    fn geometry_cache_keys_on_decrease_factor() {
        let mut cache = GeometryCache::new();
        let mut seq = StateSequence::default();
        // Two misses at f=0.5 admit the entry; a lookup at f=0.85 with the
        // same (rate, n, C, S, k) must miss and rebuild, not alias.
        cache.rebuild_memoized(&mut seq, 40_000.0, 3, C, S, 5);
        cache.rebuild_memoized(&mut seq, 40_000.0, 3, C, S, 5);
        assert_eq!(cache.len(), 1);
        cache.rebuild_memoized_with(&mut seq, 40_000.0, 3, C, S, 5, 0.85);
        assert_eq!(cache.stats().0, 0, "factor change must not hit");
        let fresh = StateSequence::build_with(40_000.0, 3, C, S, 5, 0.85);
        assert_eq!(seq.states.len(), fresh.states.len());
        for (a, b) in seq.states.iter().zip(&fresh.states) {
            assert_eq!(a.per_layer, b.per_layer);
        }
    }

    #[test]
    fn geometry_cache_admits_on_second_miss_only() {
        let mut cache = GeometryCache::new();
        let mut seq = StateSequence::default();
        let probe = |cache: &mut GeometryCache, seq: &mut StateSequence, rate: f64| {
            cache.rebuild_memoized(seq, rate, 3, C, S, 5);
        };
        // First miss: rebuilt but not memoized (one-shot keys stay out).
        probe(&mut cache, &mut seq, 40_000.0);
        assert_eq!(cache.stats(), (0, 1));
        assert!(cache.is_empty());
        // Second miss on the same key: admitted.
        probe(&mut cache, &mut seq, 40_000.0);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 1);
        // Third occurrence: a hit, bit-identical to a cold rebuild.
        probe(&mut cache, &mut seq, 40_000.0);
        assert_eq!(cache.stats(), (1, 2));
        let fresh = StateSequence::build(40_000.0, 3, C, S, 5);
        assert_eq!(seq.states.len(), fresh.states.len());
        for (a, b) in seq.states.iter().zip(&fresh.states) {
            assert_eq!(a.per_layer, b.per_layer);
        }
        // A different one-shot key still stays out of the memo.
        probe(&mut cache, &mut seq, 41_000.0);
        assert_eq!(cache.len(), 1);
    }
}
