//! A bag of named time series plus CSV export.

use crate::series::TimeSeries;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

/// Collects named [`TimeSeries`] during a run and exports them.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: BTreeMap<String, TimeSeries>,
}

impl Recorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample to series `name` (created on first use).
    pub fn record(&mut self, name: &str, t: f64, v: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .push(t, v);
    }

    /// Insert a completed series (replacing any previous one of that name).
    pub fn insert(&mut self, series: TimeSeries) {
        self.series.insert(series.name.clone(), series);
    }

    /// Get a series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Number of series held.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series are held.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Write one series per CSV file (`<dir>/<name>.csv`, `time,value`
    /// rows). Creates `dir` if needed.
    pub fn write_csv_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (name, series) in &self.series {
            let safe: String = name
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '-' || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            let mut f = std::fs::File::create(dir.join(format!("{safe}.csv")))?;
            writeln!(f, "time,{name}")?;
            for &(t, v) in &series.points {
                writeln!(f, "{t},{v}")?;
            }
        }
        Ok(())
    }

    /// Write every series into a single wide CSV (union of time stamps,
    /// step-interpolated). Best for series sampled on a shared clock.
    pub fn write_csv_wide(&self, path: impl AsRef<Path>, w: &mut impl Write) -> io::Result<()> {
        let _ = path; // reserved for error messages
        let mut times: Vec<f64> = self
            .series
            .values()
            .flat_map(|s| s.points.iter().map(|&(t, _)| t))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        write!(w, "time")?;
        for name in self.series.keys() {
            write!(w, ",{name}")?;
        }
        writeln!(w)?;
        for &t in &times {
            write!(w, "{t}")?;
            for s in self.series.values() {
                match s.at(t) {
                    Some(v) => write!(w, ",{v}")?,
                    None => write!(w, ",")?,
                }
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_creates_series() {
        let mut r = Recorder::new();
        r.record("a", 0.0, 1.0);
        r.record("a", 1.0, 2.0);
        r.record("b", 0.0, 9.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().len(), 2);
        assert_eq!(r.names(), vec!["a", "b"]);
    }

    #[test]
    fn csv_dir_round_trip() {
        let mut r = Recorder::new();
        r.record("tx rate", 0.0, 1.5);
        r.record("tx rate", 1.0, 2.5);
        let dir = std::env::temp_dir().join(format!("laqa_trace_test_{}", std::process::id()));
        r.write_csv_dir(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("tx_rate.csv")).unwrap();
        assert!(content.contains("time,tx rate"));
        assert!(content.contains("0,1.5"));
        assert!(content.contains("1,2.5"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wide_csv_aligns_series() {
        let mut r = Recorder::new();
        r.record("a", 0.0, 1.0);
        r.record("b", 1.0, 2.0);
        let mut buf = Vec::new();
        r.write_csv_wide("x", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1,1,2");
    }
}
