//! Order-sensitive 64-bit fingerprinting of event traces.
//!
//! The campaign engine (laqa-sim) proves bit-reproducibility by hashing
//! each session's full event trace and asserting the digest is identical
//! no matter how many worker threads ran the sweep. FNV-1a is used
//! because it is trivially stable across platforms and Rust versions —
//! unlike `DefaultHasher`, whose algorithm is explicitly unspecified.
//! Floats are folded in via their IEEE-754 bit patterns, so "equal" means
//! bit-equal, not approximately equal.

/// Streaming FNV-1a 64-bit hasher for trace fingerprints.
#[derive(Debug, Clone)]
pub struct TraceHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl TraceHasher {
    /// Fresh hasher.
    pub fn new() -> Self {
        TraceHasher { state: FNV_OFFSET }
    }

    /// Fold in raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.state ^= *b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold in a `u64` (little-endian).
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.bytes(&x.to_le_bytes())
    }

    /// Fold in an `f64` via its exact bit pattern.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.u64(x.to_bits())
    }

    /// Fold in a string (length-prefixed so `("ab","c")` ≠ `("a","bc")`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Fold in a `(time, value)` sample sequence.
    pub fn samples(&mut self, points: &[(f64, f64)]) -> &mut Self {
        self.u64(points.len() as u64);
        for (t, v) in points {
            self.f64(*t).f64(*v);
        }
        self
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for TraceHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a 64-bit of "hello" (cross-checked against an independent
        // implementation) — pins the exact algorithm and constants.
        let mut h = TraceHasher::new();
        h.bytes(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn order_matters() {
        let mut a = TraceHasher::new();
        a.u64(1).u64(2);
        let mut b = TraceHasher::new();
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_boundaries_matter() {
        let mut a = TraceHasher::new();
        a.str("ab").str("c");
        let mut b = TraceHasher::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_not_values() {
        let mut pos = TraceHasher::new();
        pos.f64(0.0);
        let mut neg = TraceHasher::new();
        neg.f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn samples_fingerprint_is_stable() {
        let pts = [(0.0, 1.0), (0.5, 2.0)];
        let mut a = TraceHasher::new();
        a.samples(&pts);
        let mut b = TraceHasher::new();
        b.samples(&pts);
        assert_eq!(a.finish(), b.finish());
    }
}
