//! Quality adaptation over a **window-based** (TCP-like) AIMD transport —
//! the paper's §7 plan to port the mechanism to other AIMD congestion
//! control schemes. The controller is identical; only the transport's
//! clocking differs (ACK-clocked window instead of rate pacing), which
//! makes the sawtooth burstier and the rate signal noisier.

use crate::agents::qa::QaTraces;
use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, Packet, PacketKind, Route};
use laqa_core::{QaConfig, QaController};
use laqa_rap::{RapEvent, WindowConfig, WindowSender};
use std::any::Any;

/// Quality-adaptive source riding an ACK-clocked AIMD window.
pub struct QaWindowSourceAgent {
    cc: WindowSender,
    qa: QaController,
    /// Sink agent (a [`crate::agents::qa::QaSinkAgent`] works unchanged —
    /// the wire format is the same).
    pub dst: AgentId,
    /// Forward route.
    pub route: Route,
    /// Flow id.
    pub flow: u32,
    packet_size: u32,
    tick_dt: f64,
    next_tick: f64,
    armed_at: f64,
    /// Smoothed rate estimate fed to the controller. The raw window/srtt
    /// quotient jumps on every ACK; an EWMA stands in for RAP's inherently
    /// smooth paced rate.
    rate_est: f64,
    /// Recorded traces (same panels as the RAP-based source).
    pub traces: QaTraces,
    /// Backoffs observed.
    pub backoffs: u64,
    /// Reused buffer for draining sender events without reallocating.
    ev_scratch: Vec<RapEvent>,
}

impl QaWindowSourceAgent {
    /// New window-CC QA source.
    pub fn new(
        dst: AgentId,
        route: impl Into<Route>,
        flow: u32,
        cc_cfg: WindowConfig,
        qa_cfg: QaConfig,
        tick_dt: f64,
    ) -> Self {
        let packet_size = cc_cfg.packet_size as u32;
        let max_layers = qa_cfg.max_layers;
        QaWindowSourceAgent {
            cc: WindowSender::new(cc_cfg, 0.0),
            qa: QaController::new(qa_cfg).expect("valid QA config"),
            dst,
            route: route.into(),
            flow,
            packet_size,
            tick_dt,
            next_tick: 0.0,
            armed_at: f64::NEG_INFINITY,
            rate_est: 0.0,
            traces: QaTraces::new(max_layers),
            backoffs: 0,
            ev_scratch: Vec::new(),
        }
    }

    /// The controller, for post-run inspection.
    pub fn qa(&self) -> &QaController {
        &self.qa
    }

    fn drain_events(&mut self, now: f64) {
        let mut events = std::mem::take(&mut self.ev_scratch);
        self.cc.drain_events_into(&mut events);
        for e in events.drain(..) {
            match e {
                RapEvent::Backoff { .. } => {
                    self.backoffs += 1;
                    // The post-backoff rate estimate: cwnd already halved.
                    self.rate_est = self.cc.rate().min(self.rate_est);
                    self.qa.on_backoff(now, self.rate_est);
                }
                RapEvent::PacketAcked { size, tag, .. } => {
                    self.qa.on_packet_delivered(tag as usize, size);
                }
                RapEvent::PacketLost { .. } | RapEvent::RateIncrease { .. } => {}
            }
        }
        self.ev_scratch = events;
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        self.cc.poll_timers(ctx.now);
        self.drain_events(ctx.now);
        while ctx.now + 1e-12 >= self.next_tick {
            let now = self.next_tick;
            // EWMA over the window-derived rate (per-tick gain 1/4).
            let raw = self.cc.rate();
            self.rate_est = if self.rate_est <= 0.0 {
                raw
            } else {
                self.rate_est + (raw - self.rate_est) * 0.25
            };
            self.qa.set_slope(self.cc.slope());
            let report = self.qa.tick(now, self.rate_est, self.tick_dt);
            let c = self.qa.config().layer_rate;
            self.traces.tx_rate.push(now, self.rate_est);
            self.traces
                .consumption
                .push(now, report.n_active as f64 * c);
            self.traces.n_active.push(now, report.n_active as f64);
            self.next_tick += self.tick_dt;
        }
        while self.cc.can_send() {
            let size = self.packet_size as f64;
            let layer = self.qa.next_packet_layer(size);
            let seq = self.cc.register_send(ctx.now, size, layer as u32);
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: self.flow,
                size: self.packet_size,
                kind: PacketKind::RapData {
                    seq,
                    layer: layer as u8,
                    n_active: self.qa.n_active() as u8,
                },
                dst: self.dst,
                route: self.route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
        }
        self.arm(ctx);
    }

    fn arm(&mut self, ctx: &mut Ctx) {
        let next = self.cc.next_timer().min(self.next_tick).max(ctx.now + 1e-6);
        if next < self.armed_at - 1e-9 || self.armed_at <= ctx.now + 1e-7 {
            ctx.set_timer_at(next, 0);
            self.armed_at = next;
        }
    }
}

impl Agent for QaWindowSourceAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        self.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let PacketKind::RapAck(info) = pkt.kind {
            self.cc.on_ack(ctx.now, info);
            self.drain_events(ctx.now);
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::qa::QaSinkAgent;
    use crate::engine::World;
    use crate::link::LinkConfig;
    use laqa_layered::LayeredEncoding;

    fn run(bw: f64, dur: f64) -> (World, AgentId, AgentId) {
        let mut w = World::new(23);
        let fwd = w.add_link(LinkConfig {
            bandwidth: bw,
            delay: 0.02,
            queue_packets: 20,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        let sink_id = 0;
        let src_id = 1;
        let qa_cfg = QaConfig {
            layer_rate: 5_000.0,
            max_layers: 6,
            k_max: 2,
            underflow_slack_bytes: 2_000.0,
            ..QaConfig::default()
        };
        let encoding = LayeredEncoding::linear(qa_cfg.max_layers, qa_cfg.layer_rate).unwrap();
        assert_eq!(
            w.add_agent(Box::new(QaSinkAgent::new(
                src_id,
                vec![rev],
                1,
                encoding,
                2.0 * qa_cfg.startup_buffer_secs,
                0.05,
            ))),
            sink_id
        );
        let cc_cfg = WindowConfig {
            packet_size: 500.0,
            initial_rtt: 0.06,
            max_cwnd: 60.0,
            ..WindowConfig::default()
        };
        let src = QaWindowSourceAgent::new(sink_id, vec![fwd], 1, cc_cfg, qa_cfg, 0.05);
        assert_eq!(w.add_agent(Box::new(src)), src_id);
        w.run_until(dur);
        (w, src_id, sink_id)
    }

    #[test]
    fn window_cc_qa_adapts_without_stalling() {
        let (w, src, sink) = run(25_000.0, 30.0);
        let s: &QaWindowSourceAgent = w.agent(src).unwrap();
        let steady: Vec<f64> = s
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t > 12.0)
            .map(|&(_, v)| v)
            .collect();
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!((2.0..=5.9).contains(&mean), "mean layers {mean}");
        assert!(
            s.backoffs > 0,
            "ACK-clocked AIMD must back off at a bottleneck"
        );
        assert_eq!(s.qa().metrics().stalls(), 0);
        let sk: &QaSinkAgent = w.agent(sink).unwrap();
        assert_eq!(sk.receiver.stats().underflows[0], 0, "base never starves");
    }

    #[test]
    fn window_cc_tracks_bandwidth_ordering() {
        let (w_lo, src_lo, _) = run(12_000.0, 25.0);
        let (w_hi, src_hi, _) = run(28_000.0, 25.0);
        let mean = |w: &World, id: AgentId| {
            let s: &QaWindowSourceAgent = w.agent(id).unwrap();
            let v: Vec<f64> = s
                .traces
                .n_active
                .points
                .iter()
                .filter(|&&(t, _)| t > 10.0)
                .map(|&(_, v)| v)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&w_hi, src_hi) > mean(&w_lo, src_lo),
            "more bandwidth must mean more layers"
        );
    }
}
