//! **Figure 13** — responsiveness to long-term bandwidth changes: the T2
//! run, where a CBR source at half the bottleneck bandwidth switches on
//! for the middle third of a 90 s run (`K_max = 4`).
//!
//! Expected: the QA flow sheds enhancement layers shortly after the burst
//! starts, re-adds them after it stops, every layer's buffer takes part in
//! the recovery, and the base layer is never jeopardized.

use laqa_bench::{ascii_plot, outdir, window_mean};
use laqa_sim::{run_scenario, ScenarioConfig};
use laqa_trace::{Recorder, RunSummary};

fn main() {
    let duration = 90.0;
    let cfg = ScenarioConfig::t2(4, duration, 7);
    let (burst_start, burst_stop, burst_rate) = cfg.cbr.expect("t2 has a burst");
    let out = run_scenario(&cfg);

    println!("== Figure 13: CBR burst at half bottleneck, K_max = 4 ==");
    println!("burst: {burst_rate:.0} B/s during t = {burst_start:.0}..{burst_stop:.0} s\n");
    println!("total tx rate : {}", ascii_plot(&out.traces.tx_rate, 72));
    println!(
        "consumption   : {}",
        ascii_plot(&out.traces.consumption, 72)
    );
    println!("active layers : {}", ascii_plot(&out.traces.n_active, 72));
    for i in 0..5 {
        println!(
            "L{i} buffer     : {}",
            ascii_plot(&out.traces.buffer[i], 72)
        );
    }

    let before = window_mean(&out.traces.n_active, 15.0, burst_start).unwrap_or(0.0);
    let during = window_mean(&out.traces.n_active, burst_start + 5.0, burst_stop).unwrap_or(0.0);
    let after = window_mean(&out.traces.n_active, burst_stop + 5.0, duration).unwrap_or(0.0);
    println!();
    println!("mean layers before burst : {before:.2}");
    println!("mean layers during burst : {during:.2}");
    println!("mean layers after burst  : {after:.2}");
    println!(
        "base stalls              : {} (sender) / {} (receiver)",
        out.metrics.stalls(),
        out.rx_base_underflows
    );
    println!();
    println!("expected shape: layer count steps down within seconds of the");
    println!("burst, holds a lower level, and recovers after the burst ends;");
    println!("the base layer's reception is never jeopardized.");

    let dir = outdir("fig13");
    let mut rec = Recorder::new();
    rec.insert(out.traces.tx_rate.clone());
    rec.insert(out.traces.consumption.clone());
    rec.insert(out.traces.n_active.clone());
    for i in 0..cfg.qa.max_layers {
        rec.insert(out.traces.layer_rate[i].clone());
        rec.insert(out.traces.drain_rate[i].clone());
        rec.insert(out.traces.buffer[i].clone());
    }
    rec.write_csv_dir(&dir).expect("csv");
    let mut summary = RunSummary::new("fig13");
    summary
        .param("k_max", 4)
        .param("duration", duration)
        .param(
            "burst",
            format!("{burst_rate:.0} B/s @ {burst_start:.0}-{burst_stop:.0} s"),
        )
        .metric("layers_before", before)
        .metric("layers_during", during)
        .metric("layers_after", after)
        .metric("base_stalls", out.metrics.stalls() as f64)
        .metric("rx_base_underflows", out.rx_base_underflows as f64)
        .metric("quality_changes", out.metrics.quality_changes() as f64);
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    println!("wrote {}", dir.display());
}
