//! Draining-phase allocation (§2.4 figure 5, §4.2).
//!
//! While the transmission rate is below the aggregate consumption rate, the
//! deficit must be pulled from receiver buffers. Two structures govern the
//! plan:
//!
//! 1. **The band profile** (§2.4, figure 4): at instantaneous deficit `d`,
//!    the maximally efficient split serves the *top* of the layer stack
//!    from the network and the *bottom* from buffers — layer `i` drains at
//!    `clamp(d − i·C, 0, C)`. This keeps each layer's drain rate matched to
//!    its optimal band, so small upper-layer bands are not burned early
//!    (draining a thin band at full rate `C` strands the phase later, when
//!    the deficit still spans that band's height but the buffer is gone).
//! 2. **The reverse path** (§4.2): when a lower layer lacks the buffer its
//!    band asks for, *higher*-layer buffer substitutes (never vice versa),
//!    and the substitution respects the per-layer floors of the preceding
//!    optimal state on the monotone path — the most advanced protection
//!    that can still be kept is kept.
//!
//! Hard constraints from the paper: a layer drains at most at its
//! consumption rate `C`, and the plan reports any uncoverable remainder —
//! a *critical situation* (§2.2) the controller resolves by dropping
//! layers.

use crate::geometry::band_drain_rates;
use crate::states::StateSequence;

/// Outcome of planning one draining period.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainPlan {
    /// Bytes to drain from each layer's buffer during the period.
    pub drain: Vec<f64>,
    /// Send rate per layer for the period (bytes/s): consumption minus the
    /// buffered part. Sums to the offered rate when the deficit is covered.
    pub per_layer_rate: Vec<f64>,
    /// Deficit bytes the buffers could *not* cover (0.0 in normal
    /// operation). A positive value is a critical situation: the controller
    /// must drop layers immediately.
    pub shortfall: f64,
}

/// Plan one draining period of `dt` seconds at transmission rate `rate`.
///
/// `seq` must be the state sequence computed at the *pre-backoff* peak rate
/// (the controller tracks it), so the floors correspond to the states that
/// were being filled. `bufs` is the current per-layer buffer estimate
/// (negative entries are fluid-model debt and treated as empty).
pub fn plan_draining(seq: &StateSequence, bufs: &[f64], rate: f64, dt: f64, eps: f64) -> DrainPlan {
    let n = seq.n_active;
    let c = seq.layer_rate;
    let consumption = n as f64 * c;
    if dt <= 0.0 {
        return DrainPlan {
            drain: vec![0.0; n],
            per_layer_rate: vec![c; n],
            shortfall: 0.0,
        };
    }
    // The rate recovers linearly (slope S) within the period, so the
    // period's true deficit is the midpoint value; planning on the
    // start-of-period deficit would systematically over-draw and strand an
    // exactly-provisioned buffer before the phase ends.
    let deficit_rate = (consumption - rate - seq.slope * dt / 2.0).max(0.0);
    let mut need = deficit_rate * dt;
    let cap = c * dt;
    let mut drain = vec![0.0f64; n];
    let avail = |i: usize| bufs.get(i).copied().unwrap_or(0.0).max(0.0);

    if need > 0.0 {
        // Floors start at the predecessor of the most advanced state the
        // buffers satisfy, and relax backwards as the walk continues.
        let mut floor_idx: isize = match seq.last_satisfied(bufs, eps) {
            Some(i) => i as isize - 1,
            None => -1,
        };
        // Pass A: the §2.4 band profile, bounded by caps, floors and
        // availability.
        {
            let floors: Vec<f64> = if floor_idx >= 0 {
                seq.states[floor_idx as usize].per_layer.clone()
            } else {
                vec![0.0; n]
            };
            let desired = band_drain_rates(deficit_rate, c, n);
            for i in 0..n {
                let want = desired[i] * dt;
                let room = (avail(i) - floors[i]).max(0.0);
                let take = want.min(cap).min(room).min(need);
                if take > 0.0 {
                    drain[i] += take;
                    need -= take;
                }
            }
        }
        // Pass B: substitute the remainder from higher layers first
        // (higher-layer buffer may stand in for lower, §4), stepping the
        // floors back along the path until they vanish.
        while need > 0.0 {
            let floors: Vec<f64> = if floor_idx >= 0 {
                seq.states[floor_idx as usize].per_layer.clone()
            } else {
                vec![0.0; n]
            };
            for i in (0..n).rev() {
                if need <= 0.0 {
                    break;
                }
                let room = (avail(i) - drain[i] - floors[i]).max(0.0);
                let take = need.min(cap - drain[i]).min(room);
                if take > 0.0 {
                    drain[i] += take;
                    need -= take;
                }
            }
            if need <= 0.0 || floor_idx < 0 {
                break;
            }
            floor_idx -= 1;
        }
    }

    let per_layer_rate = drain.iter().map(|d| c - d / dt).collect();
    DrainPlan {
        drain,
        per_layer_rate,
        shortfall: need.max(0.0),
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-parallel asserts read clearer
mod tests {
    use super::*;
    use crate::states::StateSequence;

    const C: f64 = 10_000.0;
    const S: f64 = 25_000.0;

    fn seq(rate: f64, n: usize) -> StateSequence {
        StateSequence::build(rate, n, C, S, 8)
    }

    /// Buffers that satisfy every state on the path.
    /// Midpoint deficit the planner charges for a period.
    fn mid_deficit(n: usize, rate: f64, dt: f64) -> f64 {
        (n as f64 * C - rate - S * dt / 2.0).max(0.0)
    }

    fn full_buffers(seq: &StateSequence) -> Vec<f64> {
        seq.states
            .last()
            .map(|s| s.per_layer.clone())
            .unwrap_or_else(|| vec![0.0; seq.n_active])
    }

    #[test]
    fn no_deficit_no_drain() {
        let s = seq(40_000.0, 3);
        let plan = plan_draining(&s, &[1e6; 3], 35_000.0, 0.1, 1.0);
        assert!(plan.drain.iter().all(|&d| d == 0.0));
        assert_eq!(plan.shortfall, 0.0);
        assert_eq!(plan.per_layer_rate, vec![C; 3]);
    }

    #[test]
    fn drain_covers_deficit_exactly() {
        let s = seq(40_000.0, 3);
        let bufs = full_buffers(&s);
        let dt = 0.1;
        let plan = plan_draining(&s, &bufs, 20_000.0, dt, 1.0);
        let drained: f64 = plan.drain.iter().sum();
        let need = mid_deficit(3, 20_000.0, dt) * dt;
        assert!((drained - need).abs() < 1e-6);
        assert_eq!(plan.shortfall, 0.0);
        let total: f64 = plan.per_layer_rate.iter().sum();
        assert!((total - (30_000.0 - need / dt)).abs() < 1e-6);
    }

    #[test]
    fn per_layer_drain_capped_at_consumption() {
        let s = seq(40_000.0, 3);
        let bufs = full_buffers(&s);
        let dt = 0.1;
        let plan = plan_draining(&s, &bufs, 0.0, dt, 1.0);
        for &d in &plan.drain {
            assert!(d <= C * dt + 1e-9);
        }
    }

    #[test]
    fn band_profile_preferred_when_buffers_allow() {
        // Deficit 13 KB/s over 3 layers: the band profile drains L0 at C
        // and L1 at 3 KB/s; L2 (above the deficit) is served by the
        // network and must not drain.
        let s = seq(40_000.0, 3);
        let bufs = [1e6, 1e6, 1e6];
        let dt = 0.1;
        let plan = plan_draining(&s, &bufs, 17_000.0, dt, 1.0);
        let d = mid_deficit(3, 17_000.0, dt); // 11 750 B/s
        assert!((plan.drain[0] - C * dt).abs() < 1e-6, "{:?}", plan.drain);
        assert!(
            (plan.drain[1] - (d - C) * dt).abs() < 1e-6,
            "{:?}",
            plan.drain
        );
        assert_eq!(plan.drain[2], 0.0);
        assert_eq!(plan.shortfall, 0.0);
    }

    #[test]
    fn higher_layers_substitute_for_missing_lower_buffer() {
        // L0 has nothing: its band share must come from the highest layer
        // that holds data (downward substitution), not be reported short.
        let s = seq(40_000.0, 3);
        let bufs = [0.0, 1e6, 1e6];
        let dt = 0.1;
        let plan = plan_draining(&s, &bufs, 17_000.0, dt, 1.0);
        assert_eq!(plan.drain[0], 0.0);
        assert_eq!(plan.shortfall, 0.0);
        let drained: f64 = plan.drain.iter().sum();
        assert!((drained - mid_deficit(3, 17_000.0, dt) * dt).abs() < 1e-6);
        // The substitute comes preferentially from the top.
        assert!(plan.drain[2] >= plan.drain[1] - 1e-9, "{:?}", plan.drain);
    }

    #[test]
    fn exact_band_buffers_survive_whole_draining_phase() {
        // The crucial efficiency property: with buffers equal to the exact
        // single-backoff band allocation, the planner must cover every
        // period of the draining phase with zero shortfall — thin upper
        // bands must not be burned early. Parameterized over the decrease
        // factor: the post-backoff rate is `rate · f`, and the property
        // must hold for gentle (0.7, 0.85) backoffs as well as the paper's
        // AIMD halving.
        for &factor in &[0.5f64, 0.7, 0.85] {
            for n in 2..=6usize {
                for &mult in &[1.2f64, 1.5, 1.9] {
                    let rate = mult * n as f64 * C;
                    let sq = StateSequence::build_with(rate, n, C, S, 1, factor);
                    let mut bufs = crate::geometry::band_allocation(
                        crate::geometry::deficit(n as f64 * C, rate * factor),
                        C,
                        S,
                        n,
                    );
                    let dt = 0.05;
                    let mut cur = rate * factor;
                    while cur < n as f64 * C {
                        let plan = plan_draining(&sq, &bufs, cur, dt, 1.0);
                        assert!(
                            plan.shortfall < 1.0,
                            "f={factor} n={n} mult={mult} rate={cur}: shortfall {}",
                            plan.shortfall
                        );
                        for i in 0..n {
                            bufs[i] -= plan.drain[i];
                            assert!(bufs[i] > -1e-6, "f={factor} n={n} mult={mult}");
                        }
                        cur += S * dt;
                    }
                }
            }
        }
    }

    #[test]
    fn shortfall_reported_when_buffers_empty() {
        let s = seq(40_000.0, 3);
        let dt = 0.1;
        let plan = plan_draining(&s, &[0.0; 3], 20_000.0, dt, 1.0);
        assert!((plan.shortfall - mid_deficit(3, 20_000.0, dt) * dt).abs() < 1e-6);
    }

    #[test]
    fn shortfall_reported_when_rate_cap_binds() {
        // Only the base layer holds buffer, but the deficit spans two
        // layers' worth of bandwidth: the base layer can contribute at most
        // C·dt, so half the deficit is uncoverable — §2.3's "insufficient
        // distribution" example.
        let s = seq(40_000.0, 3);
        let dt = 0.1;
        let bufs = [1e6, 0.0, 0.0];
        let plan = plan_draining(&s, &bufs, 10_000.0, dt, 1.0);
        assert!((plan.drain[0] - C * dt).abs() < 1e-6);
        let need = mid_deficit(3, 10_000.0, dt) * dt;
        assert!((plan.shortfall - (need - C * dt)).abs() < 1e-6);
    }

    #[test]
    fn negative_buffer_debt_treated_as_empty() {
        let s = seq(40_000.0, 3);
        let dt = 0.1;
        let bufs = [-500.0, 1e6, 1e6];
        let plan = plan_draining(&s, &bufs, 17_000.0, dt, 1.0);
        assert_eq!(plan.drain[0], 0.0, "debt must not be drained");
        assert_eq!(plan.shortfall, 0.0);
    }

    #[test]
    fn multi_period_drain_never_increases_satisfied_state() {
        let s = seq(40_000.0, 3);
        let mut bufs = full_buffers(&s);
        let dt = 0.05;
        let mut rate = 20_000.0;
        let mut last_idx = s
            .last_satisfied(&bufs, 1.0)
            .map(|i| i as isize)
            .unwrap_or(-1);
        for _ in 0..200 {
            if rate >= 30_000.0 {
                break;
            }
            let plan = plan_draining(&s, &bufs, rate, dt, 1.0);
            assert_eq!(plan.shortfall, 0.0, "unexpected shortfall");
            for i in 0..3 {
                bufs[i] -= plan.drain[i];
                assert!(bufs[i] >= -1e-6);
            }
            let idx = s
                .last_satisfied(&bufs, 1.0)
                .map(|i| i as isize)
                .unwrap_or(-1);
            assert!(idx <= last_idx, "satisfied index increased while draining");
            last_idx = idx;
            rate += S * dt;
        }
    }

    #[test]
    fn send_rates_never_negative() {
        let s = seq(40_000.0, 4);
        let bufs = full_buffers(&s);
        let plan = plan_draining(&s, &bufs, 0.0, 0.5, 1.0);
        for &r in &plan.per_layer_rate {
            assert!(r >= -1e-9);
        }
    }
}
