//! # laqa-core — Layered Quality Adaptation
//!
//! A faithful implementation of *Quality Adaptation for Congestion
//! Controlled Video Playback over the Internet* (Rejaie, Handley, Estrin —
//! SIGCOMM 1999): the mechanism that lets a video server stream
//! hierarchically encoded (layered) video over an AIMD congestion-controlled
//! transport while keeping perceived quality stable.
//!
//! The congestion controller changes the transmission rate every few RTTs;
//! video quality must change on a timescale of seconds to minutes. The gap
//! is bridged by receiver buffering, and this crate implements the paper's
//! near-optimal policy for *how much* to buffer, *for which layers*, and
//! *when* to add or drop a layer:
//!
//! * [`geometry`] — the AIMD deficit-triangle algebra (paper §2, App. A):
//!   recovery buffering, the optimal per-layer "band" allocation, the drop
//!   rule.
//! * [`scenario`] — multi-backoff buffer requirements for the two extremal
//!   loss patterns, Scenario 1 and Scenario 2 (§4, App. A.4/A.5).
//! * [`states`] — the ordered, monotone sequence of optimal buffer states
//!   traversed while filling and (in reverse) while draining (figures 8–10).
//! * [`filling`] / [`draining`] — fine-grain inter-layer bandwidth
//!   allocation in each phase.
//! * [`adddrop`] — the coarse-grain layer add/drop conditions with the
//!   `K_max` smoothing factor (§2.1, §2.2, §3.1).
//! * [`nonlinear`] — the §7 future-work extension: the same geometry for
//!   heterogeneous (e.g. exponentially spaced) layer rates.
//! * [`controller`] — [`controller::QaController`], the transport-agnostic
//!   server-side state machine combining all of the above.
//! * [`metrics`] — the paper's evaluation metrics: buffering efficiency
//!   (Table 1), avoidable drops (Table 2), quality-change counts (fig. 12).
//!
//! ## Quick start
//!
//! ```
//! use laqa_core::{QaConfig, QaController};
//!
//! let mut qa = QaController::new(QaConfig::default()).unwrap();
//! qa.set_slope(25_000.0); // AIMD slope S = pkt/srtt² (bytes/s²)
//!
//! let mut now = 0.0;
//! let dt = 0.1;
//! let rate = 25_000.0; // bytes/s from the congestion controller
//! for _ in 0..100 {
//!     let report = qa.tick(now, rate, dt);
//!     // Send `report.per_layer_rate[i] * dt` bytes for each layer i,
//!     // asking the controller which layer owns each packet; credit the
//!     // buffers when the transport confirms delivery (here: instantly).
//!     let mut budget: f64 = report.per_layer_rate.iter().sum::<f64>() * dt;
//!     while budget >= 1000.0 {
//!         let layer = qa.next_packet_layer(1000.0);
//!         qa.on_packet_delivered(layer, 1000.0);
//!         budget -= 1000.0;
//!     }
//!     now += dt;
//! }
//! assert!(qa.total_buffer() > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adddrop;
pub mod config;
pub mod controller;
pub mod draining;
pub mod filling;
pub mod geometry;
pub mod metrics;
pub mod nonlinear;
pub mod scenario;
pub mod states;

pub use config::{ConfigError, QaConfig};
pub use controller::{Phase, QaController, TickReport};
pub use metrics::{DropReason, MetricsCollector, QaEvent};
pub use nonlinear::LayerRates;
pub use scenario::Scenario;
pub use states::{BufferState, GeometryCache, SharedGeometryCache, StateSequence};
