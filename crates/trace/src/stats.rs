//! Descriptive statistics over time series — used by the experiment
//! summaries (steady-state means, tail percentiles of queue occupancy and
//! buffer levels).

use crate::series::TimeSeries;

/// Summary statistics of a series' values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Number of samples.
    pub n: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// True when any sample value is NaN — no order statistic or moment is
/// meaningful then, so every function here returns `None` for such input
/// rather than letting a NaN scramble the sort or poison a sum.
fn has_nan(series: &TimeSeries) -> bool {
    series.points.iter().any(|&(_, v)| v.is_nan())
}

/// Value at quantile `q ∈ [0, 1]` by linear interpolation between order
/// statistics. `None` for an empty series, out-of-range (or NaN) `q`, or
/// a series containing NaN values.
pub fn percentile(series: &TimeSeries, q: f64) -> Option<f64> {
    if series.points.is_empty() || !(0.0..=1.0).contains(&q) || has_nan(series) {
        return None;
    }
    let mut vals: Vec<f64> = series.points.iter().map(|&(_, v)| v).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (vals.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    if frac == 0.0 {
        // Exact order statistic: skip the interpolation, whose `inf * 0`
        // term would turn an infinite sample into NaN.
        return Some(vals[lo]);
    }
    Some(vals[lo] * (1.0 - frac) + vals[hi] * frac)
}

/// Full summary; `None` for an empty series or one containing NaN values.
pub fn summarize(series: &TimeSeries) -> Option<SeriesStats> {
    if series.points.is_empty() || has_nan(series) {
        return None;
    }
    let n = series.points.len();
    let mean = series.mean()?;
    let var = series
        .points
        .iter()
        .map(|&(_, v)| (v - mean) * (v - mean))
        .sum::<f64>()
        / n as f64;
    Some(SeriesStats {
        n,
        min: series.min()?,
        max: series.max()?,
        mean,
        stddev: var.sqrt(),
        median: percentile(series, 0.5)?,
        p95: percentile(series, 0.95)?,
    })
}

/// Fixed-width histogram of the values: returns `(bin_edges, counts)` with
/// `bins + 1` edges. `None` for an empty series, `bins == 0`, or a series
/// containing NaN values.
pub fn histogram(series: &TimeSeries, bins: usize) -> Option<(Vec<f64>, Vec<usize>)> {
    if series.points.is_empty() || bins == 0 || has_nan(series) {
        return None;
    }
    let min = series.min()?;
    let max = series.max()?;
    let width = ((max - min) / bins as f64).max(1e-12);
    let edges: Vec<f64> = (0..=bins).map(|i| min + i as f64 * width).collect();
    let mut counts = vec![0usize; bins];
    for &(_, v) in &series.points {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    Some((edges, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new("x");
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as f64, v);
        }
        s
    }

    #[test]
    fn percentile_interpolates() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(percentile(&s, 0.0), Some(1.0));
        assert_eq!(percentile(&s, 1.0), Some(4.0));
        assert_eq!(percentile(&s, 0.5), Some(2.5));
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let s = series(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(percentile(&s, 0.5), Some(2.5));
    }

    #[test]
    fn percentile_rejects_bad_inputs() {
        assert_eq!(percentile(&series(&[]), 0.5), None);
        assert_eq!(percentile(&series(&[1.0]), 1.5), None);
    }

    #[test]
    fn summarize_matches_hand_computation() {
        let s = series(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let st = summarize(&s).unwrap();
        assert_eq!(st.n, 8);
        assert_eq!(st.mean, 5.0);
        assert_eq!(st.stddev, 2.0);
        assert_eq!(st.min, 2.0);
        assert_eq!(st.max, 9.0);
        assert_eq!(st.median, 4.5);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert_eq!(summarize(&series(&[])), None);
    }

    #[test]
    fn histogram_counts_all_samples() {
        let s = series(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let (edges, counts) = histogram(&s, 5).unwrap();
        assert_eq!(edges.len(), 6);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, vec![2, 2, 2, 2, 2]);
    }

    #[test]
    fn histogram_degenerate_range() {
        let s = series(&[3.0, 3.0, 3.0]);
        let (_, counts) = histogram(&s, 4).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn percentile_empty_series_is_none_for_every_quantile() {
        let s = series(&[]);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&s, q), None, "q = {q}");
        }
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        let s = series(&[7.5]);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&s, q), Some(7.5), "q = {q}");
        }
        assert_eq!(percentile(&s, f64::NAN), None, "NaN quantile rejected");
    }

    #[test]
    fn histogram_all_equal_values_land_in_one_bin() {
        let s = series(&[2.0; 5]);
        let (edges, counts) = histogram(&s, 3).unwrap();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], 2.0);
        // All mass in the first bin: a degenerate range must not panic or
        // scatter counts.
        assert_eq!(counts, vec![5, 0, 0]);
    }

    #[test]
    fn nan_values_reject_all_statistics() {
        let s = series(&[1.0, f64::NAN, 3.0]);
        assert_eq!(percentile(&s, 0.5), None);
        assert_eq!(summarize(&s), None);
        assert_eq!(histogram(&s, 4), None);
        // Infinities are ordered and thus still allowed.
        let inf = series(&[1.0, f64::INFINITY]);
        assert_eq!(percentile(&inf, 1.0), Some(f64::INFINITY));
    }
}
