//! **Figure 2** — layered encoding with receiver buffering: the overview
//! picture of filling and draining phases.
//!
//! The paper's figure drives a small quality-adaptation example with a
//! synthetic AIMD bandwidth trace containing two backoffs, and shows (a)
//! available bandwidth vs consumption rate and (b) per-packet
//! arrival→playout intervals, i.e. how much buffering each layer holds.
//! We reproduce it by driving the controller directly with the same shape
//! of trace and reporting the per-layer buffer evolution through the two
//! draining phases.

use laqa_bench::{ascii_plot, outdir};
use laqa_core::{Phase, QaConfig, QaController};
use laqa_trace::{Recorder, RunSummary, TimeSeries};

fn main() {
    let c = 10_000.0; // per-layer rate, the paper's C = 10 KB/s
    let slope = 12_500.0;
    let cfg = QaConfig {
        layer_rate: c,
        max_layers: 2,
        k_max: 1, // the overview figure predates smoothing (§2)
        underflow_slack_bytes: 1_000.0,
        ..QaConfig::default()
    };
    let mut qa = QaController::new(cfg).unwrap();
    qa.set_slope(slope);

    // Synthetic AIMD trace: climb, backoff at t=12 and t=26 (the figure's
    // "backoff 1" and "backoff 2").
    let dt = 0.05;
    let mut rate: f64 = 8_000.0;
    let mut now = 0.0;
    let mut rec = Recorder::new();
    let mut tx = TimeSeries::new("tx_rate");
    let mut cons = TimeSeries::new("consumption");
    let mut buf0 = TimeSeries::new("buffer_l0");
    let mut buf1 = TimeSeries::new("buffer_l1");
    let mut phases: Vec<(f64, Phase)> = Vec::new();
    let mut last_phase = None;

    for step in 0..(40.0 / dt) as usize {
        let t = step as f64 * dt;
        if (t - 12.0).abs() < dt / 2.0 || (t - 26.0).abs() < dt / 2.0 {
            rate /= 2.0;
            qa.on_backoff(now, rate);
        }
        let report = qa.tick(now, rate, dt);
        for (layer, &r) in report.per_layer_rate.iter().enumerate() {
            qa.on_packet_delivered(layer, r * dt);
        }
        tx.push(t, rate);
        cons.push(t, report.n_active as f64 * c);
        buf0.push(t, qa.buffers().first().copied().unwrap_or(0.0));
        buf1.push(t, qa.buffers().get(1).copied().unwrap_or(0.0));
        if last_phase != Some(report.phase) {
            phases.push((t, report.phase));
            last_phase = Some(report.phase);
        }
        rate += slope * dt;
        // Cap below 2x consumption so each backoff creates a real deficit
        // (a draining phase), as in the paper's figure.
        rate = rate.min(21_500.0);
        now += dt;
    }

    println!("== Figure 2: filling/draining overview (2 layers, 2 backoffs) ==");
    println!("tx rate      : {}", ascii_plot(&tx, 72));
    println!("consumption  : {}", ascii_plot(&cons, 72));
    println!("L0 buffer    : {}", ascii_plot(&buf0, 72));
    println!("L1 buffer    : {}", ascii_plot(&buf1, 72));
    println!("phase timeline:");
    for (t, p) in &phases {
        println!("  t={t:5.2}s  -> {p:?}");
    }
    let b0_at_backoff1 = buf0.at(12.0).unwrap_or(0.0);
    let b1_at_backoff1 = buf1.at(12.0).unwrap_or(0.0);
    println!();
    println!("at backoff 1: L0 buffer {b0_at_backoff1:.0} B, L1 buffer {b1_at_backoff1:.0} B");
    println!("expected shape: more data buffered for L0 (base) than L1; buffers");
    println!("shrink through each draining phase and refill afterwards, while");
    println!("the consumption (layer count) stays level through the backoffs.");

    let dir = outdir("fig02");
    rec.insert(tx);
    rec.insert(cons);
    rec.insert(buf0.clone());
    rec.insert(buf1.clone());
    rec.write_csv_dir(&dir).expect("write csv");
    let mut summary = RunSummary::new("fig02");
    summary
        .param("layer_rate", c)
        .param("slope", slope)
        .metric("l0_buffer_at_backoff1", b0_at_backoff1)
        .metric("l1_buffer_at_backoff1", b1_at_backoff1)
        .metric("phase_changes", phases.len() as f64)
        .note("driven by a synthetic AIMD trace with backoffs at t=12s and t=26s");
    summary
        .write_json(dir.join("summary.json"))
        .expect("write summary");
    println!("wrote {}", dir.display());
}
