//! Integration: the real-socket stack (tokio UDP server + client through
//! the loopback shaper), end to end.

use laqa_net::{run_session, SessionConfig, ShaperConfig};
use tokio::time::Duration;

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn loopback_streaming_end_to_end() {
    let cfg = SessionConfig {
        duration: 5.0,
        ..SessionConfig::default()
    };
    let report = run_session(cfg).await.expect("session");

    assert!(report.server.sent_packets > 50);
    assert!(report.client.received > 30);
    // Deterministic payloads survive the trip bit-for-bit.
    assert_eq!(report.client.corrupt, 0);
    // The server's layer signal reached the client.
    assert!(report.client.n_active_trace.max().unwrap_or(0.0) >= 2.0);
    assert!(report.client.got_fin);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn bottleneck_actually_shapes_the_flow() {
    // A tight bottleneck must produce drops and keep goodput at or below
    // the configured bandwidth.
    let cfg = SessionConfig {
        shaper: ShaperConfig {
            bandwidth: 15_000.0,
            delay: Duration::from_millis(15),
            queue_packets: 10,
            ..ShaperConfig::default()
        },
        duration: 5.0,
        ..SessionConfig::default()
    };
    let report = run_session(cfg).await.expect("session");
    assert!(
        report.bottleneck_drops > 0,
        "no congestion at a tight bottleneck?"
    );
    let goodput = report.client.bytes as f64 / 5.0;
    assert!(
        goodput < 18_000.0,
        "goodput {goodput:.0} exceeds the shaped bandwidth"
    );
    assert!(report.server.backoffs > 0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn quality_tracks_available_bandwidth() {
    // Generous pipe: quality climbs to (near) the encoding maximum.
    let generous = SessionConfig {
        shaper: ShaperConfig {
            bandwidth: 60_000.0,
            delay: Duration::from_millis(10),
            queue_packets: 40,
            ..ShaperConfig::default()
        },
        duration: 6.0,
        ..SessionConfig::default()
    };
    let rich = run_session(generous).await.expect("session");
    // Tight pipe: quality stays low.
    let tight = SessionConfig {
        shaper: ShaperConfig {
            bandwidth: 8_000.0,
            delay: Duration::from_millis(10),
            queue_packets: 10,
            ..ShaperConfig::default()
        },
        duration: 6.0,
        ..SessionConfig::default()
    };
    let poor = run_session(tight).await.expect("session");

    let rich_peak = rich.server.n_active_trace.max().unwrap_or(0.0);
    let poor_peak = poor.server.n_active_trace.max().unwrap_or(0.0);
    assert!(
        rich_peak > poor_peak,
        "rich path peaked at {rich_peak}, poor at {poor_peak}"
    );
}
