//! Property tests for the Karn RTO backoff in [`laqa_rap::RttEstimator`]:
//! across *any* interleaving of samples and timeouts, the timeout value
//! must back off monotonically between samples, respect the hard cap, and
//! snap fully back to the un-backed-off value on the first valid sample.

use laqa_check::cases;
use laqa_rap::RttEstimator;

const MAX_RTO: f64 = 60.0;

#[test]
fn consecutive_timeouts_never_decrease_rto() {
    cases("rto_monotone_backoff", 200, |g, _case| {
        let mut e = RttEstimator::new(g.f64_range(0.001, 5.0));
        // Optionally seed with real samples first.
        for _ in 0..g.usize_in(0, 20) {
            e.sample(g.f64_range(0.001, 2.0));
        }
        let mut prev = e.rto();
        for _ in 0..g.usize_in(1, 40) {
            e.on_timeout();
            let now = e.rto();
            assert!(
                now >= prev - 1e-12,
                "backoff went down: {prev} -> {now} (exp {})",
                e.backoff_exponent()
            );
            assert!(now <= MAX_RTO + 1e-12, "cap violated: {now}");
            assert!(now.is_finite());
            prev = now;
        }
    });
}

#[test]
fn rto_saturates_at_cap_under_timeout_storms() {
    cases("rto_cap_saturation", 100, |g, _case| {
        let mut e = RttEstimator::new(g.f64_range(0.01, 2.0));
        for _ in 0..g.usize_in(0, 5) {
            e.sample(g.f64_range(0.01, 2.0));
        }
        // Past the exponent cap every further timeout is a no-op.
        for _ in 0..g.usize_in(10, 200) {
            e.on_timeout();
        }
        let saturated = e.rto();
        e.on_timeout();
        assert_eq!(
            e.rto().to_bits(),
            saturated.to_bits(),
            "saturated RTO must be a fixed point of on_timeout"
        );
        let base = (e.srtt() + 4.0 * e.rttvar()).max(0.2);
        assert!((e.rto() - (base * 64.0).min(MAX_RTO)).abs() < 1e-9);
    });
}

#[test]
fn fresh_valid_sample_fully_resets_backoff() {
    cases("rto_sample_reset", 200, |g, _case| {
        let mut e = RttEstimator::new(g.f64_range(0.001, 5.0));
        for _ in 0..g.usize_in(0, 10) {
            e.sample(g.f64_range(0.001, 2.0));
        }
        for _ in 0..g.usize_in(1, 100) {
            e.on_timeout();
        }
        assert!(e.backoff_exponent() >= 1);
        // A parallel estimator that never saw the timeouts but absorbs the
        // same sample: the reset must make the two agree exactly.
        let mut clean = e.clone();
        clean.reset_backoff();
        let s = g.f64_range(0.001, 2.0);
        e.sample(s);
        clean.sample(s);
        assert_eq!(e.backoff_exponent(), 0, "sample clears Karn backoff");
        assert_eq!(
            e.rto().to_bits(),
            clean.rto().to_bits(),
            "post-sample RTO carries no residue of the timeout history"
        );
        // Garbage samples are ignored entirely: no reset.
        e.on_timeout();
        let backed_off = e.rto();
        for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
            e.sample(bad);
            assert_eq!(e.rto().to_bits(), backed_off.to_bits());
            assert_eq!(e.backoff_exponent(), 1);
        }
    });
}

#[test]
fn rto_always_within_bounds_for_any_history() {
    cases("rto_bounds_fuzz", 300, |g, _case| {
        let mut e = RttEstimator::new(g.f64_range(0.0001, 10.0));
        for _ in 0..g.usize_in(1, 80) {
            match g.u32_in(0, 3) {
                0 => e.on_timeout(),
                1 => e.reset_backoff(),
                2 => e.sample(g.f64_range(1e-6, 30.0)),
                _ => e.sample(f64::NAN),
            }
            let rto = e.rto();
            assert!(
                (0.2..=MAX_RTO).contains(&rto),
                "rto {rto} outside [min_rto, max_rto]"
            );
        }
    });
}
