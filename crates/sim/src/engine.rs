//! The discrete-event engine: event queue, world, agent dispatch.
//!
//! Deterministic by construction: time is integer nanoseconds, ties are
//! broken by insertion sequence, and the only randomness flows through the
//! world's seeded RNG. The event queue itself is pluggable (see
//! [`crate::sched`]): the default hierarchical timer wheel and the
//! reference `BinaryHeap` drain in exactly the same `(time_ns, seq)`
//! order, so a world's trajectory is bit-identical under either.

use crate::link::{Link, LinkConfig, LinkStats};
use crate::packet::{AgentId, LinkId, Packet};
use crate::sched::{ambient_scheduler, AnyScheduler, Scheduler, SchedulerKind};
use crate::time::{ns_to_secs, secs_to_ns, tx_time_ns};
use crate::rng::SimRng;
use std::any::Any;

/// Things that can happen.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Event {
    /// The head-of-line packet of `link` finished serializing.
    LinkDone { link: LinkId },
    /// `pkt` arrives at its next hop (link or destination agent).
    Arrive { pkt: Packet },
    /// Agent timer with an agent-defined token.
    Timer { agent: AgentId, token: u64 },
}

/// Everything one session owns except its agents and its event queue:
/// local clock, links, RNG, uid and event counters. A solo [`World`]
/// pairs one of these with its own queue; the megasession engine keeps a
/// column of them sharing a single queue.
pub(crate) struct SessionCore {
    pub(crate) now_ns: u64,
    pub(crate) links: Vec<Link>,
    /// Link shells salvaged from a retired world (warm-world reuse):
    /// [`World::add_link`] pops one and [`Link::reset`]s it instead of
    /// allocating, so the queues' ring buffers carry over. Stored in
    /// reverse creation order so `pop()` re-hands them out positionally.
    pub(crate) spare_links: Vec<Link>,
    pub(crate) next_uid: u64,
    pub(crate) rng: SimRng,
    /// Events dispatched so far — a plain (always-on, deterministic)
    /// counter used for run throughput summaries.
    pub(crate) events_processed: u64,
    /// Track id for the `laqa_obs::flight` recorder: the campaign/mega
    /// executors set it to the session's grid index so timeline records
    /// are attributed to the same track no matter which worker or
    /// executor ran the session. Never read by simulation logic.
    pub(crate) flight_id: u64,
}

impl SessionCore {
    /// Fresh per-session state seeded from `seed`, clock at zero.
    pub(crate) fn fresh(seed: u64) -> Self {
        SessionCore {
            now_ns: 0,
            links: Vec::new(),
            spare_links: Vec::new(),
            next_uid: 0,
            rng: SimRng::seed_from_u64(seed),
            events_processed: 0,
            flight_id: 0,
        }
    }
}

/// A session's private event queue: the pluggable scheduler plus the
/// session's own insertion-sequence counter, bundled so every schedule
/// site pays exactly one direct call — no enum-of-queue-targets
/// indirection on the hot path (the megasession engine used to route
/// every insert through a `QueueRef` enum with session/epoch tagging;
/// since PR 10 each multiplexed session owns one of these outright).
///
/// All times passed through [`EventQueue::schedule`] are *session-local*
/// nanoseconds; the clamp to "not before now" happens in local time so a
/// session behaves bit-identically whether it runs alone or multiplexed
/// at an arbitrary start offset. `seq` is strictly increasing over this
/// session's inserts, which is all the per-session `(time, seq)`
/// dispatch order depends on.
pub(crate) struct EventQueue {
    pub(crate) sched: AnyScheduler<Event>,
    pub(crate) seq: u64,
}

impl EventQueue {
    pub(crate) fn new(kind: SchedulerKind) -> Self {
        EventQueue {
            sched: AnyScheduler::new(kind),
            seq: 0,
        }
    }

    /// Schedule `event` at session-local `at_ns` (clamped to `now_ns`).
    #[inline]
    pub(crate) fn schedule(&mut self, now_ns: u64, at_ns: u64, event: Event) {
        self.sched.schedule(at_ns.max(now_ns), self.seq, event);
        self.seq += 1;
    }

    #[inline]
    pub(crate) fn pop_next_at_or_before(&mut self, bound_ns: u64) -> Option<(u64, u64, Event)> {
        self.sched.pop_next_at_or_before(bound_ns)
    }

    pub(crate) fn len(&self) -> usize {
        self.sched.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.sched.len() == 0
    }

    /// `(time_ns, seq)` of the next event without consuming it.
    #[inline]
    pub(crate) fn peek_next(&mut self) -> Option<(u64, u64)> {
        self.sched.peek_next()
    }

    pub(crate) fn kind(&self) -> SchedulerKind {
        self.sched.kind()
    }

    pub(crate) fn reserve(&mut self, additional: usize) {
        self.sched.reserve(additional);
    }

    /// Empty the queue keeping its capacity, and rewind `seq` for the
    /// next session (salvage path).
    pub(crate) fn reset(&mut self) {
        self.sched.reset();
        self.seq = 0;
    }
}

/// Put `pkt` onto its next link (or deliver directly when routeless).
#[inline]
fn route_packet(core: &mut SessionCore, queue: &mut EventQueue, pkt: Packet) {
    match pkt.next_link() {
        None => {
            // Already at the destination: deliver immediately.
            queue.schedule(core.now_ns, core.now_ns, Event::Arrive { pkt });
        }
        Some(link_id) => {
            let was_busy = core.links[link_id].busy;
            let (u_loss, u_red) = (core.rng.next_f64(), core.rng.next_f64());
            if core.links[link_id].offer(pkt, u_loss, u_red) && !was_busy {
                core.links[link_id].busy = true;
                let head_size = core.links[link_id]
                    .queue
                    .front()
                    .map(|p| p.size)
                    .expect("offer accepted");
                let bw = core.links[link_id].cfg.bandwidth;
                let done = core.now_ns.saturating_add(tx_time_ns(head_size, bw));
                queue.schedule(core.now_ns, done, Event::LinkDone { link: link_id });
            }
        }
    }
}

/// The execution context handed to agents.
pub struct Ctx<'a> {
    /// Current simulation time (seconds).
    pub now: f64,
    /// The agent being dispatched.
    pub agent_id: AgentId,
    core: &'a mut SessionCore,
    queue: &'a mut EventQueue,
}

impl<'a> Ctx<'a> {
    /// Allocate a globally unique packet id.
    pub fn alloc_uid(&mut self) -> u64 {
        let uid = self.core.next_uid;
        self.core.next_uid += 1;
        uid
    }

    /// Transmit a packet along its route.
    #[inline]
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.sent_at = self.now;
        route_packet(self.core, self.queue, pkt);
    }

    /// Arm a timer to fire at absolute time `at` seconds.
    #[inline]
    pub fn set_timer_at(&mut self, at: f64, token: u64) {
        let at_ns = secs_to_ns(at.max(0.0));
        self.queue.schedule(
            self.core.now_ns,
            at_ns,
            Event::Timer {
                agent: self.agent_id,
                token,
            },
        );
    }

    /// Arm a timer to fire `delay` seconds from now.
    pub fn set_timer_after(&mut self, delay: f64, token: u64) {
        self.set_timer_at(self.now + delay.max(0.0), token);
    }

    /// Uniform random number in `[0, 1)` from the world's seeded RNG.
    pub fn rand(&mut self) -> f64 {
        self.core.rng.next_f64()
    }

    /// Queue length of a link (packets), for diagnostics.
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        self.core.links[link].queue_len()
    }

    /// Current configuration of a link.
    pub fn link_config(&self, link: LinkId) -> LinkConfig {
        self.core.links[link].cfg
    }

    /// Change a link's bandwidth at runtime (fault injection). The engine
    /// reads the configuration when each packet *starts* serializing, so a
    /// packet already in flight finishes at its old speed — exactly the
    /// physical behaviour of a rate change mid-transmission.
    pub fn set_link_bandwidth(&mut self, link: LinkId, bandwidth: f64) {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "link bandwidth must be finite and positive, got {bandwidth}"
        );
        self.core.links[link].cfg.bandwidth = bandwidth;
    }

    /// Change a link's propagation delay at runtime (RTT-spike injection).
    /// Applies to packets that *finish* serializing after the change;
    /// packets already propagating keep their old arrival time, so packet
    /// order on the wire can invert during a spike — as on a real rerouted
    /// path.
    pub fn set_link_delay(&mut self, link: LinkId, delay: f64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "link delay must be finite and non-negative, got {delay}"
        );
        self.core.links[link].cfg.delay = delay;
    }

    /// Change a link's random (non-congestive) loss probability at runtime
    /// (burst-loss injection). Clamped to `[0, 1]`.
    pub fn set_link_loss_rate(&mut self, link: LinkId, loss_rate: f64) {
        assert!(
            loss_rate.is_finite(),
            "link loss rate must be finite, got {loss_rate}"
        );
        self.core.links[link].cfg.loss_rate = loss_rate.clamp(0.0, 1.0);
    }

    /// Next time (seconds, session-local) the link's trace schedule has a
    /// point to apply; `None` for untraced links and exhausted schedules.
    pub fn link_trace_next(&self, link: LinkId) -> Option<f64> {
        self.core.links[link]
            .trace
            .as_ref()
            .and_then(|t| t.next_change_at())
    }

    /// Apply every trace schedule point due at or before the current time
    /// to the link's live configuration (see
    /// [`crate::link::LinkTraceState::apply_next`] for the fault-
    /// composition precedence). Returns how many points were applied. The
    /// sub-nanosecond tolerance absorbs the timer's integer-nanosecond
    /// quantization of the point's f64 time.
    pub fn apply_link_trace(&mut self, link: LinkId) -> u64 {
        let now = self.now;
        let l = &mut self.core.links[link];
        let Some(trace) = l.trace.as_mut() else {
            return 0;
        };
        let mut applied = 0;
        while trace.next_change_at().is_some_and(|at| at <= now + 1e-9) {
            if !trace.apply_next(&mut l.cfg) {
                break;
            }
            applied += 1;
        }
        if applied > 0 {
            laqa_obs::counter!("trace.points_applied").add(applied);
        }
        applied
    }
}

/// A network endpoint or middlebox with protocol behaviour.
pub trait Agent: 'static {
    /// Called once when the simulation starts.
    fn start(&mut self, _ctx: &mut Ctx) {}
    /// A packet addressed to this agent arrived.
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet);
    /// A timer armed by this agent fired.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}
    /// Downcast support (stats extraction after a run).
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The reusable carcass of a retired [`World`]: the scheduler (reset but
/// with slab/heap capacity intact), the emptied links vector, the link
/// shells themselves, and the cleared agents vector. Feed it to
/// [`World::with_salvage`] to build the next session's world without
/// repaying those allocations. Purely an allocation-recycling vehicle —
/// a world built from salvage is observationally identical to a fresh
/// one (pinned by the warm-vs-cold fingerprint tests).
pub struct WorldSalvage {
    pub(crate) queue: EventQueue,
    pub(crate) links: Vec<Link>,
    pub(crate) spare_links: Vec<Link>,
    pub(crate) agents: Vec<Option<Box<dyn Agent>>>,
}

/// The simulated world: links, agents, and the event loop.
///
/// Fields are crate-visible so the megasession engine
/// ([`crate::mega::MegaEngine`]) can absorb an unstarted world's parts
/// into its session table columns.
pub struct World {
    pub(crate) core: SessionCore,
    pub(crate) queue: EventQueue,
    pub(crate) agents: Vec<Option<Box<dyn Agent>>>,
    pub(crate) started: bool,
}

impl World {
    /// New world with a deterministic RNG seed, using the ambient
    /// scheduler kind (see [`crate::sched::ambient_scheduler`]).
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, ambient_scheduler())
    }

    /// New world with an explicit event-scheduler implementation. The
    /// simulated trajectory is bit-identical for every kind; the choice
    /// only affects wall-clock speed.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        World {
            core: SessionCore::fresh(seed),
            queue: EventQueue::new(kind),
            agents: Vec::new(),
            started: false,
        }
    }

    /// New world recycling the storage of a retired one (see
    /// [`World::salvage`]). The salvaged scheduler is reused only when its
    /// kind matches `kind`; trajectory-relevant state (time, seq, RNG,
    /// uid counter, event counter) always starts fresh from `seed`.
    pub fn with_salvage(seed: u64, kind: SchedulerKind, salvage: WorldSalvage) -> Self {
        let WorldSalvage {
            queue,
            links,
            mut spare_links,
            agents,
        } = salvage;
        let queue = if queue.kind() == kind {
            queue
        } else {
            EventQueue::new(kind)
        };
        // `links` arrives emptied with capacity; the shells live in
        // `spare_links`. A mismatched topology is harmless — leftover
        // shells are dropped with the world, missing ones are allocated.
        spare_links.reverse();
        World {
            core: SessionCore {
                now_ns: 0,
                links,
                spare_links,
                next_uid: 0,
                rng: SimRng::seed_from_u64(seed),
                events_processed: 0,
                flight_id: 0,
            },
            queue,
            agents,
            started: false,
        }
    }

    /// Retire this world, keeping its reusable storage: the scheduler is
    /// [`Scheduler::reset`] (capacity kept), link shells move to the spare
    /// pool in creation order, and the agents vector is emptied (the boxed
    /// agents themselves are dropped — their internal state is per-session
    /// and cheap relative to the engine structures).
    pub fn salvage(mut self) -> WorldSalvage {
        self.queue.reset();
        let mut links = std::mem::take(&mut self.core.links);
        let mut spare_links = std::mem::take(&mut self.core.spare_links);
        spare_links.clear();
        spare_links.append(&mut links);
        let mut agents = self.agents;
        agents.clear();
        WorldSalvage {
            queue: self.queue,
            links,
            spare_links,
            agents,
        }
    }

    /// Which event-scheduler implementation this world runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Add a link; returns its id. Reuses a salvaged link shell when one
    /// is available (warm-world path), which keeps the queue's ring
    /// buffer allocation from the previous session.
    pub fn add_link(&mut self, cfg: LinkConfig) -> LinkId {
        let link = match self.core.spare_links.pop() {
            Some(mut shell) => {
                shell.reset(cfg);
                shell
            }
            None => Link::new(cfg),
        };
        self.core.links.push(link);
        self.core.links.len() - 1
    }

    /// Add an agent; returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        self.agents.push(Some(agent));
        self.agents.len() - 1
    }

    /// Current simulation time (seconds).
    pub fn now(&self) -> f64 {
        ns_to_secs(self.core.now_ns)
    }

    /// Attribute this world's `laqa_obs::flight` timeline records to
    /// track `id` (the campaign executors pass the session's grid index).
    /// Purely observational — never read by simulation logic.
    pub fn set_flight_id(&mut self, id: u64) {
        self.core.flight_id = id;
    }

    /// Total events dispatched by [`World::run_until`] so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Counters of a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.core.links[link].stats
    }

    /// Current configuration of a link (reflects any runtime mutation done
    /// through [`Ctx::set_link_bandwidth`] and friends).
    pub fn link_config(&self, link: LinkId) -> LinkConfig {
        self.core.links[link].cfg
    }

    /// Attach a trace schedule to a link (see [`Link::set_trace`]); a
    /// [`crate::link::TraceDriver`] agent must be added to advance it.
    pub fn set_link_trace(&mut self, link: LinkId, schedule: crate::link::TraceSchedule) {
        self.core.links[link].set_trace(schedule);
    }

    /// The link's trace-replay state, if it is trace-driven — lets the
    /// warm-pool regression tests prove a recycled link shell starts the
    /// next session with no stale schedule or mid-trace cursor.
    pub fn link_trace(&self, link: LinkId) -> Option<&crate::link::LinkTraceState> {
        self.core.links[link].trace.as_ref()
    }

    /// Typed view of an agent (e.g. to pull stats after a run).
    pub fn agent<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agents.get(id)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Typed mutable view of an agent.
    pub fn agent_mut<T: 'static>(&mut self, id: AgentId) -> Option<&mut T> {
        self.agents
            .get_mut(id)?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        start_agents(&mut self.agents, &mut self.core, &mut self.queue);
    }

    /// Run the event loop until simulated time `t_end` seconds (events at
    /// exactly `t_end` are processed).
    pub fn run_until(&mut self, t_end: f64) {
        self.ensure_started();
        let end_ns = secs_to_ns(t_end);
        while let Some((time_ns, _, event)) = self.queue.pop_next_at_or_before(end_ns) {
            self.core.now_ns = time_ns;
            self.core.events_processed += 1;
            let _step = laqa_obs::span!("engine.step");
            let timed = if laqa_obs::enabled() {
                laqa_obs::counter!("engine.events").inc();
                laqa_obs::histogram!(
                    "engine.queue_depth",
                    &[8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0]
                )
                .observe(self.queue.len() as f64);
                Some(std::time::Instant::now())
            } else {
                None
            };
            dispatch_event(&mut self.core, &mut self.agents, &mut self.queue, event);
            if let Some(t0) = timed {
                laqa_obs::histogram!("sched.dispatch_ns", laqa_obs::LOG_NS_BOUNDS)
                    .observe(t0.elapsed().as_nanos() as f64);
            }
        }
        self.core.now_ns = self.core.now_ns.max(end_ns);
    }
}

/// Run one agent callback with a freshly assembled [`Ctx`]. The agent box
/// is taken out of its slot for the duration of the call (so the agent
/// can schedule, send, and mutate links through `ctx` while borrowed) and
/// restored afterwards. Shared verbatim by solo worlds and the
/// megasession engine — this is what makes a multiplexed session's
/// dispatch bit-identical to an isolated one.
#[inline]
pub(crate) fn dispatch_agent(
    agents: &mut [Option<Box<dyn Agent>>],
    core: &mut SessionCore,
    queue: &mut EventQueue,
    id: AgentId,
    f: impl FnOnce(&mut dyn Agent, &mut Ctx),
) {
    let Some(slot) = agents.get_mut(id) else {
        return;
    };
    let Some(mut agent) = slot.take() else { return };
    {
        let mut ctx = Ctx {
            now: ns_to_secs(core.now_ns),
            agent_id: id,
            core,
            queue,
        };
        f(agent.as_mut(), &mut ctx);
    }
    agents[id] = Some(agent);
}

/// Call `start()` on every agent in slot order (the lazy-start sweep a
/// solo world runs on its first `run_until`; the megasession engine runs
/// the same sweep when a session's start offset comes due).
pub(crate) fn start_agents(
    agents: &mut Vec<Option<Box<dyn Agent>>>,
    core: &mut SessionCore,
    queue: &mut EventQueue,
) {
    for id in 0..agents.len() {
        dispatch_agent(agents, core, queue, id, |a, ctx| a.start(ctx));
    }
}

/// Process one engine [`Event`] against a session's state. `core.now_ns`
/// must already be set to the event's (session-local) time. Factored out
/// of [`World::run_until`] so the megasession engine dispatches the exact
/// same code path per event.
#[inline]
pub(crate) fn dispatch_event(
    core: &mut SessionCore,
    agents: &mut [Option<Box<dyn Agent>>],
    queue: &mut EventQueue,
    event: Event,
) {
    match event {
        Event::LinkDone { link } => {
            let (pkt, next_busy) = {
                let l = &mut core.links[link];
                let mut pkt = l.queue.pop_front().expect("busy link has head");
                l.stats.bytes_out += pkt.size as u64;
                pkt.advance_hop();
                let next = l.queue.front().map(|p| p.size);
                l.busy = next.is_some();
                (pkt, next)
            };
            let delay_ns = secs_to_ns(core.links[link].cfg.delay);
            let arrive = core.now_ns.saturating_add(delay_ns);
            queue.schedule(core.now_ns, arrive, Event::Arrive { pkt });
            if let Some(size) = next_busy {
                let bw = core.links[link].cfg.bandwidth;
                let done = core.now_ns.saturating_add(tx_time_ns(size, bw));
                queue.schedule(core.now_ns, done, Event::LinkDone { link });
            }
        }
        Event::Arrive { pkt } => {
            if pkt.at_destination() {
                let id = pkt.dst;
                dispatch_agent(agents, core, queue, id, |a, ctx| a.on_packet(ctx, pkt));
            } else {
                route_packet(core, queue, pkt);
            }
        }
        Event::Timer { agent, token } => {
            // Flight-record timer fires only (LinkDone/Arrive would swamp
            // the bounded rings at per-packet volume).
            if laqa_obs::flight::enabled() {
                laqa_obs::flight::instant("timer.fire", ns_to_secs(core.now_ns), token as f64);
            }
            dispatch_agent(agents, core, queue, agent, |a, ctx| a.on_timer(ctx, token));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketKind, Route};

    /// Test agent: sends `count` packets to `peer` at `interval`, records
    /// arrivals with timestamps.
    struct Pinger {
        peer: AgentId,
        route: Route,
        count: u32,
        interval: f64,
        sent: u32,
    }
    struct Sink {
        arrivals: Vec<(f64, u64)>,
    }

    impl Agent for Pinger {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_at(0.0, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            if self.sent >= self.count {
                return;
            }
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: 1,
                size: 1_000,
                kind: PacketKind::Cbr,
                dst: self.peer,
                route: self.route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
            self.sent += 1;
            ctx.set_timer_after(self.interval, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl Agent for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.arrivals.push((ctx.now, pkt.uid));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn packets_traverse_link_with_tx_plus_prop_delay() {
        let mut w = World::new(1);
        // 100 KB/s, 10 ms delay: a 1000 B packet takes 10 ms + 10 ms.
        let l = w.add_link(LinkConfig {
            bandwidth: 100_000.0,
            delay: 0.01,
            queue_packets: 100,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l].into(),
            count: 1,
            interval: 1.0,
            sent: 0,
        }));
        w.run_until(1.0);
        let s: &Sink = w.agent(sink).unwrap();
        assert_eq!(s.arrivals.len(), 1);
        assert!(
            (s.arrivals[0].0 - 0.02).abs() < 1e-9,
            "arrival {}",
            s.arrivals[0].0
        );
    }

    #[test]
    fn serialization_spaces_back_to_back_packets() {
        let mut w = World::new(1);
        let l = w.add_link(LinkConfig {
            bandwidth: 100_000.0,
            delay: 0.0,
            queue_packets: 100,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l].into(),
            count: 3,
            interval: 0.0, // all at t=0
            sent: 0,
        }));
        w.run_until(1.0);
        let s: &Sink = w.agent(sink).unwrap();
        assert_eq!(s.arrivals.len(), 3);
        // 10 ms serialization each: arrivals at 10, 20, 30 ms.
        for (i, &(t, _)) in s.arrivals.iter().enumerate() {
            assert!(
                (t - 0.01 * (i + 1) as f64).abs() < 1e-9,
                "arrival {i} at {t}"
            );
        }
    }

    #[test]
    fn queue_overflow_drops() {
        let mut w = World::new(1);
        let l = w.add_link(LinkConfig {
            bandwidth: 100_000.0,
            delay: 0.0,
            queue_packets: 1,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l].into(),
            count: 5,
            interval: 0.0,
            sent: 0,
        }));
        w.run_until(1.0);
        // 1 in service + 1 queued accepted; 3 dropped.
        assert_eq!(w.link_stats(l).dropped, 3);
        let s: &Sink = w.agent(sink).unwrap();
        assert_eq!(s.arrivals.len(), 2);
    }

    #[test]
    fn multi_hop_route() {
        let mut w = World::new(1);
        let l1 = w.add_link(LinkConfig {
            bandwidth: 1e6,
            delay: 0.005,
            queue_packets: 10,
            ..LinkConfig::default()
        });
        let l2 = w.add_link(LinkConfig {
            bandwidth: 1e6,
            delay: 0.005,
            queue_packets: 10,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l1, l2].into(),
            count: 1,
            interval: 1.0,
            sent: 0,
        }));
        w.run_until(1.0);
        let s: &Sink = w.agent(sink).unwrap();
        assert_eq!(s.arrivals.len(), 1);
        // 2 × (1 ms tx + 5 ms prop) = 12 ms.
        assert!((s.arrivals[0].0 - 0.012).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = World::new(42);
            let l = w.add_link(LinkConfig {
                bandwidth: 50_000.0,
                delay: 0.003,
                queue_packets: 3,
                ..LinkConfig::default()
            });
            let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
            let _ = w.add_agent(Box::new(Pinger {
                peer: sink,
                route: vec![l].into(),
                count: 50,
                interval: 0.013,
                sent: 0,
            }));
            w.run_until(2.0);
            w.agent::<Sink>(sink).unwrap().arrivals.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn direct_delivery_without_route() {
        let mut w = World::new(1);
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![].into(),
            count: 1,
            interval: 1.0,
            sent: 0,
        }));
        w.run_until(0.5);
        assert_eq!(w.agent::<Sink>(sink).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn time_advances_to_run_end() {
        let mut w = World::new(1);
        w.run_until(3.5);
        assert!((w.now() - 3.5).abs() < 1e-9);
    }

    /// Agent that rewrites a link's configuration when its timer fires.
    struct Mutator {
        link: LinkId,
        at: f64,
        bandwidth: f64,
        delay: f64,
        observed_before: Option<LinkConfig>,
    }

    impl Agent for Mutator {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_at(self.at, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            self.observed_before = Some(ctx.link_config(self.link));
            ctx.set_link_bandwidth(self.link, self.bandwidth);
            ctx.set_link_delay(self.link, self.delay);
            ctx.set_link_loss_rate(self.link, 2.0); // clamps to 1.0
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn runtime_link_mutation_applies_to_later_packets() {
        let mut w = World::new(1);
        let l = w.add_link(LinkConfig {
            bandwidth: 100_000.0,
            delay: 0.01,
            queue_packets: 100,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        // One packet at t=0 (old config: 10 ms tx + 10 ms prop = 0.020),
        // one at t=0.1 — after the mutator halves bandwidth and grows the
        // delay, so it takes 20 ms tx + 50 ms prop = arrival at 0.170...
        // except loss_rate is now 1.0, so it never arrives at all.
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l].into(),
            count: 2,
            interval: 0.1,
            sent: 0,
        }));
        let m = w.add_agent(Box::new(Mutator {
            link: l,
            at: 0.05,
            bandwidth: 50_000.0,
            delay: 0.05,
            observed_before: None,
        }));
        w.run_until(1.0);
        let s: &Sink = w.agent(sink).unwrap();
        assert_eq!(s.arrivals.len(), 1, "second packet randomly lost");
        assert!((s.arrivals[0].0 - 0.02).abs() < 1e-9);
        assert_eq!(w.link_stats(l).random_losses, 1);
        let cfg = w.link_config(l);
        assert_eq!(cfg.bandwidth, 50_000.0);
        assert_eq!(cfg.delay, 0.05);
        assert_eq!(cfg.loss_rate, 1.0, "loss rate clamped to 1");
        let m: &Mutator = w.agent(m).unwrap();
        let before = m.observed_before.expect("mutator ran");
        assert_eq!(before.bandwidth, 100_000.0, "pre-mutation view intact");
    }
}
