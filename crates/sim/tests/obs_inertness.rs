//! Observability must be inert: enabling `laqa-obs` instrumentation may
//! not change a single bit of any campaign fingerprint. This is the
//! in-tree half of the contract; `scripts/verify.sh` step 5 checks the
//! same property end-to-end through the `campaign --obs` CLI.
//!
//! One test function on purpose: the obs enabled flag and registries are
//! process-global, and a single test body is the only way to guarantee
//! the off-run really executes with obs off.

use laqa_sim::{run_campaign, CampaignSpec, TestKind};

#[test]
fn fingerprints_identical_with_obs_on_and_off() {
    // 8 s per session: the QA flow joins at t = 5 s (ScenarioConfig
    // default), so anything shorter never exercises the qa.* sites.
    let spec = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &[7, 21], 8.0);

    // Reference sweep with observability off (the default).
    assert!(!laqa_obs::enabled(), "obs must start disabled");
    let off = run_campaign(&spec, 2);
    let off_snapshot = laqa_obs::snapshot();
    assert!(
        off_snapshot.is_empty(),
        "disabled instrumentation recorded state: {off_snapshot:?}"
    );

    // Same sweep with every instrumentation site live.
    laqa_obs::reset();
    laqa_obs::set_enabled(true);
    let on = run_campaign(&spec, 2);
    laqa_obs::set_enabled(false);
    let snap = laqa_obs::snapshot();

    assert_eq!(
        off.fingerprint(),
        on.fingerprint(),
        "enabling obs changed the campaign fingerprint"
    );

    // The enabled run must actually have gone through the instrumented
    // paths — otherwise this test would pass vacuously.
    assert!(snap.counter("qa.ticks").unwrap_or(0) > 0, "no qa.ticks");
    assert!(
        snap.counter("engine.events").unwrap_or(0) > 0,
        "no engine.events"
    );
    assert_eq!(
        snap.counter("campaign.sessions"),
        Some(spec.len() as u64),
        "one campaign.sessions increment per session"
    );
    assert!(
        snap.span("engine.step").map_or(0, |s| s.count) > 0,
        "no engine.step spans"
    );
    assert!(!snap.events.is_empty(), "no events logged");

    // Per-session metrics are deterministic even though wall time is not.
    for (a, b) in off.sessions.iter().zip(on.sessions.iter()) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(
            a.events_processed, b.events_processed,
            "event count diverged for {:?}",
            a.spec
        );
    }
}
