//! Integration: RAP sender + QA controller co-driving over a scripted
//! lossy path (no simulator, no sockets) — checks the protocol/controller
//! contract directly.

use laqa_core::{QaConfig, QaController};
use laqa_rap::{RapConfig, RapEvent, RapReceiverState, RapSender};

/// A scripted path: constant one-way delay, drops every `loss_period`-th
/// packet. Returns (controller, sender, receiver-side delivered bytes per
/// layer).
fn run_path(loss_period: u64, duration: f64) -> (QaController, RapSender, Vec<f64>) {
    let rap_cfg = RapConfig {
        packet_size: 500.0,
        initial_rate: 5_000.0,
        initial_rtt: 0.1,
        max_rate: 80_000.0,
        ..RapConfig::default()
    };
    let qa_cfg = QaConfig {
        layer_rate: 5_000.0,
        max_layers: 8,
        k_max: 2,
        underflow_slack_bytes: 2_000.0,
        ..QaConfig::default()
    };
    let mut rap = RapSender::new(rap_cfg, 0.0);
    let mut qa = QaController::new(qa_cfg).unwrap();
    let mut rx = RapReceiverState::new();
    let mut delivered = vec![0.0f64; 8];

    let owd = 0.03;
    let dt = 0.05;
    let mut next_tick = 0.0;
    let mut now: f64 = 0.0;
    // (arrival_time, seq, layer, size) in flight toward the receiver.
    let mut pipe: Vec<(f64, u64, usize, f64)> = Vec::new();
    // (arrival_time, ack) on the way back.
    let mut acks: Vec<(f64, laqa_rap::AckInfo)> = Vec::new();

    while now < duration {
        rap.poll_timers(now);
        // Deliver data to the "receiver".
        while let Some(&(t, seq, layer, size)) = pipe.first() {
            if t > now {
                break;
            }
            pipe.remove(0);
            delivered[layer] += size;
            acks.push((t + owd, rx.on_data(seq)));
        }
        // Deliver ACKs to the sender.
        while let Some(&(t, info)) = acks.first() {
            if t > now {
                break;
            }
            acks.remove(0);
            rap.on_ack(now, info);
        }
        for e in rap.take_events() {
            match e {
                RapEvent::Backoff { rate, .. } => qa.on_backoff(now, rate),
                RapEvent::PacketAcked { size, tag, .. } => {
                    qa.on_packet_delivered(tag as usize, size)
                }
                _ => {}
            }
        }
        if now >= next_tick {
            qa.set_slope(rap.slope());
            let _ = qa.tick(now, rap.rate(), dt);
            next_tick += dt;
        }
        if now >= rap.next_send_time() {
            let layer = qa.next_packet_layer(500.0);
            let seq = rap.register_send(now, 500.0, layer as u32);
            if loss_period == 0 || seq % loss_period != loss_period - 1 {
                pipe.push((now + owd, seq, layer, 500.0));
            }
        }
        now += 0.001;
    }
    (qa, rap, delivered)
}

#[test]
fn lossless_path_reaches_max_quality() {
    let (qa, rap, delivered) = run_path(0, 20.0);
    assert_eq!(qa.n_active(), 8, "no loss, capped rate covers all layers");
    assert!(rap.rate() >= 40_000.0);
    // Every active layer actually received data.
    assert!(delivered.iter().take(qa.n_active()).all(|&d| d > 0.0));
    assert_eq!(qa.metrics().stalls(), 0);
}

#[test]
fn periodic_loss_settles_below_max() {
    let (qa, _rap, _) = run_path(10, 30.0);
    // With a loss every 10 packets the AIMD equilibrium rate sits well
    // below the full encoding rate; quality must settle strictly below the
    // encoding maximum but above the base layer.
    assert!(qa.n_active() >= 2, "got {}", qa.n_active());
    assert!(qa.n_active() < 8, "got {}", qa.n_active());
    assert_eq!(qa.metrics().stalls(), 0);
}

#[test]
fn heavier_loss_means_lower_quality() {
    let (qa_light, ..) = run_path(30, 30.0);
    let (qa_heavy, ..) = run_path(8, 30.0);
    assert!(
        qa_heavy.n_active() <= qa_light.n_active(),
        "heavy loss {} vs light loss {}",
        qa_heavy.n_active(),
        qa_light.n_active()
    );
}

#[test]
fn slope_feeds_through_from_rtt() {
    let (_, rap, _) = run_path(0, 10.0);
    // SRTT should have converged near the scripted 60 ms RTT; slope is
    // pkt/srtt².
    let srtt = rap.srtt();
    assert!((0.05..0.12).contains(&srtt), "srtt {srtt}");
    let expect = 500.0 / (srtt * srtt);
    assert!((rap.slope() - expect).abs() < 1e-6);
}
