//! Deficit-triangle geometry of the AIMD sawtooth (paper §2, Appendix A).
//!
//! # The draining triangle
//!
//! An AIMD congestion-controlled flow transmits at rate `R`; when a packet
//! loss is detected the rate is halved and then recovers linearly with slope
//! `S` (bytes/s²). While the transmission rate is below the aggregate
//! consumption rate `n_a·C` of the active layers, the difference — the
//! *deficit* — must be supplied from the receiver's buffers (figure 3).
//!
//! With `d₀ = n_a·C − R/2` the deficit at the instant of the backoff, the
//! deficit shrinks linearly, `d(t) = d₀ − S·t`, and reaches zero after
//! `T = d₀/S` seconds. The total buffer needed to survive the backoff is the
//! area of the triangle (paper equation (1) / Appendix A.1):
//!
//! ```text
//! Buf_req = d₀² / (2·S)
//! ```
//!
//! # Optimal per-layer bands (§2.4, figure 4)
//!
//! At time `t` into the draining phase the network supplies `r(t) = R/2 +
//! S·t` bytes/s. Maximal efficiency allocates the network supply to the
//! *highest* layers (which should hold the least buffer) and serves the
//! *lowest* layers from buffer. Stacking the layers with the base layer at
//! the bottom — layer `i` occupying the bandwidth band `[i·C, (i+1)·C)` —
//! the buffers must cover the bottom `d(t)` of the stack. Layer `i`
//! therefore drains at rate `clamp(d(t) − i·C, 0, C)` and its total drain is
//! the area of the horizontal band of the triangle between heights `i·C`
//! and `(i+1)·C`:
//!
//! * full band (`(i+1)·C ≤ d₀`):  `Buf_i = C·(d₀ − (i+1)·C)/S + C²/(2S)`
//! * top partial band (`i·C < d₀ < (i+1)·C`): `Buf_i = (d₀ − i·C)²/(2S)`
//! * above the triangle (`i·C ≥ d₀`): `Buf_i = 0`
//!
//! The number of layers with a non-zero band is `n_b = ceil(d₀/C)` (§2.4's
//! "minimum number of buffering layers"). The bands sum exactly to the
//! triangle area; this invariant is enforced by tests and property tests.
//!
//! The same band construction on the *one-backoff-larger* deficit gives the
//! §2.1 adding condition, and on a `k`-backoff deficit gives the Scenario 1
//! allocations of §4 (see [`crate::scenario`]).

/// Instantaneous deficit `max(0, consumption − rate)` in bytes/s.
///
/// `consumption` is the aggregate consumption rate `n_a·C` of the active
/// layers and `rate` the current transmission rate.
pub fn deficit(consumption: f64, rate: f64) -> f64 {
    (consumption - rate).max(0.0)
}

/// Area of the draining triangle: buffer (bytes) needed to bridge a deficit
/// of `deficit_rate` bytes/s that shrinks linearly with slope `slope`
/// (bytes/s²). Returns 0 when there is no deficit.
///
/// This is the paper's equation (1): `A = L_ce² / (2S)`.
pub fn triangle_area(deficit_rate: f64, slope: f64) -> f64 {
    debug_assert!(slope > 0.0, "slope must be positive, got {slope}");
    if deficit_rate <= 0.0 {
        return 0.0;
    }
    deficit_rate * deficit_rate / (2.0 * slope)
}

/// Buffer required to survive a single backoff from transmission rate
/// `rate_at_backoff` while playing `consumption` bytes/s (§2.1 condition 2,
/// with the post-backoff rate `rate_at_backoff/2`).
///
/// Equivalent to [`recovery_buffer_with`] at the paper's AIMD halving
/// factor `0.5` (bit-identical: `x / 2.0 ≡ x * 0.5` for every f64).
pub fn recovery_buffer(consumption: f64, rate_at_backoff: f64, slope: f64) -> f64 {
    recovery_buffer_with(consumption, rate_at_backoff, slope, 0.5)
}

/// [`recovery_buffer`] generalized to an arbitrary multiplicative decrease
/// factor: a backoff from `rate_at_backoff` lands at
/// `rate_at_backoff · decrease_factor` (gentler controllers use factors
/// above ½, so they leave a smaller deficit and need less buffer).
pub fn recovery_buffer_with(
    consumption: f64,
    rate_at_backoff: f64,
    slope: f64,
    decrease_factor: f64,
) -> f64 {
    debug_assert!(
        decrease_factor > 0.0 && decrease_factor < 1.0,
        "decrease_factor must be in (0,1), got {decrease_factor}"
    );
    triangle_area(deficit(consumption, rate_at_backoff * decrease_factor), slope)
}

/// Number of *buffering layers* `n_b = ceil(d₀/C)`: how many of the lowest
/// layers must hold buffered data to absorb a deficit of `deficit_rate`
/// when no layer's buffer can drain faster than its consumption rate
/// `layer_rate` (§2.4).
pub fn buffering_layer_count(deficit_rate: f64, layer_rate: f64) -> usize {
    debug_assert!(layer_rate > 0.0);
    if deficit_rate <= 0.0 {
        return 0;
    }
    (deficit_rate / layer_rate).ceil() as usize
}

/// Maximally efficient per-layer buffer shares for a deficit triangle.
///
/// Returns a vector of length `n_layers`; entry `i` is the optimal number of
/// bytes buffered for layer `i` (layer 0 = base). Layers at or above the
/// deficit get zero. The shares sum to [`triangle_area`] of the deficit
/// (up to floating-point rounding), except when `n_layers` is too small to
/// absorb the whole deficit — then the uncoverable top of the triangle is
/// credited to the base layer so the total protection is preserved (this can
/// only happen when the caller asks for fewer layers than `n_b`, e.g. when a
/// drop decision is being evaluated).
pub fn band_allocation(
    deficit_rate: f64,
    layer_rate: f64,
    slope: f64,
    n_layers: usize,
) -> Vec<f64> {
    let mut shares = Vec::new();
    band_allocation_into(deficit_rate, layer_rate, slope, n_layers, &mut shares);
    shares
}

/// [`band_allocation`] writing into a caller-provided buffer, so hot paths
/// (the per-tick state-sequence rebuild) can recycle allocations. `shares`
/// is cleared and resized to `n_layers`; values are identical to the
/// allocating variant.
pub fn band_allocation_into(
    deficit_rate: f64,
    layer_rate: f64,
    slope: f64,
    n_layers: usize,
    shares: &mut Vec<f64>,
) {
    debug_assert!(layer_rate > 0.0 && slope > 0.0);
    shares.clear();
    shares.resize(n_layers, 0.0);
    if deficit_rate <= 0.0 || n_layers == 0 {
        return;
    }
    let c = layer_rate;
    let d0 = deficit_rate;
    let n_b = buffering_layer_count(d0, c);
    let covered = n_b.min(n_layers);
    for (i, share) in shares.iter_mut().enumerate().take(covered) {
        let lo = i as f64 * c;
        let hi = (i + 1) as f64 * c;
        *share = if hi <= d0 {
            // Full band: rectangle while d(t) >= hi, plus the C²/(2S) wedge
            // while the deficit sweeps through the band.
            c * (d0 - hi) / slope + c * c / (2.0 * slope)
        } else {
            // Top partial band: residual triangle above i·C.
            let h = d0 - lo;
            h * h / (2.0 * slope)
        };
    }
    if n_b > n_layers {
        // The deficit extends above the available layers; fold the excess
        // area into the base layer so the total still covers the triangle.
        let total: f64 = shares.iter().sum();
        let missing = triangle_area(d0, slope) - total;
        if missing > 0.0 {
            shares[0] += missing;
        }
    }
}

/// Per-layer *drain rates* at a given instant of the draining phase, under
/// the maximally efficient pattern (network feeds the top of the layer
/// stack, buffers feed the bottom `d` of it).
///
/// `deficit_rate` is the instantaneous deficit `n_a·C − r(t)`; the result
/// has length `n_layers` and sums to `min(deficit_rate, n_layers·C)`.
pub fn band_drain_rates(deficit_rate: f64, layer_rate: f64, n_layers: usize) -> Vec<f64> {
    let mut rates = vec![0.0; n_layers];
    if deficit_rate <= 0.0 {
        return rates;
    }
    let c = layer_rate;
    for (i, rate) in rates.iter_mut().enumerate() {
        let lo = i as f64 * c;
        *rate = (deficit_rate - lo).clamp(0.0, c);
    }
    rates
}

/// Solve the §2.2 drop rule: the largest number of layers `n` (`0 ≤ n ≤
/// n_active`) that the currently buffered total can carry through recovery
/// from the current (post-backoff) rate.
///
/// The rule in the paper iterates `WHILE n_a·C − R > sqrt(2·S·Σbuf) DO
/// n_a -= 1`; this returns the fixed point directly. The base layer is never
/// counted out: the result is at least 1 when `n_active >= 1` (the paper
/// sends the base layer unconditionally).
pub fn sustainable_layers(
    n_active: usize,
    layer_rate: f64,
    current_rate: f64,
    slope: f64,
    total_buffer: f64,
) -> usize {
    debug_assert!(layer_rate > 0.0 && slope > 0.0);
    if n_active <= 1 {
        return n_active;
    }
    let absorbable = (2.0 * slope * total_buffer.max(0.0)).sqrt();
    let mut n = n_active;
    while n > 1 {
        let deficit = n as f64 * layer_rate - current_rate;
        if deficit <= absorbable {
            break;
        }
        n -= 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 10_000.0; // 10 KB/s, the paper's per-layer rate
    const S: f64 = 25_000.0; // bytes/s² (1 KB packet, 200 ms SRTT → PS/SRTT²)

    #[test]
    fn deficit_is_zero_when_rate_covers_consumption() {
        assert_eq!(deficit(30_000.0, 40_000.0), 0.0);
        assert_eq!(deficit(30_000.0, 30_000.0), 0.0);
    }

    #[test]
    fn deficit_positive_when_rate_below_consumption() {
        assert_eq!(deficit(30_000.0, 20_000.0), 10_000.0);
    }

    #[test]
    fn triangle_area_matches_hand_computation() {
        // d0 = 20 KB/s, S = 25 KB/s² → T = 0.8 s, area = 20_000 * 0.8 / 2 = 8000 B
        let area = triangle_area(20_000.0, S);
        assert!((area - 8_000.0).abs() < 1e-6, "area = {area}");
    }

    #[test]
    fn triangle_area_zero_for_no_deficit() {
        assert_eq!(triangle_area(0.0, S), 0.0);
        assert_eq!(triangle_area(-5.0, S), 0.0);
    }

    #[test]
    fn recovery_buffer_uses_halved_rate() {
        // 3 layers * 10 KB/s = 30 KB/s consumption; backoff from 40 KB/s
        // leaves 20 KB/s → deficit 10 KB/s → area 10_000²/(2*25_000) = 2000 B.
        let b = recovery_buffer(30_000.0, 40_000.0, S);
        assert!((b - 2_000.0).abs() < 1e-6, "b = {b}");
    }

    #[test]
    fn recovery_buffer_zero_when_half_rate_still_sufficient() {
        assert_eq!(recovery_buffer(30_000.0, 80_000.0, S), 0.0);
    }

    #[test]
    fn buffering_layer_count_matches_ceil() {
        assert_eq!(buffering_layer_count(0.0, C), 0);
        assert_eq!(buffering_layer_count(5_000.0, C), 1);
        assert_eq!(buffering_layer_count(10_000.0, C), 1);
        assert_eq!(buffering_layer_count(10_001.0, C), 2);
        assert_eq!(buffering_layer_count(25_000.0, C), 3);
    }

    #[test]
    fn bands_sum_to_triangle_area() {
        for &d0 in &[1_000.0, 9_999.0, 10_000.0, 15_000.0, 25_000.0, 40_000.0] {
            let shares = band_allocation(d0, C, S, 8);
            let total: f64 = shares.iter().sum();
            let area = triangle_area(d0, S);
            assert!(
                (total - area).abs() < 1e-6 * area.max(1.0),
                "d0={d0}: sum {total} != area {area}"
            );
        }
    }

    #[test]
    fn base_layer_gets_largest_band() {
        let shares = band_allocation(25_000.0, C, S, 5);
        for w in shares.windows(2) {
            assert!(w[0] >= w[1], "shares must be non-increasing: {shares:?}");
        }
        assert!(shares[0] > 0.0);
    }

    #[test]
    fn layers_above_deficit_get_nothing() {
        let shares = band_allocation(15_000.0, C, S, 5);
        assert!(shares[0] > 0.0);
        assert!(shares[1] > 0.0);
        assert_eq!(shares[2], 0.0);
        assert_eq!(shares[3], 0.0);
    }

    #[test]
    fn truncated_layer_count_folds_excess_into_base() {
        // Deficit spans 3 bands but only 2 layers exist: total protection
        // must still equal the triangle area.
        let d0 = 25_000.0;
        let shares = band_allocation(d0, C, S, 2);
        let total: f64 = shares.iter().sum();
        let area = triangle_area(d0, S);
        assert!((total - area).abs() < 1e-6 * area);
    }

    #[test]
    fn full_band_formula_matches_integral() {
        // Numerically integrate the band overlap and compare.
        let d0 = 27_500.0;
        let shares = band_allocation(d0, C, S, 6);
        let t_end = d0 / S;
        let steps = 200_000;
        let dt = t_end / steps as f64;
        for (i, &share) in shares.iter().enumerate() {
            let mut acc = 0.0;
            for k in 0..steps {
                let t = (k as f64 + 0.5) * dt;
                let d = d0 - S * t;
                acc += (d - i as f64 * C).clamp(0.0, C) * dt;
            }
            assert!(
                (acc - share).abs() < 1.0,
                "layer {i}: integral {acc} vs closed form {share}"
            );
        }
    }

    #[test]
    fn drain_rates_cover_deficit() {
        let rates = band_drain_rates(23_000.0, C, 5);
        let total: f64 = rates.iter().sum();
        assert!((total - 23_000.0).abs() < 1e-9);
        assert_eq!(rates[0], C);
        assert_eq!(rates[1], C);
        assert!((rates[2] - 3_000.0).abs() < 1e-9);
        assert_eq!(rates[3], 0.0);
    }

    #[test]
    fn drain_rates_saturate_at_all_layers() {
        // Deficit larger than the whole stack: every layer drains at C.
        let rates = band_drain_rates(100_000.0, C, 3);
        assert_eq!(rates, vec![C, C, C]);
    }

    #[test]
    fn sustainable_layers_keeps_all_with_ample_buffer() {
        // 4 layers, rate 20 KB/s → deficit 20 KB/s needs 8000 B.
        assert_eq!(sustainable_layers(4, C, 20_000.0, S, 9_000.0), 4);
    }

    #[test]
    fn sustainable_layers_drops_until_deficit_absorbable() {
        // With no buffer the flow can only keep layers covered by the rate:
        // rate 20 KB/s covers exactly 2 layers.
        assert_eq!(sustainable_layers(4, C, 20_000.0, S, 0.0), 2);
    }

    #[test]
    fn sustainable_layers_never_drops_base() {
        assert_eq!(sustainable_layers(3, C, 0.0, S, 0.0), 1);
        assert_eq!(sustainable_layers(1, C, 0.0, S, 0.0), 1);
        assert_eq!(sustainable_layers(0, C, 0.0, S, 0.0), 0);
    }

    #[test]
    fn recovery_buffer_with_half_is_bit_identical() {
        for &consumption in &[0.0, 10_000.0, 30_000.0, 55_000.0, 123_456.789] {
            for &rate in &[0.0, 7_000.0, 20_000.0, 40_000.0, 99_999.25] {
                let old = recovery_buffer(consumption, rate, S);
                let new = recovery_buffer_with(consumption, rate, S, 0.5);
                assert_eq!(
                    old.to_bits(),
                    new.to_bits(),
                    "c={consumption} r={rate}: {old} vs {new}"
                );
            }
        }
    }

    #[test]
    fn gentler_decrease_factor_needs_less_recovery_buffer() {
        // A 0.85 backoff from 40 KB/s lands at 34 KB/s (deficit 0 for 3
        // layers); 0.7 lands at 28 KB/s (deficit 2 KB/s); 0.5 at 20 KB/s
        // (deficit 10 KB/s). Requirement must fall monotonically in f.
        let b50 = recovery_buffer_with(30_000.0, 40_000.0, S, 0.5);
        let b70 = recovery_buffer_with(30_000.0, 40_000.0, S, 0.7);
        let b85 = recovery_buffer_with(30_000.0, 40_000.0, S, 0.85);
        assert!(b50 > b70, "{b50} vs {b70}");
        assert!(b70 > b85, "{b70} vs {b85}");
        assert!((b70 - 2_000.0f64.powi(2) / (2.0 * S)).abs() < 1e-9);
        assert_eq!(b85, 0.0, "34 KB/s covers 30 KB/s consumption");
    }

    #[test]
    fn factor_derived_bands_keep_base_largest_and_strand_nothing() {
        // The satellite invariant: for deficits produced by non-half
        // backoffs, the optimal allocation still puts the largest band in
        // the base layer (non-increasing shares) and puts *nothing* in the
        // layers above the deficit — exactly the layers the §2.2 drop rule
        // sheds first, so a drop strands no buffered data.
        for &f in &[0.7, 0.85] {
            for n in 2..=6usize {
                let rate = n as f64 * C * 1.3;
                let d0 = deficit(n as f64 * C, rate * f);
                let shares = band_allocation(d0, C, S, n);
                for w in shares.windows(2) {
                    assert!(w[0] >= w[1], "f={f} n={n}: {shares:?}");
                }
                for (i, &s) in shares.iter().enumerate() {
                    if i as f64 * C >= d0 {
                        assert_eq!(s, 0.0, "f={f} n={n} layer {i} stranded: {shares:?}");
                    }
                }
                let total: f64 = shares.iter().sum();
                let area = triangle_area(d0, S);
                assert!((total - area).abs() < 1e-6 * area.max(1.0));
            }
        }
    }

    #[test]
    fn sustainable_layers_matches_paper_while_loop() {
        // Cross-check against a literal transcription of the §2.2 loop.
        for n_active in 1..=8usize {
            for &rate in &[5_000.0, 15_000.0, 33_000.0, 79_000.0] {
                for &buf in &[0.0, 500.0, 2_000.0, 10_000.0, 50_000.0] {
                    let absorbable = (2.0 * S * buf).sqrt();
                    let mut n = n_active;
                    while n > 1 && (n as f64 * C - rate) > absorbable {
                        n -= 1;
                    }
                    assert_eq!(
                        sustainable_layers(n_active, C, rate, S, buf),
                        n,
                        "n_active={n_active} rate={rate} buf={buf}"
                    );
                }
            }
        }
    }
}
