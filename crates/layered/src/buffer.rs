//! Per-layer receiver buffer.
//!
//! The receiver holds arrived-but-not-yet-played data per layer (figure 2's
//! horizontal arrival→playout bars). The quality-adaptation analysis only
//! needs byte counts, but the buffer also tracks arrival metadata so the
//! experiments can reconstruct the paper's figure-2 playout diagram and
//! measure actual (not estimated) occupancy.

use std::collections::VecDeque;

/// One buffered chunk (usually one packet's payload).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferedChunk {
    /// Arrival time at the receiver (seconds).
    pub arrival: f64,
    /// Bytes in the chunk.
    pub bytes: f64,
}

/// FIFO byte buffer for one layer.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerBuffer {
    chunks: VecDeque<BufferedChunk>,
    buffered: f64,
    /// Cumulative bytes that were demanded but missing (underflow volume).
    starved: f64,
    /// Number of distinct consume calls that hit an empty/short buffer.
    underflow_events: u64,
    /// Cumulative bytes thrown away by [`LayerBuffer::clear`] — data that
    /// arrived but was written off when its layer was dropped. Without this
    /// the efficiency/starvation summaries under-report loss.
    discarded: f64,
}

impl LayerBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `bytes` that arrived at time `arrival`.
    pub fn push(&mut self, arrival: f64, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        self.chunks.push_back(BufferedChunk { arrival, bytes });
        self.buffered += bytes;
        self.debug_check_invariant();
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> f64 {
        self.buffered
    }

    /// Total bytes that could not be supplied on demand.
    pub fn starved_bytes(&self) -> f64 {
        self.starved
    }

    /// Number of consume calls that found insufficient data.
    pub fn underflow_events(&self) -> u64 {
        self.underflow_events
    }

    /// Cumulative bytes discarded by [`LayerBuffer::clear`].
    pub fn discarded_bytes(&self) -> f64 {
        self.discarded
    }

    /// Arrival time of the oldest buffered chunk, if any.
    pub fn oldest_arrival(&self) -> Option<f64> {
        self.chunks.front().map(|c| c.arrival)
    }

    /// Consume up to `bytes` from the head of the buffer; returns the bytes
    /// actually supplied. A short supply is recorded as an underflow.
    pub fn consume(&mut self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let mut remaining = bytes;
        while remaining > 0.0 {
            match self.chunks.front_mut() {
                None => break,
                Some(chunk) => {
                    if chunk.bytes > remaining {
                        chunk.bytes -= remaining;
                        self.buffered -= remaining;
                        remaining = 0.0;
                    } else {
                        remaining -= chunk.bytes;
                        self.buffered -= chunk.bytes;
                        self.chunks.pop_front();
                    }
                }
            }
        }
        // `buffered` is maintained by repeated subtraction and can drift a
        // few ULPs from the chunk sum over long runs — clamp so it can
        // never go (or report) negative, and resynchronize exactly when
        // the buffer empties.
        if self.chunks.is_empty() || self.buffered < 0.0 {
            self.buffered = 0.0;
        }
        self.debug_check_invariant();
        if remaining > 1e-9 {
            self.starved += remaining;
            self.underflow_events += 1;
        }
        bytes - remaining
    }

    /// Discard everything (e.g. when the layer is dropped and its data is
    /// written off for recovery purposes). The thrown-away bytes are
    /// accounted in [`LayerBuffer::discarded_bytes`]; returns the amount
    /// discarded by this call.
    pub fn clear(&mut self) -> f64 {
        let dropped = self.buffered.max(0.0);
        self.discarded += dropped;
        self.chunks.clear();
        self.buffered = 0.0;
        dropped
    }

    /// Debug-build invariant: `buffered` tracks the chunk sum.
    #[inline]
    fn debug_check_invariant(&self) {
        #[cfg(debug_assertions)]
        {
            let sum: f64 = self.chunks.iter().map(|c| c.bytes).sum();
            debug_assert!(
                (self.buffered - sum).abs() <= 1e-6 * sum.max(1.0),
                "buffered {} drifted from chunk sum {}",
                self.buffered,
                sum
            );
            debug_assert!(self.buffered >= 0.0, "buffered went negative");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_consume_round_trip() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 1_000.0);
        b.push(0.1, 500.0);
        assert_eq!(b.buffered(), 1_500.0);
        assert_eq!(b.consume(600.0), 600.0);
        assert_eq!(b.buffered(), 900.0);
        assert_eq!(b.underflow_events(), 0);
    }

    #[test]
    fn consume_across_chunk_boundaries() {
        let mut b = LayerBuffer::new();
        for i in 0..10 {
            b.push(i as f64, 100.0);
        }
        assert_eq!(b.consume(950.0), 950.0);
        assert!((b.buffered() - 50.0).abs() < 1e-9);
        assert_eq!(b.oldest_arrival(), Some(9.0));
    }

    #[test]
    fn underflow_recorded_once_per_call() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 100.0);
        assert_eq!(b.consume(250.0), 100.0);
        assert_eq!(b.underflow_events(), 1);
        assert_eq!(b.starved_bytes(), 150.0);
        assert_eq!(b.buffered(), 0.0);
    }

    #[test]
    fn zero_and_negative_ops_are_noops() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 0.0);
        b.push(0.0, -5.0);
        assert_eq!(b.buffered(), 0.0);
        assert_eq!(b.consume(0.0), 0.0);
        assert_eq!(b.consume(-1.0), 0.0);
        assert_eq!(b.underflow_events(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 100.0);
        b.consume(200.0);
        b.push(1.0, 300.0);
        b.clear();
        assert_eq!(b.buffered(), 0.0);
        assert_eq!(b.underflow_events(), 1);
        assert_eq!(b.oldest_arrival(), None);
    }

    #[test]
    fn clear_accounts_discarded_bytes() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 400.0);
        b.push(0.1, 100.0);
        b.consume(150.0);
        assert_eq!(b.clear(), 350.0);
        assert_eq!(b.discarded_bytes(), 350.0);
        // A second clear of an empty buffer discards nothing more.
        assert_eq!(b.clear(), 0.0);
        assert_eq!(b.discarded_bytes(), 350.0);
        // Discards accumulate across drop episodes.
        b.push(1.0, 25.0);
        b.clear();
        assert_eq!(b.discarded_bytes(), 375.0);
    }

    #[test]
    fn long_randomized_run_never_drifts_negative() {
        // Awkward non-dyadic sizes maximize float drift; after hundreds of
        // thousands of push/consume rounds the running total must still
        // match the chunk sum and never report negative.
        let mut b = LayerBuffer::new();
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rand = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64
        };
        for i in 0..200_000 {
            let r = rand();
            if r < 0.5 {
                b.push(i as f64, 0.1 + 1_000.0 * rand() / 3.0);
            } else {
                // Often drain exactly to (or past) empty.
                let want = if r < 0.6 {
                    b.buffered() + 1.0
                } else {
                    b.buffered() * rand() / 7.0
                };
                b.consume(want);
            }
            assert!(b.buffered() >= 0.0, "buffered negative at op {i}");
        }
        b.consume(b.buffered() + 1.0);
        assert_eq!(b.buffered(), 0.0, "empty buffer must report exactly zero");
    }
}
