//! Tiny dependency-free argument parsing for the `laqa` CLI binary.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Args {
    /// First positional argument.
    pub command: String,
    /// `--key value` pairs; bare `--flag`s map to `"true"`.
    pub options: BTreeMap<String, String>,
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A positional argument appeared after options.
    UnexpectedPositional(String),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
            ArgError::BadValue { key, value } => {
                write!(f, "invalid value '{value}' for --{key}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut iter = args.into_iter().peekable();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                options.insert(key.to_string(), value);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(Args { command, options })
    }

    /// Typed option lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(|v| v == "true").unwrap_or(false)
    }

    /// Comma-separated typed list option (e.g. `--seeds 7,21,35`), falling
    /// back to `default` when absent. Empty segments are rejected.
    pub fn get_list<T>(&self, key: &str, default: &[T]) -> Result<Vec<T>, ArgError>
    where
        T: std::str::FromStr + Clone,
    {
        match self.options.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim().parse().map_err(|_| ArgError::BadValue {
                        key: key.to_string(),
                        value: v.clone(),
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("sim --test t2 --kmax 4 --red").unwrap();
        assert_eq!(a.command, "sim");
        assert_eq!(a.get::<String>("test", "t1".into()).unwrap(), "t2");
        assert_eq!(a.get::<u32>("kmax", 2).unwrap(), 4);
        assert!(a.flag("red"));
        assert!(!a.flag("loss"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("sim").unwrap();
        assert_eq!(a.get::<f64>("duration", 30.0).unwrap(), 30.0);
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
        assert_eq!(parse("--kmax 2").unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn rejects_bad_value() {
        let a = parse("sim --kmax banana").unwrap();
        assert!(matches!(
            a.get::<u32>("kmax", 2),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn rejects_stray_positional() {
        assert!(matches!(
            parse("sim extra"),
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn parses_comma_lists_with_default() {
        let a = parse("run --seeds 7,21,35").unwrap();
        assert_eq!(a.get_list::<u64>("seeds", &[1]).unwrap(), vec![7, 21, 35]);
        assert_eq!(a.get_list::<u64>("absent", &[1, 2]).unwrap(), vec![1, 2]);
        let a = parse("run --seeds 7,,9").unwrap();
        assert!(a.get_list::<u64>("seeds", &[]).is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("net --verbose --rate 100").unwrap();
        assert!(a.flag("verbose"));
        assert_eq!(a.get::<f64>("rate", 0.0).unwrap(), 100.0);
    }
}
