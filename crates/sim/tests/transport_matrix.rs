//! QA × transport interop matrix acceptance tests.
//!
//! The quality-adaptation machine is generic over [`laqa_rap::RateController`];
//! these tests pin the contract of the `transport` campaign axis that runs
//! the paper's workloads under RAP, a BBR-style delivery-rate controller, a
//! NADA-style delay-gradient controller, and the ACK-clocked TCP baseline:
//!
//! - RAP cells keep byte-identical labels and summary parameters (the axis
//!   must be invisible to every historical golden);
//! - every transport completes the paper's scenarios with finite,
//!   non-degenerate metrics and a per-seed deterministic trace;
//! - the megasession executor reproduces the per-cell executor bit for bit
//!   under every transport, not just RAP.

use laqa_sim::{
    run_campaign, run_campaign_opts, CampaignOptions, CampaignSpec, ScenarioConfig, SessionSpec,
    TestKind, Transport,
};

fn spec_for(transport: Transport) -> SessionSpec {
    SessionSpec {
        test: TestKind::T1,
        k_max: 2,
        seed: 7,
        duration: 10.0,
        fault_intensity: None,
        transport,
        trace: None,
    }
}

#[test]
fn interop_grid_enumerates_transport_major() {
    let spec = CampaignSpec::interop_grid(
        &[TestKind::T1],
        &Transport::ALL,
        &[2, 4],
        &[7, 21],
        8.0,
        None,
    );
    assert_eq!(spec.sessions.len(), 4 * 2 * 2);
    // Transport-major: each controller's cells stay contiguous, and the
    // leading block is the unchanged RAP grid.
    for (i, s) in spec.sessions.iter().enumerate() {
        assert_eq!(s.transport, Transport::ALL[i / 4]);
    }
    assert_eq!(spec.sessions[0].label(), "T1/k2/seed7");
    assert_eq!(spec.sessions[4].label(), "T1/k2/seed7/bbr");
    assert_eq!(spec.sessions[8].label(), "T1/k2/seed7/nada");
    assert_eq!(spec.sessions[12].label(), "T1/k2/seed7/tcp");
}

#[test]
fn rap_labels_and_summaries_stay_backcompat() {
    // The default transport must not change a single byte of the label or
    // the summary parameter set: goldens and EXPERIMENTS.md tooling key on
    // both.
    let rap = spec_for(Transport::Rap);
    assert_eq!(rap.label(), "T1/k2/seed7");
    let bbr = spec_for(Transport::Bbr);
    assert_eq!(bbr.label(), "T1/k2/seed7/bbr");

    let result = run_campaign(
        &CampaignSpec {
            sessions: vec![rap, bbr],
        },
        1,
    );
    let rap_summary = result.sessions[0].summary();
    assert!(
        !rap_summary.params.contains_key("transport"),
        "RAP rows must keep the historical parameter set"
    );
    let bbr_summary = result.sessions[1].summary();
    assert_eq!(
        bbr_summary.params.get("transport").map(String::as_str),
        Some("bbr")
    );
}

#[test]
fn with_transport_threads_the_nominal_decrease_factor() {
    // The tentpole bugfix: the QA geometry's per-backoff decrease factor
    // must follow the controller instead of hardcoding AIMD's ½.
    let cases = [
        (Transport::Rap, 0.5),
        (Transport::Tcp, 0.5),
        (Transport::Bbr, laqa_rap::bbr::LOSS_BETA),
        (Transport::Nada, laqa_rap::nada::NOMINAL_GAMMA),
    ];
    for (transport, expect) in cases {
        let cfg = ScenarioConfig::t1(2, 8.0, 7).with_transport(transport);
        assert_eq!(cfg.transport, transport);
        assert_eq!(
            cfg.qa.decrease_factor,
            expect,
            "{} must install its nominal decrease factor",
            transport.label()
        );
    }
}

#[test]
fn every_transport_produces_finite_metrics_and_replays() {
    for &transport in Transport::ALL.iter() {
        let spec = CampaignSpec {
            sessions: vec![spec_for(transport)],
        };
        let a = run_campaign(&spec, 1);
        let b = run_campaign(&spec, 1);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: same seed must replay bit-identically",
            transport.label()
        );
        let s = &a.sessions[0];
        assert!(
            s.backoffs > 0,
            "{}: the bottleneck must force at least one backoff",
            transport.label()
        );
        assert!(
            s.layer_change_rate.is_finite() && s.layer_change_rate >= 0.0,
            "{}: layer change rate {} must be finite",
            transport.label(),
            s.layer_change_rate
        );
        assert!(
            s.base_starved_bytes.is_finite() && s.base_starved_bytes >= 0.0,
            "{}: base starvation {} must be finite",
            transport.label(),
            s.base_starved_bytes
        );
        if let Some(r) = s.recovery_secs_mean {
            assert!(
                r.is_finite() && r >= 0.0,
                "{}: recovery time {r} must be finite",
                transport.label()
            );
        }
        assert_eq!(
            s.stalls, 0,
            "{}: a fault-free run must never stall the base layer",
            transport.label()
        );
    }
}

#[test]
fn transports_actually_diverge_from_rap() {
    // The axis must not be cosmetic: a non-RAP controller has to change
    // the simulated trajectory, not just the label.
    let rap = run_campaign(
        &CampaignSpec {
            sessions: vec![spec_for(Transport::Rap)],
        },
        1,
    );
    for &transport in &[Transport::Bbr, Transport::Nada, Transport::Tcp] {
        let other = run_campaign(
            &CampaignSpec {
                sessions: vec![spec_for(transport)],
            },
            1,
        );
        assert_ne!(
            rap.sessions[0].trace_hash,
            other.sessions[0].trace_hash,
            "{}: transport axis changed nothing",
            transport.label()
        );
    }
}

#[test]
fn mega_executor_matches_per_cell_for_every_transport() {
    let spec = CampaignSpec::interop_grid(&[TestKind::T1], &Transport::ALL, &[2], &[7, 21], 8.0, None);
    let per_cell = run_campaign_opts(&spec, CampaignOptions::new(1));
    let mega = run_campaign_opts(&spec, CampaignOptions::new(1).mega());
    assert_eq!(
        per_cell.fingerprint(),
        mega.fingerprint(),
        "megasession executor must be invisible under every transport"
    );
}

#[test]
fn faulted_interop_cells_complete_under_every_transport() {
    // The faults suite re-run across the matrix: every controller must
    // survive the full-intensity suite without panicking or starving the
    // base layer into an unresolved stall.
    let spec = CampaignSpec::interop_grid(&[TestKind::T1], &Transport::ALL, &[2], &[7], 12.0, Some(1.0));
    let result = run_campaign(&spec, 2);
    for s in &result.sessions {
        assert!(
            s.fault_transitions > 0,
            "{}: the suite at 1.0 must fire within 12 s",
            s.spec.label()
        );
        assert!(
            s.layer_change_rate.is_finite(),
            "{}: metrics must stay finite under faults",
            s.spec.label()
        );
        // RAP is the tuned controller the paper's continuity contract is
        // written against; the other transports are characterized, not
        // tuned, so they get a looser bound that still catches a
        // controller wedging the base layer outright.
        let stall_budget = if s.spec.transport == Transport::Rap { 2 } else { 8 };
        assert!(
            s.stalls <= stall_budget,
            "{}: base layer must stay essentially continuous (stalls {})",
            s.spec.label(),
            s.stalls
        );
    }
}
