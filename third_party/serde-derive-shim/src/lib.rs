//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the laqa serde
//! shim, implemented directly on `proc_macro` token streams so the crate
//! needs no registry dependencies (no `syn`, no `quote`).
//!
//! Supported item shapes — exactly what the laqa workspace derives:
//!
//! * structs with named fields,
//! * enums with unit, tuple, or named-field variants.
//!
//! Generic items are rejected with a `compile_error!`. The generated impls
//! reference the shim through the `::serde` path, which consumers provide
//! by renaming the shim package in their manifest:
//! `serde = { package = "laqa-serde-shim", ... }`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derive `serde::Serialize` (shim) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (shim) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("shim derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named fields.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter: Iter = input.into_iter().peekable();
    let is_enum = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the attribute's bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => {}
            None => return Err("expected `struct` or `enum`".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "laqa serde shim cannot derive for generic type `{name}`"
            ));
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "laqa serde shim cannot derive for unit/tuple struct `{name}`"
                ))
            }
            Some(_) => {}
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    let kind = if is_enum {
        Kind::Enum(parse_variants(body.stream())?)
    } else {
        Kind::Struct(parse_named_fields(body.stream())?)
    };
    Ok(Item { name, kind })
}

/// Parse `field: Type, ...` from the inside of a brace group, returning
/// the field names. Tracks `<`/`>` depth so commas inside generic argument
/// lists do not terminate a field.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        skip_type(&mut iter);
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                VariantFields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_elems(g.stream());
                iter.next();
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        // Consume everything up to the variant separator (covers explicit
        // discriminants, which the shim ignores).
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn skip_attrs_and_vis(iter: &mut Iter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
}

/// Consume one type (everything up to a top-level `,` or the end),
/// honouring `<`/`>` nesting.
fn skip_type(iter: &mut Iter) {
    let mut angle = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

fn count_tuple_elems(stream: TokenStream) -> usize {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut n = 0usize;
    loop {
        if iter.peek().is_none() {
            break;
        }
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        n += 1;
    }
    n
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(","))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Arr(::std::vec![{vals}]))])",
                                binds = binds.join(","),
                                vals = vals.join(",")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {fields} }} => \
                                 ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Obj(::std::vec![{entries}]))])",
                                fields = fields.join(","),
                                entries = entries.join(",")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(","))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                .collect();
            format!(
                "let entries = v.as_obj().ok_or_else(|| \
                 ::serde::Error::new(concat!(\"expected object for \", {name:?})))?;\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(",")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(n) => {
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\
                                 let items = inner.as_arr().ok_or_else(|| \
                                   ::serde::Error::new(\"expected array payload\"))?;\
                                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                                   ::serde::Error::new(\"wrong tuple arity\")); }}\
                                 ::std::result::Result::Ok({name}::{vn}({vals}))\
                                 }}",
                                vals = vals.join(",")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(fe, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\
                                 let fe = inner.as_obj().ok_or_else(|| \
                                   ::serde::Error::new(\"expected object payload\"))?;\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\
                                 }}",
                                inits = inits.join(",")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\
                   return match s {{\
                     {unit_arms}\
                     other => ::std::result::Result::Err(::serde::Error::new(\
                       format!(concat!(\"unknown variant '{{}}' of \", {name:?}), other))),\
                   }};\
                 }}\
                 let entries = v.as_obj().ok_or_else(|| \
                   ::serde::Error::new(concat!(\"expected tag for \", {name:?})))?;\
                 if entries.len() != 1 {{ return ::std::result::Result::Err(\
                   ::serde::Error::new(\"expected single-key variant object\")); }}\
                 let (tag, inner) = (&entries[0].0, &entries[0].1);\
                 let _ = inner;\
                 match tag.as_str() {{\
                   {payload_arms}\
                   other => ::std::result::Result::Err(::serde::Error::new(\
                     format!(concat!(\"unknown variant '{{}}' of \", {name:?}), other))),\
                 }}",
                unit_arms = unit_arms.join(""),
                payload_arms = payload_arms.join(",")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
           fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
}
