//! Std-only microbenchmark harness for the `harness = false` bench
//! targets.
//!
//! The hermetic tier-1 build has no criterion (DESIGN.md, "Hermetic
//! offline builds"), so the bench binaries time themselves with
//! `std::time::Instant`: calibrate an iteration count to a fixed
//! per-sample budget, take several samples, and report the median so a
//! stray scheduler hiccup does not skew the figure. Use
//! `std::hint::black_box` around inputs exactly as with criterion.
//!
//! `cargo bench` runs every registered benchmark; pass a substring to
//! run a subset (`cargo bench -p laqa-bench --bench qa_bench -- band`).

use std::time::Instant;

/// Samples taken per benchmark; the median is reported.
const SAMPLES: usize = 5;
/// Target wall time per sample, seconds.
const SAMPLE_BUDGET: f64 = 0.2;

/// A named group of benchmarks, filtered by the process's CLI arguments.
pub struct Runner {
    filters: Vec<String>,
    results: Vec<(String, f64)>,
}

impl Runner {
    /// Build a runner from `std::env::args`, treating every non-flag
    /// argument as a substring filter (so `cargo bench -- foo` works;
    /// libtest-style flags such as `--bench` are ignored).
    pub fn from_args() -> Runner {
        Runner {
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Time `f`, auto-calibrating the per-sample iteration count.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // Calibrate: grow the batch until one batch costs >= ~1% of the
        // sample budget, then scale to the full budget.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let secs = t.elapsed().as_secs_f64();
            if secs >= SAMPLE_BUDGET / 100.0 || iters >= 1 << 30 {
                break secs / iters as f64;
            }
            iters *= 8;
        };
        let per_sample = ((SAMPLE_BUDGET / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
        let mut samples = [0.0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            *s = t.elapsed().as_secs_f64() / per_sample as f64;
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[SAMPLES / 2];
        println!(
            "{name:<40} {:>12}/iter   ({per_sample} iters/sample, {SAMPLES} samples)",
            fmt_duration(median)
        );
        self.results.push((name.to_string(), median));
    }

    /// Print the closing summary line. Call once at the end of `main`.
    pub fn finish(self) {
        println!("\n{} benchmarks run", self.results.len());
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_records() {
        let mut r = Runner {
            filters: vec![],
            results: vec![],
        };
        let mut x = 0u64;
        r.bench("trivial", || {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(r.results.len(), 1);
        assert!(r.results[0].1 > 0.0);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut r = Runner {
            filters: vec!["match-me".into()],
            results: vec![],
        };
        r.bench("other", || 1);
        assert!(r.results.is_empty());
        r.bench("match-me-exactly", || 1);
        assert_eq!(r.results.len(), 1);
    }

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_duration(2.5), "2.500 s");
        assert_eq!(fmt_duration(2.5e-3), "2.500 ms");
        assert_eq!(fmt_duration(2.5e-6), "2.500 µs");
        assert_eq!(fmt_duration(2.5e-9), "2.5 ns");
    }
}
