//! # laqa-trace — figure/table plumbing
//!
//! Minimal time-series recording and export used by every experiment
//! regenerator: [`series`] for raw samples and rate binning, [`recorder`]
//! for collecting a run's series and writing CSVs, [`table`] for the
//! paper-style aligned text tables, [`summary`] for machine-readable run
//! summaries, [`json`] for the self-contained JSON reader/writer behind
//! them, [`chrome`] for Chrome trace-event (Perfetto) documents and their
//! zero-dependency validator, [`hash`] for stable 64-bit trace
//! fingerprints used by the campaign engine's reproducibility checks, and
//! [`linktrace`] for the recorded link-condition traces that drive the
//! simulator's trace-driven links.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chrome;
pub mod gnuplot;
pub mod hash;
pub mod json;
pub mod linktrace;
pub mod recorder;
pub mod series;
pub mod stats;
pub mod summary;
pub mod table;

pub use chrome::{validate as validate_chrome, ChromeStats, ChromeTrace};
pub use gnuplot::{render_script, write_figure, Panel};
pub use hash::TraceHasher;
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use linktrace::{parse_link_trace, LinkTracePoint};
pub use recorder::Recorder;
pub use series::{RateBinner, TimeSeries};
pub use stats::{histogram, percentile, summarize, SeriesStats};
pub use summary::RunSummary;
pub use table::{pct, Table};
