//! Simulated packets and their protocol payloads.

use laqa_rap::AckInfo;
use std::rc::Rc;

/// Agent identifier within a [`crate::engine::World`].
pub type AgentId = usize;
/// Link identifier within a [`crate::engine::World`].
pub type LinkId = usize;

/// An immutable, cheaply clonable route: the links a packet traverses.
///
/// Agents keep one `Route` per flow and stamp it onto every packet they
/// send. Backed by a shared `Rc<[LinkId]>`, so the per-packet cost is a
/// refcount bump instead of a fresh `Vec` allocation — in a long
/// campaign that removes one heap allocation and free per packet sent
/// (measured by `laqa-bench sched`'s allocation counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route(Rc<[LinkId]>);

impl Route {
    /// The empty route (direct delivery to the destination agent).
    pub fn empty() -> Self {
        Route(Rc::from(&[][..]))
    }

    /// The links of the route, in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.0
    }
}

impl Default for Route {
    fn default() -> Self {
        Route::empty()
    }
}

impl std::ops::Deref for Route {
    type Target = [LinkId];
    fn deref(&self) -> &[LinkId] {
        &self.0
    }
}

impl From<Vec<LinkId>> for Route {
    fn from(links: Vec<LinkId>) -> Self {
        Route(Rc::from(links))
    }
}

impl From<&[LinkId]> for Route {
    fn from(links: &[LinkId]) -> Self {
        Route(Rc::from(links))
    }
}

impl FromIterator<LinkId> for Route {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        Route(iter.into_iter().collect())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Route {
    fn to_value(&self) -> serde::Value {
        serde::Value::Arr(
            self.0
                .iter()
                .map(|&l| serde::Value::Num(l as f64))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Route {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let links = Vec::<usize>::from_value(v)?;
        Ok(Route::from(links))
    }
}

/// Protocol payload carried by a simulated packet. Header/payload bytes are
/// abstracted into `size` on the [`Packet`]; this enum carries the fields
/// the protocols actually read.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PacketKind {
    /// RAP data packet carrying one layered-video packet.
    RapData {
        /// RAP sequence number.
        seq: u64,
        /// Layer the payload belongs to.
        layer: u8,
        /// Active layer count at the server when sent (in-band signalling
        /// of add/drop, as the paper's server does).
        n_active: u8,
    },
    /// RAP acknowledgement.
    RapAck(AckInfo),
    /// TCP data segment.
    TcpData {
        /// Segment sequence number (in packets, not bytes).
        seq: u64,
        /// True when this is a retransmission (for stats only).
        retx: bool,
    },
    /// TCP cumulative acknowledgement.
    TcpAck {
        /// Next expected sequence (all below received).
        cum: u64,
        /// Highest out-of-order sequence seen (SACK-style hint that lets
        /// the sender avoid false retransmissions).
        high: u64,
    },
    /// Constant-bit-rate (unresponsive) traffic.
    Cbr,
}

/// A packet in flight through the simulated network.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Packet {
    /// Globally unique id (assigned by the world; diagnostics only).
    pub uid: u64,
    /// Flow number (for per-flow stats).
    pub flow: u32,
    /// Wire size in bytes (headers included).
    pub size: u32,
    /// Protocol payload.
    pub kind: PacketKind,
    /// Destination agent.
    pub dst: AgentId,
    /// Remaining route: links to traverse before reaching `dst`.
    pub route: Route,
    /// Index of the next link in `route`.
    pub hop: usize,
    /// Time the packet entered the network (seconds).
    pub sent_at: f64,
}

impl Packet {
    /// Next link to traverse, if any.
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.get(self.hop).copied()
    }

    /// Advance to the following hop.
    pub fn advance_hop(&mut self) {
        self.hop += 1;
    }

    /// True when the packet has traversed its whole route.
    pub fn at_destination(&self) -> bool {
        self.hop >= self.route.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(route: Vec<LinkId>) -> Packet {
        Packet {
            uid: 1,
            flow: 0,
            size: 1000,
            kind: PacketKind::Cbr,
            dst: 5,
            route: route.into(),
            hop: 0,
            sent_at: 0.0,
        }
    }

    #[test]
    fn route_clone_shares_storage() {
        let r: Route = vec![1, 2, 3].into();
        let c = r.clone();
        assert_eq!(r, c);
        assert_eq!(c.links(), &[1, 2, 3]);
        assert!(std::ptr::eq(r.links(), c.links()), "clone is a refcount bump");
        assert!(Route::empty().is_empty());
        assert_eq!(Route::default(), Route::empty());
    }

    #[test]
    fn route_traversal() {
        let mut p = pkt(vec![3, 7]);
        assert_eq!(p.next_link(), Some(3));
        assert!(!p.at_destination());
        p.advance_hop();
        assert_eq!(p.next_link(), Some(7));
        p.advance_hop();
        assert_eq!(p.next_link(), None);
        assert!(p.at_destination());
    }

    #[test]
    fn empty_route_is_at_destination() {
        let p = pkt(vec![]);
        assert!(p.at_destination());
    }
}
