//! A NADA-style delay-gradient controller behind the [`RateController`]
//! trait (after RFC 8698's "Network-Assisted Dynamic Adaptation", here in
//! its receiver-assistance-free form).
//!
//! The controller folds queueing delay and loss into one **unified
//! congestion signal**
//!
//! ```text
//! x = d_queue + DLOSS · (p / p_ref)²
//! ```
//!
//! where `d_queue = srtt − min_rtt` is the standing-queue estimate, `p` an
//! EWMA of the per-packet loss indicator, and `DLOSS` the delay-units
//! penalty of reference-level loss. Between loss events the rate follows a
//! proportional update toward the operating point `x = x_ref`:
//!
//! ```text
//! R ← R + η · (x_ref − x) / x_ref · packet_size / srtt     (once per SRTT)
//! ```
//!
//! — on an uncongested path (`x = 0`) that is exactly η packets per SRTT
//! per SRTT, i.e. RAP's additive slope scaled by η, which is what
//! [`slope`](RateController::slope) reports to the QA geometry. Loss
//! *clusters* (same suppression rule as RAP) trigger a multiplicative
//! decrease whose factor adapts to the measured loss level:
//!
//! ```text
//! γ = clamp( 1 / (1 + p/p_ref), GAMMA_MIN, GAMMA_MAX )
//! ```
//!
//! light loss backs off gently (γ → 0.95), reference-level loss halves
//! near-TCP-style (γ → 0.5). Timeouts collapse to the floor rate. All
//! state is a pure function of the ACK stream and the polled clock.

use crate::controller::RateController;
use crate::history::{PacketRecord, TransmissionHistory};
use crate::receiver::AckInfo;
use crate::rtt::RttEstimator;
use crate::sender::{BackoffCause, RapEvent};

/// Softest permitted multiplicative decrease.
pub const GAMMA_MAX: f64 = 0.95;

/// Hardest permitted multiplicative decrease (TCP-equivalent halving).
pub const GAMMA_MIN: f64 = 0.5;

/// Nominal decrease factor surfaced to the QA geometry: the γ the
/// controller realizes at reference-level loss pressure sits midway
/// between the clamps.
pub const NOMINAL_GAMMA: f64 = 0.75;

/// NADA-style sender configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NadaConfig {
    /// Payload bytes per packet.
    pub packet_size: f64,
    /// Initial transmission rate (bytes/s).
    pub initial_rate: f64,
    /// Initial RTT guess (seconds).
    pub initial_rtt: f64,
    /// Packets after a hole before it is declared lost.
    pub reorder_threshold: u64,
    /// Rate ceiling (bytes/s), `INFINITY` for none.
    pub max_rate: f64,
    /// Target congestion signal (seconds of equivalent delay).
    pub x_ref: f64,
    /// Reference loss fraction (the level that costs `d_loss`).
    pub p_ref: f64,
    /// Delay-units penalty of reference-level loss (seconds).
    pub d_loss: f64,
    /// Rate-update gain: packets per SRTT gained when uncongested.
    pub eta: f64,
    /// EWMA gain for the loss-fraction estimate.
    pub loss_alpha: f64,
}

impl Default for NadaConfig {
    fn default() -> Self {
        NadaConfig {
            packet_size: 1_000.0,
            initial_rate: 2_000.0,
            initial_rtt: 0.2,
            reorder_threshold: 3,
            max_rate: f64::INFINITY,
            x_ref: 0.02,
            p_ref: 0.01,
            d_loss: 0.1,
            eta: 1.0,
            loss_alpha: 0.01,
        }
    }
}

/// NADA-style unified-congestion-signal sender. Paced, like RAP; drive it
/// with the same loop (see [`RateController`]).
#[derive(Debug, Clone)]
pub struct NadaSender {
    cfg: NadaConfig,
    rtt: RttEstimator,
    history: TransmissionHistory,
    rate: f64,
    /// Running minimum of raw RTT samples (the propagation-delay anchor
    /// for the queueing-delay gradient).
    min_rtt: f64,
    /// EWMA loss fraction over resolved packets.
    loss_ewma: f64,
    next_update: f64,
    next_seq: u64,
    next_send: f64,
    recovery_seq: Option<u64>,
    last_progress: f64,
    timeouts_in_row: u32,
    events: Vec<RapEvent>,
}

impl NadaSender {
    /// New sender whose clock starts at `now`.
    pub fn new(cfg: NadaConfig, now: f64) -> Self {
        let rtt = RttEstimator::new(cfg.initial_rtt);
        let srtt = rtt.srtt();
        NadaSender {
            history: TransmissionHistory::new(cfg.reorder_threshold),
            rtt,
            rate: cfg.initial_rate.max(cfg.packet_size),
            min_rtt: f64::INFINITY,
            loss_ewma: 0.0,
            next_update: now + srtt,
            next_seq: 0,
            next_send: now,
            recovery_seq: None,
            last_progress: now,
            timeouts_in_row: 0,
            events: Vec::new(),
            cfg,
        }
    }

    /// Floor rate: one packet per second, same as RAP's AIMD floor.
    fn min_rate(&self) -> f64 {
        self.cfg.packet_size
    }

    /// Smoothed RTT (seconds).
    pub fn srtt(&self) -> f64 {
        self.rtt.srtt()
    }

    /// Standing-queue estimate `srtt − min_rtt` (seconds, ≥ 0).
    pub fn d_queue(&self) -> f64 {
        if self.min_rtt.is_finite() {
            (self.rtt.srtt() - self.min_rtt).max(0.0)
        } else {
            0.0
        }
    }

    /// EWMA loss fraction.
    pub fn loss_fraction(&self) -> f64 {
        self.loss_ewma
    }

    /// The unified congestion signal `x = d_queue + DLOSS·(p/p_ref)²`.
    pub fn signal(&self) -> f64 {
        let p_term = self.loss_ewma / self.cfg.p_ref;
        self.d_queue() + self.cfg.d_loss * p_term * p_term
    }

    /// Configured packet size (bytes).
    pub fn packet_size(&self) -> f64 {
        self.cfg.packet_size
    }

    /// The configuration this sender was built with.
    pub fn config(&self) -> &NadaConfig {
        &self.cfg
    }

    /// Consecutive timeouts without intervening ACK progress.
    pub fn timeouts_in_row(&self) -> u32 {
        self.timeouts_in_row
    }

    fn timeout_deadline(&self) -> f64 {
        if self.history.outstanding() == 0 {
            return f64::INFINITY;
        }
        self.last_progress + self.rtt.rto()
    }

    /// Per-SRTT proportional rate update toward `x = x_ref`.
    fn rate_update(&mut self, at: f64) {
        let srtt = self.rtt.srtt().max(1e-3);
        let x = self.signal();
        let step =
            self.cfg.eta * (self.cfg.x_ref - x) / self.cfg.x_ref * self.cfg.packet_size / srtt;
        let before = self.rate;
        self.rate = (self.rate + step).clamp(self.min_rate(), self.cfg.max_rate);
        if self.rate > before {
            self.events.push(RapEvent::RateIncrease {
                time: at,
                rate: self.rate,
            });
        }
    }

    /// Fold one resolved-packet outcome into the loss EWMA.
    fn observe(&mut self, lost: bool) {
        let y = if lost { 1.0 } else { 0.0 };
        self.loss_ewma += self.cfg.loss_alpha * (y - self.loss_ewma);
    }

    fn handle_losses(
        &mut self,
        now: f64,
        losses: Vec<crate::history::LostPacket>,
        cause: BackoffCause,
    ) {
        if losses.is_empty() {
            return;
        }
        // γ reflects the loss level *standing at event time*: folding the
        // current cluster into the EWMA first would let any single loss
        // saturate the formula at the hard clamp.
        let p_at_event = self.loss_ewma;
        let mut new_event = false;
        for l in &losses {
            self.observe(true);
            self.events.push(RapEvent::PacketLost {
                time: now,
                seq: l.seq,
                size: l.record.size,
                tag: l.record.tag,
            });
            if self.recovery_seq.is_none_or(|r| l.seq > r) {
                new_event = true;
            }
        }
        if new_event {
            let pre_rate = self.rate;
            let gamma =
                (1.0 / (1.0 + p_at_event / self.cfg.p_ref)).clamp(GAMMA_MIN, GAMMA_MAX);
            self.rate = (self.rate * gamma).max(self.min_rate());
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.events.push(RapEvent::Backoff {
                time: now,
                rate: self.rate,
                pre_rate,
                slope: RateController::slope(self),
                cause,
            });
        }
    }
}

impl RateController for NadaSender {
    fn rate(&self) -> f64 {
        self.rate
    }

    fn slope(&self) -> f64 {
        // The uncongested increase is η packets per SRTT per SRTT — RAP's
        // slope scaled by the gain.
        let srtt = self.rtt.srtt().max(1e-6);
        self.cfg.eta * self.cfg.packet_size / (srtt * srtt)
    }

    fn next_send_time(&self, _now: f64) -> f64 {
        self.next_send
    }

    fn next_timer(&self) -> f64 {
        self.next_update.min(self.timeout_deadline())
    }

    fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.history.on_send(
            seq,
            PacketRecord {
                send_time: now,
                size,
                tag,
            },
        );
        let ipg = self.cfg.packet_size / self.rate;
        // Pace from the scheduled time (same rule as RAP).
        self.next_send = self.next_send.max(now - ipg) + ipg;
        if self.history.outstanding() == 1 {
            self.last_progress = now;
        }
        seq
    }

    fn on_ack(&mut self, now: f64, ack: AckInfo) {
        self.last_progress = now;
        self.timeouts_in_row = 0;
        self.rtt.reset_backoff();
        let mut resolved: Vec<(u64, PacketRecord)> = Vec::new();
        if let Some(record) = self.history.mark_received(ack.ack_seq) {
            let sample = now - record.send_time;
            self.rtt.sample(sample);
            if sample > 0.0 && sample < self.min_rtt {
                self.min_rtt = sample;
            }
            resolved.push((ack.ack_seq, record));
        }
        if ack.cum_seq != u64::MAX {
            resolved.extend(self.history.mark_received_upto(ack.cum_seq));
        }
        if ack.highest >= 1 {
            let valid = if ack.highest >= 64 {
                u64::MAX
            } else {
                (1u64 << ack.highest) - 1
            };
            let mut bits = ack.mask & valid;
            while bits != 0 {
                let i = u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                if let Some(r) = self.history.mark_received(ack.highest - 1 - i) {
                    resolved.push((ack.highest - 1 - i, r));
                }
            }
        }
        for (seq, record) in resolved {
            self.observe(false);
            self.events.push(RapEvent::PacketAcked {
                time: now,
                seq,
                size: record.size,
                tag: record.tag,
            });
        }
        let losses = self.history.detect_losses();
        self.handle_losses(now, losses, BackoffCause::Loss);
    }

    fn poll_timers(&mut self, now: f64) {
        if now >= self.timeout_deadline() {
            let losses = self.history.flush_all_as_lost();
            for l in &losses {
                self.observe(true);
                self.events.push(RapEvent::PacketLost {
                    time: now,
                    seq: l.seq,
                    size: l.record.size,
                    tag: l.record.tag,
                });
            }
            self.rtt.on_timeout();
            self.timeouts_in_row = self.timeouts_in_row.saturating_add(1);
            let pre_rate = self.rate;
            self.rate = self.min_rate();
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.last_progress = now;
            self.events.push(RapEvent::Backoff {
                time: now,
                rate: self.rate,
                pre_rate,
                slope: RateController::slope(self),
                cause: BackoffCause::Timeout,
            });
        }
        while now >= self.next_update {
            let at = self.next_update;
            self.rate_update(at);
            self.next_update += self.rtt.srtt().max(1e-3);
        }
    }

    fn drain_events_into(&mut self, out: &mut Vec<RapEvent>) {
        out.append(&mut self.events);
    }

    fn restart(&mut self, start_at: f64) {
        *self = NadaSender::new(self.cfg.clone(), start_at);
    }

    fn decrease_factor(&self) -> f64 {
        NOMINAL_GAMMA
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::RapReceiverState;

    fn sender(max_rate: f64) -> NadaSender {
        NadaSender::new(
            NadaConfig {
                initial_rate: 10_000.0,
                initial_rtt: 0.1,
                max_rate,
                ..NadaConfig::default()
            },
            0.0,
        )
    }

    /// Echo path with one-way delay `owd` dropping every `loss_every`-th
    /// packet (0 = lossless). Returns (sender, `(pre, post)` backoffs).
    fn run(
        mut s: NadaSender,
        dur: f64,
        owd: f64,
        loss_every: u64,
    ) -> (NadaSender, Vec<(f64, f64)>) {
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipe: Vec<(f64, u64)> = Vec::new();
        let mut backoffs = Vec::new();
        let mut events = Vec::new();
        while now < dur {
            s.poll_timers(now);
            while !pipe.is_empty() && pipe[0].0 <= now {
                let (_, seq) = pipe.remove(0);
                s.on_ack(now, rx.on_data(seq));
            }
            while now >= RateController::next_send_time(&s, now) {
                let seq = RateController::register_send(&mut s, now, 1_000.0, 0);
                if loss_every == 0 || seq % loss_every != loss_every - 1 {
                    pipe.push((now + 2.0 * owd, seq));
                }
            }
            s.drain_events_into(&mut events);
            for e in events.drain(..) {
                if let RapEvent::Backoff { rate, pre_rate, .. } = e {
                    backoffs.push((pre_rate, rate));
                }
            }
            now += 0.001;
        }
        (s, backoffs)
    }

    #[test]
    fn uncongested_path_increases_additively() {
        let (s, backoffs) = run(sender(f64::INFINITY), 3.0, 0.02, 0);
        assert!(backoffs.is_empty());
        // η=1, srtt 40 ms: about one packet per srtt per srtt of growth
        // over 3 s from 10 KB/s — well past 100 KB/s.
        assert!(RateController::rate(&s) > 100_000.0, "rate {}", RateController::rate(&s));
        assert!((s.srtt() - 0.04).abs() < 0.02);
        assert!(s.d_queue() < 0.01, "no standing queue on an echo path");
    }

    #[test]
    fn respects_rate_bounds() {
        let (s, _) = run(sender(30_000.0), 3.0, 0.02, 0);
        assert!(RateController::rate(&s) <= 30_000.0 + 1e-9);
        let (s, _) = run(sender(f64::INFINITY), 20.0, 0.02, 5);
        assert!(RateController::rate(&s) >= s.packet_size());
    }

    #[test]
    fn backoff_gamma_tracks_loss_pressure_within_clamps() {
        // Inject one fresh loss event at different standing loss levels
        // and read the realized post/pre ratio off the Backoff event. Rate
        // far above the floor so no clamp obscures γ itself.
        let gamma_at = |p: f64| {
            let mut s = sender(f64::INFINITY);
            s.loss_ewma = p;
            s.rate = 100_000.0;
            s.next_seq = 10;
            let losses = vec![crate::history::LostPacket {
                seq: 5,
                record: PacketRecord {
                    send_time: 0.0,
                    size: 1_000.0,
                    tag: 0,
                },
            }];
            s.handle_losses(1.0, losses, BackoffCause::Loss);
            let mut events = Vec::new();
            s.drain_events_into(&mut events);
            events
                .iter()
                .find_map(|e| match e {
                    RapEvent::Backoff { rate, pre_rate, .. } => Some(rate / pre_rate),
                    _ => None,
                })
                .expect("loss event must back off")
        };
        let r_none = gamma_at(0.0);
        let r_ref = gamma_at(0.002);
        let r_heavy = gamma_at(0.2);
        for r in [r_none, r_ref, r_heavy] {
            assert!(
                (GAMMA_MIN - 1e-9..=GAMMA_MAX + 1e-9).contains(&r),
                "gamma {r} outside clamps"
            );
        }
        assert_eq!(r_none, GAMMA_MAX, "no standing loss → softest backoff");
        assert_eq!(r_heavy, GAMMA_MIN, "heavy loss saturates at halving");
        assert!(
            r_heavy < r_ref && r_ref < r_none,
            "gamma must fall with loss pressure: {r_heavy} {r_ref} {r_none}"
        );
    }

    #[test]
    fn every_backoff_ratio_in_unit_interval() {
        let (_, backoffs) = run(sender(f64::INFINITY), 10.0, 0.02, 30);
        assert!(!backoffs.is_empty());
        for (pre, post) in backoffs {
            let r = post / pre;
            assert!(r > 0.0 && r <= 1.0, "ratio {r}");
        }
    }

    #[test]
    fn standing_queue_caps_the_rate_without_loss() {
        // Feed ACKs whose RTT grows with the send rate (a synthetic
        // self-induced queue): the signal must push back before any loss.
        let mut s = sender(f64::INFINITY);
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipe: Vec<(f64, u64)> = Vec::new();
        let mut peak = 0.0f64;
        while now < 8.0 {
            s.poll_timers(now);
            // Queue delay proportional to how far the rate sits above
            // 50 KB/s: a crude single-bottleneck model.
            let extra = ((RateController::rate(&s) - 50_000.0) / 50_000.0).max(0.0) * 0.1;
            while !pipe.is_empty() && pipe[0].0 <= now {
                let (_, seq) = pipe.remove(0);
                s.on_ack(now, rx.on_data(seq));
            }
            while now >= RateController::next_send_time(&s, now) {
                let seq = RateController::register_send(&mut s, now, 1_000.0, 0);
                pipe.push((now + 0.04 + extra, seq));
            }
            peak = peak.max(RateController::rate(&s));
            now += 0.001;
        }
        assert!(
            peak < 200_000.0,
            "delay gradient must arrest growth long before 200 KB/s: {peak}"
        );
        assert!(s.d_queue() > 0.0 || RateController::rate(&s) < 80_000.0);
    }

    #[test]
    fn timeout_collapses_to_floor() {
        let mut s = sender(f64::INFINITY);
        for i in 0..5u64 {
            RateController::register_send(&mut s, i as f64 * 0.01, 1_000.0, 0);
        }
        s.poll_timers(30.0);
        assert_eq!(RateController::rate(&s), s.packet_size());
        let mut events = Vec::new();
        s.drain_events_into(&mut events);
        let (pre, post) = events
            .iter()
            .find_map(|e| match e {
                RapEvent::Backoff {
                    rate,
                    pre_rate,
                    cause: BackoffCause::Timeout,
                    ..
                } => Some((*pre_rate, *rate)),
                _ => None,
            })
            .expect("timeout backoff");
        assert!(post <= pre && post > 0.0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let (a, _) = run(sender(f64::INFINITY), 5.0, 0.02, 40);
        let (b, _) = run(sender(f64::INFINITY), 5.0, 0.02, 40);
        assert_eq!(
            RateController::rate(&a).to_bits(),
            RateController::rate(&b).to_bits()
        );
        assert_eq!(a.signal().to_bits(), b.signal().to_bits());
    }
}
