//! RAP's AIMD rate machinery.
//!
//! RAP is *rate-based*: the sender paces packets with an inter-packet gap
//! `IPG = packet_size / rate`, and adapts the rate once per smoothed RTT
//! ("step"):
//!
//! * **Additive increase** — one extra packet per SRTT each SRTT:
//!   `R ← R + packet_size / srtt` (equivalently
//!   `IPG ← IPG·srtt / (IPG + srtt)`).
//! * **Multiplicative decrease** — on a loss event the rate halves:
//!   `R ← R / 2` (`IPG ← 2·IPG`).
//!
//! The resulting transmission-rate trajectory is the regular sawtooth of the
//! paper's figure 1 (unlike TCP, RAP is not ACK-clocked, so the shape is
//! clean). The quality-adaptation layer consumes the rate, the slope of the
//! linear increase (`S = packet_size / srtt²` bytes/s²), and backoff
//! notifications.


/// AIMD rate state for a RAP flow.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AimdState {
    /// Payload bytes per packet (RAP adapts the gap, not the size).
    packet_size: f64,
    /// Current transmission rate (bytes/s).
    rate: f64,
    /// Floor: the rate never falls below one packet per `max_ipg` seconds.
    min_rate: f64,
    /// Optional ceiling (e.g. the encoding's total rate — no point sending
    /// faster than the receiver can consume plus buffer headroom).
    max_rate: f64,
}

impl AimdState {
    /// New AIMD state starting at `initial_rate` bytes/s.
    pub fn new(packet_size: f64, initial_rate: f64) -> Self {
        assert!(packet_size > 0.0, "packet size must be positive");
        let min_rate = packet_size; // >= 1 packet/s
        AimdState {
            packet_size,
            rate: initial_rate.max(min_rate),
            min_rate,
            max_rate: f64::INFINITY,
        }
    }

    /// Set a rate ceiling (bytes/s); `INFINITY` disables it.
    pub fn set_max_rate(&mut self, max_rate: f64) {
        self.max_rate = if max_rate > self.min_rate {
            max_rate
        } else {
            self.min_rate
        };
        self.rate = self.rate.min(self.max_rate);
    }

    /// Current transmission rate (bytes/s).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Packet size (bytes).
    pub fn packet_size(&self) -> f64 {
        self.packet_size
    }

    /// Inter-packet gap at the current rate (seconds).
    pub fn ipg(&self) -> f64 {
        self.packet_size / self.rate
    }

    /// Additive-increase slope at the given SRTT: `S = packet_size/srtt²`
    /// bytes/s² (one packet per SRTT gained every SRTT).
    pub fn slope(&self, srtt: f64) -> f64 {
        let srtt = srtt.max(1e-6);
        self.packet_size / (srtt * srtt)
    }

    /// One per-SRTT step of additive increase.
    pub fn increase_step(&mut self, srtt: f64) {
        let srtt = srtt.max(1e-6);
        self.rate = (self.rate + self.packet_size / srtt).min(self.max_rate);
    }

    /// Multiplicative decrease (one loss event). Returns the new rate.
    pub fn backoff(&mut self) -> f64 {
        self.rate = (self.rate / 2.0).max(self.min_rate);
        self.rate
    }

    /// Collapse to the floor rate (timeout).
    pub fn collapse(&mut self) -> f64 {
        self.rate = self.min_rate;
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increase_adds_one_packet_per_srtt() {
        let mut a = AimdState::new(1_000.0, 10_000.0);
        a.increase_step(0.1);
        assert!((a.rate() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_halves_rate() {
        let mut a = AimdState::new(1_000.0, 40_000.0);
        assert!((a.backoff() - 20_000.0).abs() < 1e-9);
        assert!((a.rate() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_never_below_one_packet_per_second() {
        let mut a = AimdState::new(1_000.0, 1_500.0);
        for _ in 0..10 {
            a.backoff();
        }
        assert_eq!(a.rate(), 1_000.0);
    }

    #[test]
    fn ipg_is_packet_over_rate() {
        let a = AimdState::new(1_000.0, 10_000.0);
        assert!((a.ipg() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn slope_matches_packet_over_srtt_squared() {
        let a = AimdState::new(1_000.0, 10_000.0);
        assert!((a.slope(0.2) - 25_000.0).abs() < 1e-9);
    }

    #[test]
    fn max_rate_caps_increase() {
        let mut a = AimdState::new(1_000.0, 10_000.0);
        a.set_max_rate(12_000.0);
        for _ in 0..10 {
            a.increase_step(0.1);
        }
        assert_eq!(a.rate(), 12_000.0);
    }

    #[test]
    fn sawtooth_shape_under_periodic_loss() {
        // Drive steps with a backoff every 20 steps: the trajectory must be
        // piecewise linear up, halving down — and the peak must converge.
        let mut a = AimdState::new(1_000.0, 5_000.0);
        let srtt = 0.1;
        let mut peaks = Vec::new();
        for cycle in 0..30 {
            for _ in 0..20 {
                a.increase_step(srtt);
            }
            if cycle >= 25 {
                peaks.push(a.rate());
            }
            a.backoff();
        }
        // Steady-state peak: p/2 + 20·PS/srtt = p → p = 2·20·10_000/... :
        // p = 2 * 20 * 1_000/0.1 = 400_000.
        for p in peaks {
            assert!((p - 400_000.0).abs() < 1.0, "peak {p}");
        }
    }

    #[test]
    fn collapse_hits_floor() {
        let mut a = AimdState::new(1_000.0, 123_456.0);
        assert_eq!(a.collapse(), 1_000.0);
    }
}
