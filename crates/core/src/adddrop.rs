//! Coarse-grain layer add/drop conditions (§2.1, §2.2, §3.1).
//!
//! **Adding** (§2.1 refined by §3.1): a new layer may start only when
//!
//! 1. the *instantaneous* transmission rate exceeds the consumption rate of
//!    the existing layers plus the new one (`R ≥ (n_a+1)·C`), so the new
//!    layer can play out immediately with no inter-layer timing guesswork,
//!    and
//! 2. the receiver buffers satisfy every optimal state with `k ≤ K_max` on
//!    the monotone path — the smoothing condition that replaces the naive
//!    "survive one backoff" rule and prevents layers flapping with every
//!    sawtooth cycle.
//!
//! **Dropping** (§2.2): after a backoff, iteratively drop the highest layer
//! while the total buffering is below the recovery deficit at the current
//! (post-backoff) rate. The base layer is never dropped.

use crate::geometry::{recovery_buffer_with, sustainable_layers};
use crate::states::StateSequence;

/// Result of evaluating the add conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddCheck {
    /// Condition 1: instantaneous rate covers existing + new layer.
    pub bandwidth_ok: bool,
    /// Condition 2 (smoothed): buffers satisfy all `k ≤ K_max` states.
    pub buffer_ok: bool,
    /// Room left in the encoding (below `max_layers`).
    pub capacity_ok: bool,
}

impl AddCheck {
    /// All conditions hold.
    pub fn all_ok(&self) -> bool {
        self.bandwidth_ok && self.buffer_ok && self.capacity_ok
    }
}

/// Inputs to [`check_add`] beyond the two state sequences: the current
/// buffer distribution, transmission rate, and the controller limits.
#[derive(Debug, Clone, Copy)]
pub struct AddInputs<'a> {
    /// Per-layer buffered bytes (sender estimates).
    pub bufs: &'a [f64],
    /// Current transmission rate (bytes/s).
    pub rate: f64,
    /// Layers currently active.
    pub n_active: usize,
    /// Layers the encoding offers at most.
    pub max_layers: usize,
    /// Smoothing factor `K_max`.
    pub k_max: u32,
    /// Comparison slack (bytes).
    pub eps: f64,
}

/// Evaluate the add conditions for growing from `n_active` to `n_active+1`
/// layers. `seq` must be the current filling-phase state sequence (built for
/// `n_active` layers at the current rate) and `next_seq` the sequence for
/// the *post-add* configuration (`n_active+1` layers, same rate).
///
/// The buffer condition is checked against both: the current path (§3.1
/// verbatim) and the post-add path (see
/// [`StateSequence::satisfied_up_to_k_post_add`]). The second check matters
/// most when consumption is small relative to the rate — the current path's
/// triangles are then tiny and near-vacuous, yet the moment the layer is
/// added the deficit a backoff must bridge jumps by a whole `C`, and the
/// buffers have to already carry that protection.
pub fn check_add(seq: &StateSequence, next_seq: &StateSequence, inputs: &AddInputs) -> AddCheck {
    let c = seq.layer_rate;
    AddCheck {
        bandwidth_ok: inputs.rate >= (inputs.n_active as f64 + 1.0) * c,
        buffer_ok: seq.satisfied_up_to_k(inputs.bufs, inputs.k_max, inputs.eps)
            && next_seq.satisfied_up_to_k_post_add(
                inputs.bufs,
                inputs.k_max,
                inputs.eps,
                inputs.n_active,
            ),
        capacity_ok: inputs.n_active < inputs.max_layers,
    }
}

/// Number of layers to drop right now (0 when none): the §2.2 rule at the
/// current post-backoff rate. Never drops the base layer.
pub fn drop_count(
    n_active: usize,
    layer_rate: f64,
    current_rate: f64,
    slope: f64,
    total_buffer: f64,
) -> usize {
    n_active - sustainable_layers(n_active, layer_rate, current_rate, slope, total_buffer)
}

/// The recovery buffer the §2.2 rule compares against when `n` layers are
/// playing and the *current* rate is `rate` (post-backoff, so no further
/// decrease is applied — the deficit is `n·C − rate`).
///
/// Equivalent to [`required_recovery_buffer_with`] at the paper's AIMD
/// halving factor `0.5` (bit-identical: `x * 2.0 ≡ x / 0.5`).
pub fn required_recovery_buffer(n: usize, layer_rate: f64, rate: f64, slope: f64) -> f64 {
    required_recovery_buffer_with(n, layer_rate, rate, slope, 0.5)
}

/// [`required_recovery_buffer`] generalized to an arbitrary decrease
/// factor: the pre-backoff peak is reconstructed as `rate / factor` so the
/// recovery geometry un-does exactly the decrease the controller applied.
/// Analytically the result is the deficit triangle at the post-backoff
/// `rate` for every factor; threading the factor keeps the peak
/// reconstruction honest (and bit-exact at the 0.5 default).
pub fn required_recovery_buffer_with(
    n: usize,
    layer_rate: f64,
    rate: f64,
    slope: f64,
    decrease_factor: f64,
) -> f64 {
    // recovery_buffer_with scales its rate argument by the factor (it
    // models a future backoff from a filling-phase rate); here the backoff
    // already happened, so the peak is first reconstructed.
    recovery_buffer_with(
        n as f64 * layer_rate,
        rate / decrease_factor,
        slope,
        decrease_factor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::StateSequence;

    const C: f64 = 10_000.0;
    const S: f64 = 25_000.0;

    fn check(rate: f64, bufs: &[f64], n: usize, max_layers: usize) -> AddCheck {
        let seq = StateSequence::build(rate, n, C, S, 8);
        let next = StateSequence::build(rate, n + 1, C, S, 8);
        check_add(
            &seq,
            &next,
            &AddInputs {
                bufs,
                rate,
                n_active: n,
                max_layers,
                k_max: 2,
                eps: 1.0,
            },
        )
    }

    #[test]
    fn add_requires_instantaneous_headroom() {
        let c = check(35_000.0, &[1e9; 3], 3, 10);
        assert!(!c.bandwidth_ok, "35 KB/s cannot carry 4 layers");
        assert!(c.buffer_ok);
        assert!(!c.all_ok());

        let c = check(41_000.0, &[1e9; 3], 3, 10);
        assert!(c.all_ok());
    }

    #[test]
    fn add_requires_buffer_condition() {
        let c = check(50_000.0, &[0.0; 3], 3, 10);
        assert!(c.bandwidth_ok);
        assert!(!c.buffer_ok);
        assert!(!c.all_ok());
    }

    #[test]
    fn add_requires_post_add_protection() {
        // The buffers satisfy the 1-layer path (whose requirements are
        // tiny: rate far above C makes k1 large and the triangles small) but
        // not the base-layer share of the 2-layer path the add would enter.
        let rate = 31_000.0;
        let seq = StateSequence::build(rate, 1, C, S, 8);
        let bufs = [400.0];
        assert!(
            seq.satisfied_up_to_k(&bufs, 2, 1.0),
            "current path alone must pass, or this test shows nothing"
        );
        let c = check(rate, &bufs, 1, 10);
        assert!(c.bandwidth_ok);
        assert!(
            !c.buffer_ok,
            "post-add path must demand real base-layer reserve"
        );
    }

    #[test]
    fn add_blocked_at_max_layers() {
        let c = check(50_000.0, &[1e9; 3], 3, 3);
        assert!(!c.capacity_ok);
        assert!(!c.all_ok());
    }

    #[test]
    fn drop_count_zero_with_sufficient_buffer() {
        // 3 layers at 15 KB/s: deficit 15 KB/s needs 4500 B.
        assert_eq!(drop_count(3, C, 15_000.0, S, 5_000.0), 0);
    }

    #[test]
    fn drop_count_sheds_layers_without_buffer() {
        // 3 layers, rate 15 KB/s, no buffer: only rate-covered layers and
        // one partially-covered survive the while-loop: 3C-15k=15k>0 →
        // drop to 2; 2C-15k=5k>0 → drop to 1? sqrt(0)=0, 5k>0 → n=1.
        assert_eq!(drop_count(3, C, 15_000.0, S, 0.0), 2);
    }

    #[test]
    fn required_recovery_buffer_matches_triangle() {
        // 3 layers, current rate 10 KB/s: deficit 20 KB/s → 20k²/(2·25k).
        let req = required_recovery_buffer(3, C, 10_000.0, S);
        assert!((req - 8_000.0).abs() < 1e-6);
    }

    #[test]
    fn required_recovery_buffer_zero_when_rate_covers() {
        assert_eq!(required_recovery_buffer(2, C, 25_000.0, S), 0.0);
    }

    #[test]
    fn required_recovery_buffer_with_half_is_bit_identical() {
        for n in 1..=6usize {
            for &rate in &[0.0, 5_000.0, 10_000.0, 23_456.78, 40_000.0] {
                let old = required_recovery_buffer(n, C, rate, S);
                let new = required_recovery_buffer_with(n, C, rate, S, 0.5);
                assert_eq!(old.to_bits(), new.to_bits(), "n={n} rate={rate}");
            }
        }
    }

    #[test]
    fn required_recovery_buffer_factor_invariant_at_post_rate() {
        // The §2.2 comparison operates on the *post-backoff* rate: whatever
        // factor produced it, the deficit (and so the requirement) is the
        // same up to float dust from the peak reconstruction round-trip.
        for &f in &[0.7, 0.85] {
            for n in 1..=5usize {
                for &rate in &[5_000.0, 12_500.0, 30_000.0] {
                    let want = crate::geometry::triangle_area(
                        crate::geometry::deficit(n as f64 * C, rate),
                        S,
                    );
                    let got = required_recovery_buffer_with(n, C, rate, S, f);
                    assert!(
                        (got - want).abs() <= 1e-9 * want.max(1.0),
                        "f={f} n={n} rate={rate}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn gentler_factor_backoffs_shed_fewer_layers() {
        // Same peak (52 KB/s, 4 layers, no buffer), three controllers: the
        // harder the backoff, the more layers the drop rule sheds.
        let peak = 52_000.0;
        let drops_at = |f: f64| drop_count(4, C, peak * f, S, 0.0);
        let d50 = drops_at(0.5);
        let d70 = drops_at(0.7);
        let d85 = drops_at(0.85);
        assert!(d50 >= d70 && d70 >= d85, "{d50} {d70} {d85}");
        assert!(d50 > d85, "halving from 52 KB/s must shed more than a 0.85 backoff");
    }
}
