//! RAP's optional fine-grain rate adaptation.
//!
//! The RAP variant with fine-grain adaptation scales the inter-packet gap
//! continuously by the ratio of a short-term to a long-term RTT average, so
//! the flow eases off slightly as queues build (a delay-based congestion
//! *avoidance* hint layered on the coarse AIMD machinery). The quality
//! adaptation paper deliberately evaluates the variant **without** this
//! mechanism because its sawtooth is easier to predict; we implement it so
//! the ablation can quantify that choice, but it is off by default.


/// Short/long RTT ratio estimator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FineGrain {
    short: f64,
    long: f64,
    seeded: bool,
    /// EWMA gain for the short-term average.
    short_gain: f64,
    /// EWMA gain for the long-term average.
    long_gain: f64,
    /// Clamp for the returned scaling factor.
    clamp: (f64, f64),
}

impl Default for FineGrain {
    fn default() -> Self {
        FineGrain {
            short: 0.0,
            long: 0.0,
            seeded: false,
            // RAP uses gains of roughly 1/8 (short) and 1/64 (long).
            short_gain: 1.0 / 8.0,
            long_gain: 1.0 / 64.0,
            clamp: (0.5, 2.0),
        }
    }
}

impl FineGrain {
    /// New estimator with default gains.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb an RTT sample (seconds).
    pub fn sample(&mut self, rtt: f64) {
        if !(rtt.is_finite() && rtt > 0.0) {
            return;
        }
        if !self.seeded {
            self.short = rtt;
            self.long = rtt;
            self.seeded = true;
            return;
        }
        self.short += (rtt - self.short) * self.short_gain;
        self.long += (rtt - self.long) * self.long_gain;
    }

    /// IPG scaling factor: `short/long`, clamped. Values above 1 stretch
    /// the gap (RTTs rising → back off slightly); below 1 shrink it.
    pub fn ipg_factor(&self) -> f64 {
        if !self.seeded || self.long <= 0.0 {
            return 1.0;
        }
        (self.short / self.long).clamp(self.clamp.0, self.clamp.1)
    }

    /// Short-term RTT average.
    pub fn short_term(&self) -> f64 {
        self.short
    }

    /// Long-term RTT average.
    pub fn long_term(&self) -> f64 {
        self.long
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_factor_before_seeding() {
        assert_eq!(FineGrain::new().ipg_factor(), 1.0);
    }

    #[test]
    fn rising_rtt_stretches_gap() {
        let mut f = FineGrain::new();
        for _ in 0..100 {
            f.sample(0.1);
        }
        for _ in 0..10 {
            f.sample(0.3);
        }
        assert!(f.ipg_factor() > 1.0, "factor {}", f.ipg_factor());
    }

    #[test]
    fn falling_rtt_shrinks_gap() {
        let mut f = FineGrain::new();
        for _ in 0..200 {
            f.sample(0.3);
        }
        for _ in 0..10 {
            f.sample(0.1);
        }
        assert!(f.ipg_factor() < 1.0);
    }

    #[test]
    fn factor_clamped() {
        let mut f = FineGrain::new();
        for _ in 0..500 {
            f.sample(0.01);
        }
        for _ in 0..50 {
            f.sample(10.0);
        }
        assert!(f.ipg_factor() <= 2.0);
    }

    #[test]
    fn steady_rtt_gives_unity() {
        let mut f = FineGrain::new();
        for _ in 0..1000 {
            f.sample(0.2);
        }
        assert!((f.ipg_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn garbage_samples_ignored() {
        let mut f = FineGrain::new();
        f.sample(f64::NAN);
        f.sample(-3.0);
        assert_eq!(f.ipg_factor(), 1.0);
    }
}
