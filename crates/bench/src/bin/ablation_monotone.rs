//! **Ablation (DESIGN.md §7.1)** — the figure-10 monotone clamp vs the
//! naive sort-by-total state order.
//!
//! The naive order requires *draining* some layer's buffer while still in
//! the filling phase (the paper shows `{S2,k2} → {S1,k2}` and
//! `{S1,k4} → {S2,k3}` doing so). We sweep operating points, count those
//! inversions, and measure the extra buffering the clamp costs in
//! exchange.

use laqa_bench::outdir;
use laqa_core::StateSequence;
use laqa_trace::{RunSummary, Table};

fn main() {
    let c = 10_000.0;
    let mut tbl = Table::new(
        "Ablation: naive state order vs monotone clamp",
        &[
            "n_a",
            "R/nC",
            "S",
            "naive drain transitions",
            "clamp overhead",
        ],
    );
    let mut total_points = 0usize;
    let mut points_with_inversions = 0usize;
    let mut worst_overhead = 0.0f64;

    for n in [2usize, 3, 4, 5, 6] {
        for rate_mult in [1.1f64, 1.4, 1.8, 2.5] {
            for s in [6_250.0f64, 12_500.0, 50_000.0] {
                let rate = rate_mult * n as f64 * c;
                let seq = StateSequence::build(rate, n, c, s, 6);
                if seq.states.is_empty() {
                    continue;
                }
                total_points += 1;
                let mut inversions = 0;
                for w in seq.states.windows(2) {
                    if (0..n).any(|i| w[1].raw_per_layer[i] < w[0].raw_per_layer[i] - 1e-6) {
                        inversions += 1;
                    }
                }
                if inversions > 0 {
                    points_with_inversions += 1;
                }
                // Clamp overhead: extra bytes the monotone targets require
                // at the final state vs the raw optimum.
                let last = seq.states.last().unwrap();
                let overhead = if last.raw_total() > 0.0 {
                    (last.total() - last.raw_total()) / last.raw_total()
                } else {
                    0.0
                };
                worst_overhead = worst_overhead.max(overhead);
                if inversions > 0 || overhead > 0.01 {
                    tbl.row(vec![
                        n.to_string(),
                        format!("{rate_mult:.1}"),
                        format!("{s:.0}"),
                        inversions.to_string(),
                        format!("{:.1}%", 100.0 * overhead),
                    ]);
                }
            }
        }
    }

    println!("{}", tbl.render());
    println!(
        "operating points with naive-order drain transitions: {points_with_inversions}/{total_points}"
    );
    println!(
        "worst clamp overhead at the final state: {:.1}%",
        100.0 * worst_overhead
    );
    println!("expected shape: inversions are common (the fig-9 phenomenon is");
    println!("not a corner case), and the clamp's cost — a few percent of");
    println!("extra protective buffering — buys a drain-free filling path.");

    let dir = outdir("ablation_monotone");
    let mut summary = RunSummary::new("ablation_monotone");
    summary
        .metric("points", total_points as f64)
        .metric("points_with_inversions", points_with_inversions as f64)
        .metric("worst_overhead", worst_overhead);
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());

    assert!(
        points_with_inversions > 0,
        "the fig-9 phenomenon must appear"
    );
}
