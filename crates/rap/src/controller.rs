//! The [`RateController`] abstraction: what the quality-adaptation layer
//! actually consumes of a congestion controller.
//!
//! The paper's QA machinery (§3–§4) needs remarkably little from the
//! transport underneath it: the current transmission rate, the additive
//! slope of its increase phase (for the deficit-triangle geometry), backoff
//! notifications carrying the *realized* decrease, and a way to pace or
//! clock packets out. This trait captures exactly that surface so the QA
//! agent can run unchanged over RAP (rate-paced AIMD), a TCP-like windowed
//! sender, a BBR-style delivery-rate prober, or a NADA-style delay-gradient
//! controller.
//!
//! # Pacing vs ACK-clocking
//!
//! The one genuine impedance mismatch between those families is *when a
//! packet may leave*. Paced senders own a future deadline; ACK-clocked
//! senders can only answer "now or not now". [`next_send_time`] bridges
//! both: it takes the current time and returns the earliest permissible
//! transmission instant — a paced sender ignores `now` and returns its
//! deadline, an ACK-clocked sender returns `now` while the window has room
//! and `INFINITY` once it is exhausted. The owner's loop
//! `while now >= ctl.next_send_time(now) { send }` is then correct for
//! every controller.
//!
//! [`next_send_time`]: RateController::next_send_time

use crate::receiver::AckInfo;
use crate::sender::{RapEvent, RapSender};
use crate::window::WindowSender;

/// A congestion controller usable underneath the quality-adaptation layer.
///
/// Implementations must be deterministic: the same sequence of calls with
/// the same arguments must produce the same state and events, bit for bit
/// — the simulator's replay fingerprints depend on it.
pub trait RateController {
    /// Current transmission rate (bytes/s).
    fn rate(&self) -> f64;

    /// Additive-increase slope `S` (bytes/s²) the QA geometry should plan
    /// with. For controllers whose probing is not strictly additive this
    /// is the local linearization of the increase phase.
    fn slope(&self) -> f64;

    /// Earliest time a packet may be transmitted. Paced controllers ignore
    /// `now`; ACK-clocked controllers return `now` while the window has
    /// room and `f64::INFINITY` otherwise (see module docs).
    fn next_send_time(&self, now: f64) -> f64;

    /// Next timer deadline (increase step, probe-cycle advance, or timeout
    /// clock) the owner should poll at.
    fn next_timer(&self) -> f64;

    /// Register a transmission of `size` bytes tagged `tag`; returns the
    /// sequence number to put on the wire.
    fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64;

    /// Process an arriving ACK.
    fn on_ack(&mut self, now: f64, ack: AckInfo);

    /// Poll internal timers. Call at least as often as
    /// [`next_timer`](Self::next_timer) suggests.
    fn poll_timers(&mut self, now: f64);

    /// Drain accumulated protocol events into `out`, preserving both
    /// buffers' capacity.
    fn drain_events_into(&mut self, out: &mut Vec<RapEvent>);

    /// Reset to the freshly-constructed state with the clock at
    /// `start_at` (delayed flow start, fault-recovery restart).
    fn restart(&mut self, start_at: f64);

    /// The rate the per-tick QA allocation should plan with. Defaults to
    /// the instantaneous [`rate`](Self::rate); controllers whose
    /// instantaneous rate is jumpy (ACK-clocked windows in slow start)
    /// override this with a smoothed variant.
    fn tick_rate(&self) -> f64 {
        self.rate()
    }

    /// Nominal multiplicative decrease factor of this controller: a
    /// backoff from rate `R` lands near `R · decrease_factor`. The QA
    /// layer threads this into its recovery geometry
    /// (`QaConfig::decrease_factor`). Must lie strictly in `(0, 1)`.
    fn decrease_factor(&self) -> f64 {
        0.5
    }
}

impl RateController for RapSender {
    fn rate(&self) -> f64 {
        RapSender::rate(self)
    }

    fn slope(&self) -> f64 {
        RapSender::slope(self)
    }

    fn next_send_time(&self, _now: f64) -> f64 {
        RapSender::next_send_time(self)
    }

    fn next_timer(&self) -> f64 {
        RapSender::next_timer(self)
    }

    fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64 {
        RapSender::register_send(self, now, size, tag)
    }

    fn on_ack(&mut self, now: f64, ack: AckInfo) {
        RapSender::on_ack(self, now, ack)
    }

    fn poll_timers(&mut self, now: f64) {
        RapSender::poll_timers(self, now)
    }

    fn drain_events_into(&mut self, out: &mut Vec<RapEvent>) {
        RapSender::drain_events_into(self, out)
    }

    fn restart(&mut self, start_at: f64) {
        *self = RapSender::new(self.config().clone(), start_at);
    }
}

impl RateController for WindowSender {
    fn rate(&self) -> f64 {
        WindowSender::rate(self)
    }

    fn slope(&self) -> f64 {
        WindowSender::slope(self)
    }

    fn next_send_time(&self, now: f64) -> f64 {
        if self.can_send() {
            now
        } else {
            f64::INFINITY
        }
    }

    fn next_timer(&self) -> f64 {
        WindowSender::next_timer(self)
    }

    fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64 {
        WindowSender::register_send(self, now, size, tag)
    }

    fn on_ack(&mut self, now: f64, ack: AckInfo) {
        WindowSender::on_ack(self, now, ack)
    }

    fn poll_timers(&mut self, now: f64) {
        WindowSender::poll_timers(self, now)
    }

    fn drain_events_into(&mut self, out: &mut Vec<RapEvent>) {
        WindowSender::drain_events_into(self, out)
    }

    fn restart(&mut self, start_at: f64) {
        *self = WindowSender::new(self.config().clone(), start_at);
    }

    fn tick_rate(&self) -> f64 {
        self.smoothed_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::RapReceiverState;
    use crate::sender::RapConfig;
    use crate::window::WindowConfig;

    /// Drive any controller through a lossless echo path for `dur` seconds
    /// with one-way delay `owd`, using only the trait surface.
    fn run_clean<T: RateController>(ctl: &mut T, dur: f64, owd: f64) {
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipe: Vec<(f64, u64)> = Vec::new();
        while now < dur {
            ctl.poll_timers(now);
            while !pipe.is_empty() && pipe[0].0 <= now {
                let (_, seq) = pipe.remove(0);
                ctl.on_ack(now, rx.on_data(seq));
            }
            while now >= ctl.next_send_time(now) {
                let seq = ctl.register_send(now, 1_000.0, 0);
                pipe.push((now + 2.0 * owd, seq));
            }
            now += 0.001;
        }
    }

    #[test]
    fn rap_behind_trait_matches_direct_driving() {
        // The exact driving loop from the sender's own tests, expressed
        // through the trait, must leave the sender in the same state.
        let cfg = RapConfig {
            initial_rate: 10_000.0,
            initial_rtt: 0.1,
            ..RapConfig::default()
        };
        let mut via_trait = RapSender::new(cfg.clone(), 0.0);
        run_clean(&mut via_trait, 2.0, 0.05);

        let mut direct = RapSender::new(cfg, 0.0);
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipe: Vec<(f64, u64)> = Vec::new();
        while now < 2.0 {
            direct.poll_timers(now);
            while !pipe.is_empty() && pipe[0].0 <= now {
                let (_, seq) = pipe.remove(0);
                direct.on_ack(now, rx.on_data(seq));
            }
            while now >= direct.next_send_time() {
                let seq = direct.register_send(now, 1_000.0, 0);
                pipe.push((now + 0.1, seq));
            }
            now += 0.001;
        }
        assert_eq!(via_trait.rate().to_bits(), direct.rate().to_bits());
        assert_eq!(
            RateController::slope(&via_trait).to_bits(),
            direct.slope().to_bits()
        );
        assert_eq!(via_trait.srtt().to_bits(), direct.srtt().to_bits());
    }

    #[test]
    fn window_sender_clocks_on_acks() {
        let mut w = WindowSender::new(
            WindowConfig {
                initial_rtt: 0.05,
                ..WindowConfig::default()
            },
            0.0,
        );
        // Window open → send now; exhausted → never.
        assert_eq!(RateController::next_send_time(&w, 1.0), 1.0);
        let cap = w.cwnd().floor() as usize;
        for _ in 0..cap {
            RateController::register_send(&mut w, 1.0, 1_000.0, 0);
        }
        assert_eq!(RateController::next_send_time(&w, 1.0), f64::INFINITY);
        run_clean(&mut w, 2.0, 0.02);
        assert!(w.rate() > 100_000.0, "window must open: {}", w.rate());
        assert!(w.tick_rate() > 0.0 && w.tick_rate().is_finite());
    }

    #[test]
    fn restart_resets_to_fresh_state() {
        let mut s = RapSender::new(RapConfig::default(), 0.0);
        run_clean(&mut s, 1.0, 0.02);
        let mut drained = Vec::new();
        RateController::drain_events_into(&mut s, &mut drained);
        RateController::restart(&mut s, 5.0);
        let fresh = RapSender::new(RapConfig::default(), 5.0);
        assert_eq!(s.rate().to_bits(), fresh.rate().to_bits());
        assert_eq!(
            RateController::next_send_time(&s, 5.0).to_bits(),
            fresh.next_send_time().to_bits()
        );
        let mut w = WindowSender::new(WindowConfig::default(), 0.0);
        run_clean(&mut w, 1.0, 0.02);
        RateController::restart(&mut w, 5.0);
        let fresh = WindowSender::new(WindowConfig::default(), 0.0);
        assert_eq!(w.cwnd().to_bits(), fresh.cwnd().to_bits());
    }

    #[test]
    fn nominal_decrease_factors_in_unit_interval() {
        let s = RapSender::new(RapConfig::default(), 0.0);
        let w = WindowSender::new(WindowConfig::default(), 0.0);
        for f in [s.decrease_factor(), w.decrease_factor()] {
            assert!(f > 0.0 && f < 1.0, "nominal factor {f}");
        }
    }
}
