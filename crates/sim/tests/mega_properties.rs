//! Randomized multiplexing properties for the megasession engine, driven
//! by `laqa_check`'s seeded generator: arbitrary mixes of sessions —
//! heterogeneous workloads, staggered global start times, mixed fault
//! intensities — run on one shared engine must produce per-session traces
//! bit-identical to isolated reruns. Any divergence is cross-session
//! state bleed (shared RNG draws, leaked timers, arena aliasing), which
//! the seeded generator hunts for in corners the differential suite's
//! fixed grids never visit.

use laqa_check::{cases, Gen};
use laqa_sim::campaign::{run_campaign_opts, CampaignOptions, CampaignSpec, TestKind};
use laqa_sim::{
    hash_outcome, run_scenario_with, run_scenarios_mega_staggered, FaultPlan, ScenarioConfig,
    SchedulerKind,
};

/// Draw one random session: workload, smoothing, seed, duration, fault
/// intensity and global start offset.
fn gen_session(g: &mut Gen, short: bool) -> (ScenarioConfig, f64) {
    let k_max = *g.pick(&[1, 2, 4]);
    let seed = g.u64_in(1, 1 << 40);
    // Short sessions keep the 64-way cases affordable; long ones reach
    // past qa_start (5 s) so the QA controller actually ticks.
    let duration = if short {
        g.f64_range(1.5, 3.0)
    } else {
        g.f64_range(6.0, 9.0)
    };
    let mut cfg = if g.bool(0.7) {
        ScenarioConfig::t1(k_max, duration, seed)
    } else {
        ScenarioConfig::t2(k_max, duration, seed)
    };
    if g.bool(0.4) {
        cfg.faults = FaultPlan::suite(g.f64_range(0.3, 1.0));
    }
    let offset = g.f64_range(0.0, 2.0);
    (cfg, offset)
}

#[test]
fn multiplexed_sessions_match_isolated_reruns() {
    // One population size per case, cycling through the interesting
    // sizes: degenerate (1), minimal interleaving (2), odd prime (17,
    // exercises slot reuse across chunks of the table), and wide (64).
    const SIZES: [usize; 4] = [1, 2, 17, 64];
    cases("mega_no_state_bleed", 8, |g, case| {
        let n = SIZES[case % SIZES.len()];
        let kind = *g.pick(&SchedulerKind::ALL);
        let sessions: Vec<(ScenarioConfig, f64)> = (0..n)
            .map(|i| {
                // In wide populations only a few sessions run long; in
                // narrow ones all of them do.
                let short = n >= 17 && i % 8 != 0;
                gen_session(g, short)
            })
            .collect();
        let mega = run_scenarios_mega_staggered(&sessions, kind);
        assert_eq!(mega.len(), n);
        for (i, ((cfg, offset), out)) in sessions.iter().zip(&mega).enumerate() {
            let solo = run_scenario_with(cfg, kind);
            assert_eq!(
                hash_outcome(&solo),
                hash_outcome(out),
                "case {case}: session {i}/{n} (offset {offset:.3}, {} sched) \
                 diverged from its isolated rerun",
                kind.label()
            );
            assert_eq!(solo.events_processed, out.events_processed);
        }
    });
}

#[test]
fn random_batching_knobs_match_cold_percell_reference() {
    // Hot/cold-split stress: random grids run with random steal-chunk
    // and service-slice knobs retire, bank and re-admit sessions through
    // the hot SoA column in arbitrary patterns — small chunks churn slot
    // reuse, small slices force constant hot-column re-scans, warm pools
    // recycle retired storage across chunks. The cold per-cell executor
    // is the oracle: every knob combination must reproduce it bit for
    // bit, session by session.
    cases("mega_hot_cold_split_stress", 6, |g, case| {
        let both = [TestKind::T1, TestKind::T2];
        let tests: &[TestKind] = if g.bool(0.5) { &both } else { &both[..1] };
        let k_values = [*g.pick(&[1u32, 2, 4]), 2];
        let seeds: Vec<u64> = (0..g.usize_in(2, 4)).map(|_| g.u64_in(1, 1 << 40)).collect();
        let spec = CampaignSpec::grid(tests, &k_values, &seeds, g.f64_range(5.5, 7.0));
        let kind = *g.pick(&SchedulerKind::ALL);
        let threads = *g.pick(&[1usize, 2, 8]);
        let chunk = g.usize_in(1, 9);
        let slice = *g.pick(&[0.0, 0.001, 0.05, f64::INFINITY]);
        let reference = run_campaign_opts(&spec, CampaignOptions::new(1).cold());
        let mut opts = CampaignOptions::new(threads)
            .sched(kind)
            .mega()
            .mega_chunk(chunk)
            .mega_slice(slice);
        if g.bool(0.3) {
            opts = opts.cold();
        }
        let got = run_campaign_opts(&spec, opts);
        assert_eq!(
            got.fingerprint(),
            reference.fingerprint(),
            "case {case}: mega ({} sched, threads={threads}, chunk={chunk}, \
             slice={slice}) diverged from the cold per-cell reference",
            kind.label()
        );
        for (a, b) in reference.sessions.iter().zip(&got.sessions) {
            assert_eq!(a.trace_hash, b.trace_hash, "case {case}: cell {} diverged", a.spec.label());
            assert_eq!(a.events_processed, b.events_processed);
        }
    });
}

#[test]
fn interleaving_pattern_is_invisible_to_every_session() {
    // The same session population under two different stagger patterns
    // interleaves completely differently on the shared queue — yet every
    // per-session trace must be identical between the two runs (and the
    // offset-zero run). Mega-to-mega comparison, so this stays cheap even
    // with both scheduler kinds.
    cases("mega_interleaving_invariance", 6, |g, case| {
        let n = g.usize_in(3, 12);
        let kind = *g.pick(&SchedulerKind::ALL);
        let base: Vec<(ScenarioConfig, f64)> =
            (0..n).map(|_| (gen_session(g, true).0, 0.0)).collect();
        let pattern_a: Vec<(ScenarioConfig, f64)> = base
            .iter()
            .map(|(cfg, _)| (cfg.clone(), g.f64_range(0.0, 1.5)))
            .collect();
        let pattern_b: Vec<(ScenarioConfig, f64)> = base
            .iter()
            .map(|(cfg, _)| (cfg.clone(), g.f64_range(0.0, 1.5)))
            .collect();
        let zero = run_scenarios_mega_staggered(&base, kind);
        let a = run_scenarios_mega_staggered(&pattern_a, kind);
        let b = run_scenarios_mega_staggered(&pattern_b, kind);
        for i in 0..n {
            let h0 = hash_outcome(&zero[i]);
            assert_eq!(
                h0,
                hash_outcome(&a[i]),
                "case {case}: session {i} changed under stagger pattern A"
            );
            assert_eq!(
                h0,
                hash_outcome(&b[i]),
                "case {case}: session {i} changed under stagger pattern B"
            );
        }
    });
}
