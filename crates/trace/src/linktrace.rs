//! Zero-dependency parser for recorded link-condition traces.
//!
//! The format is deliberately the least structured thing that can carry a
//! piecewise link schedule — the same shape as the public cellular traces
//! (Mahimahi/Pantheon-style capacity logs) after a one-line awk pass:
//!
//! ```text
//! # time_secs  bandwidth_Bps  [delay_secs|-]  [loss|-]
//! 0.0   100000
//! 0.5    40000  0.030
//! 1.25  120000  -      0.02
//! ```
//!
//! One schedule point per line: the time the point takes effect (strictly
//! increasing, first point at `t >= 0`), the link bandwidth in bytes per
//! second, and optionally a propagation delay (seconds) and a random-loss
//! probability. A `-` (or an omitted trailing column) leaves that knob at
//! whatever the link currently has — recorded traces usually only know
//! capacity. Blank lines and `#` comments are skipped.
//!
//! This module only parses; the simulator's `TraceSchedule` (in
//! `laqa_sim::link`) owns interpolation, looping and replay semantics.

/// One parsed schedule point of a recorded link trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTracePoint {
    /// Time the point takes effect (seconds from trace start).
    pub at: f64,
    /// Link bandwidth from `at` onward (bytes/s).
    pub bandwidth: f64,
    /// Propagation delay from `at` onward (seconds); `None` keeps the
    /// link's current delay.
    pub delay: Option<f64>,
    /// Random per-packet loss probability from `at` onward; `None` keeps
    /// the link's current loss rate.
    pub loss: Option<f64>,
}

/// Parse a recorded link trace (see the module docs for the format).
///
/// Returns the points in file order. Errors (with a 1-based line number)
/// on malformed numbers, non-increasing times, negative times or delays,
/// non-positive bandwidths, and loss probabilities outside `[0, 1]`.
pub fn parse_link_trace(text: &str) -> Result<Vec<LinkTracePoint>, String> {
    let mut points: Vec<LinkTracePoint> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut cols = line.split_whitespace();
        let Some(t_col) = cols.next() else {
            continue; // blank or comment-only line
        };
        let at = parse_field(t_col, "time", lineno)?;
        if at < 0.0 {
            return Err(format!("line {lineno}: negative time {at}"));
        }
        if let Some(prev) = points.last() {
            if at <= prev.at {
                return Err(format!(
                    "line {lineno}: time {at} not after previous point {}",
                    prev.at
                ));
            }
        }
        let bw_col = cols
            .next()
            .ok_or_else(|| format!("line {lineno}: missing bandwidth column"))?;
        let bandwidth = parse_field(bw_col, "bandwidth", lineno)?;
        if bandwidth <= 0.0 {
            return Err(format!(
                "line {lineno}: bandwidth must be positive, got {bandwidth}"
            ));
        }
        let delay = parse_optional(cols.next(), "delay", lineno)?;
        if let Some(d) = delay {
            if d < 0.0 {
                return Err(format!("line {lineno}: negative delay {d}"));
            }
        }
        let loss = parse_optional(cols.next(), "loss", lineno)?;
        if let Some(l) = loss {
            if !(0.0..=1.0).contains(&l) {
                return Err(format!("line {lineno}: loss {l} outside [0, 1]"));
            }
        }
        if let Some(extra) = cols.next() {
            return Err(format!("line {lineno}: unexpected column {extra:?}"));
        }
        points.push(LinkTracePoint {
            at,
            bandwidth,
            delay,
            loss,
        });
    }
    if points.is_empty() {
        return Err("trace contains no schedule points".to_string());
    }
    Ok(points)
}

fn parse_field(col: &str, what: &str, lineno: usize) -> Result<f64, String> {
    let v: f64 = col
        .parse()
        .map_err(|_| format!("line {lineno}: bad {what} {col:?}"))?;
    if !v.is_finite() {
        return Err(format!("line {lineno}: {what} must be finite, got {col:?}"));
    }
    Ok(v)
}

fn parse_optional(col: Option<&str>, what: &str, lineno: usize) -> Result<Option<f64>, String> {
    match col {
        None | Some("-") => Ok(None),
        Some(c) => parse_field(c, what, lineno).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_sparse_rows() {
        let text = "\
# capacity trace
0.0   100000
0.5    40000  0.030

1.25  120000  -      0.02   # back up, but lossy
";
        let pts = parse_link_trace(text).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].at, 0.0);
        assert_eq!(pts[0].bandwidth, 100_000.0);
        assert_eq!(pts[0].delay, None);
        assert_eq!(pts[1].delay, Some(0.030));
        assert_eq!(pts[1].loss, None);
        assert_eq!(pts[2].delay, None, "- keeps the current delay");
        assert_eq!(pts[2].loss, Some(0.02));
    }

    #[test]
    fn rejects_non_increasing_times() {
        let err = parse_link_trace("0.0 100\n0.0 200\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_link_trace("1.0 100\n0.5 200\n").is_err());
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_link_trace("").is_err(), "empty trace");
        assert!(parse_link_trace("0.0\n").is_err(), "missing bandwidth");
        assert!(parse_link_trace("0.0 -5\n").is_err(), "negative bandwidth");
        assert!(parse_link_trace("0.0 0\n").is_err(), "zero bandwidth");
        assert!(parse_link_trace("-1.0 100\n").is_err(), "negative time");
        assert!(parse_link_trace("0.0 100 0.01 1.5\n").is_err(), "loss > 1");
        assert!(parse_link_trace("0.0 100 -0.1\n").is_err(), "neg delay");
        assert!(parse_link_trace("0.0 nan\n").is_err(), "non-finite");
        assert!(parse_link_trace("0.0 100 0.01 0.0 9\n").is_err(), "extra");
    }

    #[test]
    fn first_point_may_start_after_zero() {
        let pts = parse_link_trace("2.0 5000\n").unwrap();
        assert_eq!(pts[0].at, 2.0);
    }
}
