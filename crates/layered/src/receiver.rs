//! The layered receiver: per-layer buffers plus a playout clock.
//!
//! The receiver is the ground truth the sender's `laqa-core` estimates
//! approximate: packets arrive into per-layer buffers, and once playout has
//! started every *active* layer is consumed at its encoding rate. Underflows
//! are recorded per layer; a base-layer underflow is a visible playback
//! stall, a top-layer underflow accompanies (or forces) a quality drop.

use crate::buffer::LayerBuffer;
use crate::encoding::LayeredEncoding;

/// Receiver-side statistics snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReceiverStats {
    /// Bytes currently buffered per layer.
    pub buffered: Vec<f64>,
    /// Underflow events per layer.
    pub underflows: Vec<u64>,
    /// Starved bytes per layer.
    pub starved: Vec<f64>,
    /// Bytes written off per layer when its buffer was discarded (layer
    /// drops); without this, loss summaries under-report.
    pub discarded: Vec<f64>,
    /// Total bytes received per layer.
    pub received: Vec<f64>,
    /// Media position (seconds of content consumed).
    pub position: f64,
    /// Whether playout has started.
    pub playing: bool,
}

/// A receiving endpoint for a layered stream.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayeredReceiver {
    encoding: LayeredEncoding,
    buffers: Vec<LayerBuffer>,
    received: Vec<f64>,
    /// Number of layers currently being decoded.
    active: usize,
    /// Seconds of base-layer content required before playout starts.
    startup_secs: f64,
    playing: bool,
    /// Media position in seconds.
    position: f64,
}

impl LayeredReceiver {
    /// Create a receiver for `encoding`, initially decoding `active` layers,
    /// starting playout once `startup_secs` of base-layer data is buffered.
    pub fn new(encoding: LayeredEncoding, active: usize, startup_secs: f64) -> Self {
        let n = encoding.n_layers();
        LayeredReceiver {
            buffers: (0..n).map(|_| LayerBuffer::new()).collect(),
            received: vec![0.0; n],
            active: active.clamp(1, n),
            startup_secs: startup_secs.max(0.0),
            playing: false,
            position: 0.0,
            encoding,
        }
    }

    /// The encoding being received.
    pub fn encoding(&self) -> &LayeredEncoding {
        &self.encoding
    }

    /// Number of layers currently decoded.
    pub fn active_layers(&self) -> usize {
        self.active
    }

    /// Change the decoded layer count (server adds/drops are signalled in
    /// the data stream; the receiver follows).
    pub fn set_active_layers(&mut self, n: usize) {
        self.active = n.clamp(1, self.encoding.n_layers());
    }

    /// Whether playout has started.
    pub fn playing(&self) -> bool {
        self.playing
    }

    /// Media position (seconds consumed since playout start).
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Bytes buffered for `layer`.
    pub fn buffered(&self, layer: usize) -> f64 {
        self.buffers[layer].buffered()
    }

    /// Total bytes buffered across layers.
    pub fn total_buffered(&self) -> f64 {
        self.buffers.iter().map(|b| b.buffered()).sum()
    }

    /// Deliver `bytes` of `layer` data arriving at time `now`.
    pub fn on_data(&mut self, now: f64, layer: usize, bytes: f64) {
        if layer >= self.buffers.len() {
            return;
        }
        self.buffers[layer].push(now, bytes);
        self.received[layer] += bytes;
    }

    /// Advance wall-clock time by `dt` seconds: start playout when the
    /// startup condition is met, then consume every active layer at its
    /// rate. Returns the number of layers that underflowed during this step.
    pub fn advance(&mut self, dt: f64) -> usize {
        if dt <= 0.0 {
            return 0;
        }
        if !self.playing {
            let need = self.encoding.rate(0) * self.startup_secs;
            if self.buffers[0].buffered() >= need {
                self.playing = true;
            } else {
                return 0;
            }
        }
        let mut underflows = 0;
        for layer in 0..self.active {
            let want = self.encoding.rate(layer) * dt;
            let got = self.buffers[layer].consume(want);
            if got + 1e-9 < want {
                underflows += 1;
            }
        }
        self.position += dt;
        underflows
    }

    /// Write off a dropped layer's remaining buffer (it will still render,
    /// but it no longer counts toward recovery; §5's efficiency metric).
    pub fn discard_layer_buffer(&mut self, layer: usize) -> f64 {
        if layer >= self.buffers.len() {
            return 0.0;
        }
        self.buffers[layer].clear()
    }

    /// Total bytes written off across all layers by buffer discards.
    pub fn total_discarded(&self) -> f64 {
        self.buffers.iter().map(|b| b.discarded_bytes()).sum()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ReceiverStats {
        ReceiverStats {
            buffered: self.buffers.iter().map(|b| b.buffered()).collect(),
            underflows: self.buffers.iter().map(|b| b.underflow_events()).collect(),
            starved: self.buffers.iter().map(|b| b.starved_bytes()).collect(),
            discarded: self.buffers.iter().map(|b| b.discarded_bytes()).collect(),
            received: self.received.clone(),
            position: self.position,
            playing: self.playing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::LayeredEncoding;

    fn receiver(active: usize) -> LayeredReceiver {
        LayeredReceiver::new(LayeredEncoding::linear(4, 10_000.0).unwrap(), active, 0.5)
    }

    #[test]
    fn playout_waits_for_startup_buffer() {
        let mut r = receiver(1);
        r.on_data(0.0, 0, 4_000.0); // < 5000 needed
        assert_eq!(r.advance(0.1), 0);
        assert!(!r.playing());
        assert_eq!(r.position(), 0.0);
        r.on_data(0.1, 0, 2_000.0);
        r.advance(0.1);
        assert!(r.playing());
        assert!(r.position() > 0.0);
    }

    #[test]
    fn consumption_drains_active_layers_only() {
        let mut r = receiver(2);
        for l in 0..4 {
            r.on_data(0.0, l, 10_000.0);
        }
        r.advance(0.5);
        assert!((r.buffered(0) - 5_000.0).abs() < 1e-9);
        assert!((r.buffered(1) - 5_000.0).abs() < 1e-9);
        assert_eq!(r.buffered(2), 10_000.0);
        assert_eq!(r.buffered(3), 10_000.0);
    }

    #[test]
    fn underflow_counted_per_layer() {
        let mut r = receiver(3);
        r.on_data(0.0, 0, 20_000.0);
        r.on_data(0.0, 1, 1_000.0);
        // Layer 2 empty, layer 1 short: 1 s of playout needs 10 KB each.
        let u = r.advance(1.0);
        assert_eq!(u, 2);
        let stats = r.stats();
        assert_eq!(stats.underflows[0], 0);
        assert_eq!(stats.underflows[1], 1);
        assert_eq!(stats.underflows[2], 1);
    }

    #[test]
    fn set_active_layers_clamped() {
        let mut r = receiver(2);
        r.set_active_layers(0);
        assert_eq!(r.active_layers(), 1);
        r.set_active_layers(99);
        assert_eq!(r.active_layers(), 4);
    }

    #[test]
    fn discard_layer_buffer_returns_stranded_bytes() {
        let mut r = receiver(3);
        r.on_data(0.0, 2, 7_500.0);
        assert_eq!(r.discard_layer_buffer(2), 7_500.0);
        assert_eq!(r.buffered(2), 0.0);
        assert_eq!(r.discard_layer_buffer(2), 0.0);
        assert_eq!(r.discard_layer_buffer(99), 0.0);
    }

    #[test]
    fn discarded_bytes_surface_in_stats() {
        let mut r = receiver(3);
        r.on_data(0.0, 1, 2_000.0);
        r.on_data(0.0, 2, 7_500.0);
        r.discard_layer_buffer(2);
        r.discard_layer_buffer(1);
        r.on_data(1.0, 2, 500.0);
        r.discard_layer_buffer(2);
        let stats = r.stats();
        assert_eq!(stats.discarded, vec![0.0, 2_000.0, 8_000.0, 0.0]);
        assert_eq!(r.total_discarded(), 10_000.0);
        // Discarded data is not starvation: no underflows were charged.
        assert_eq!(stats.underflows, vec![0, 0, 0, 0]);
    }

    #[test]
    fn data_for_unknown_layer_ignored() {
        let mut r = receiver(1);
        r.on_data(0.0, 9, 1_000.0);
        assert_eq!(r.total_buffered(), 0.0);
    }

    #[test]
    fn steady_state_no_underflow_when_fed_at_rate() {
        let mut r = receiver(2);
        r.on_data(0.0, 0, 6_000.0);
        r.on_data(0.0, 1, 6_000.0);
        let mut underflows = 0;
        for i in 0..100 {
            let t = i as f64 * 0.1;
            r.on_data(t, 0, 1_000.0);
            r.on_data(t, 1, 1_000.0);
            underflows += r.advance(0.1);
        }
        assert_eq!(underflows, 0);
        assert!((r.position() - 10.0).abs() < 1e-9);
    }
}
