//! Bounded per-thread ring-buffer event log.
//!
//! Each thread appends to its own ring (registered globally on first
//! use), so logging never contends across workers; a ring holds the most
//! recent [`RING_CAPACITY`] events and counts what it evicted. At export
//! the rings are merged and sorted by `(sim-time, seq, target, fields)` —
//! a deterministic total order for any deterministic run, regardless of
//! which worker thread produced which event.
//!
//! Events are stamped with **simulation time** supplied by the caller
//! (engine/controller sites pass their `now`); host-side producers such
//! as the campaign workers pass `0.0` and rely on the sequence number.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Default events retained per thread before the oldest are evicted.
/// Override with the `LAQA_OBS_RING` environment variable (see
/// [`ring_capacity`]).
pub const RING_CAPACITY: usize = 4096;

static CAPACITY: OnceLock<usize> = OnceLock::new();

fn parse_capacity(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|v| v.max(16))
        .unwrap_or(RING_CAPACITY)
}

/// Per-thread ring capacity: the `LAQA_OBS_RING` environment variable
/// (read once, clamped to at least 16), else [`RING_CAPACITY`].
pub fn ring_capacity() -> usize {
    *CAPACITY.get_or_init(|| parse_capacity(std::env::var("LAQA_OBS_RING").ok().as_deref()))
}

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics.
    Debug,
    /// Normal operational events (adds, backoffs, phase changes).
    Info,
    /// Conditions that should be rare in a healthy run (stalls).
    Warn,
}

impl Level {
    /// Lower-case label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    /// Parse the export label back.
    pub fn from_label(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            _ => None,
        }
    }
}

/// A typed `key=value` field payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Static label (e.g. a `DropReason`).
    Str(&'static str),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

/// One structured log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    /// Simulation-time stamp (seconds); `0.0` for host-side events.
    pub time: f64,
    /// Per-thread sequence number (monotone within a producer thread).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Dotted event name, e.g. `qa.layer_drop`.
    pub target: &'static str,
    /// `key=value` payload in declaration order.
    pub fields: Vec<(&'static str, Value)>,
}

impl LogEvent {
    /// Render as a single `t=… target k=v …` line (obs-report format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("[{:<5}] t={:<10.4} {}", self.level.label(), self.time, self.target);
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

struct Ring {
    events: VecDeque<LogEvent>,
    next_seq: u64,
    evicted: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            events: VecDeque::with_capacity(ring_capacity().min(RING_CAPACITY)),
            next_seq: 0,
            evicted: 0,
        }
    }
}

static ALL_RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();

fn all_rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    ALL_RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

fn with_thread_ring(f: impl FnOnce(&mut Ring)) {
    THREAD_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring::new()));
            all_rings().lock().expect("obs rings").push(ring.clone());
            ring
        });
        f(&mut ring.lock().expect("obs ring"));
    });
}

/// Append an event to the calling thread's ring. Callers should gate on
/// [`crate::enabled`] first (the [`crate::event!`] macro does) so the
/// field vector is never built while disabled; this function re-checks
/// and drops the event if obs is off.
pub fn log_event(level: Level, target: &'static str, time: f64, fields: Vec<(&'static str, Value)>) {
    if !crate::enabled() {
        return;
    }
    with_thread_ring(|ring| {
        if ring.events.len() >= ring_capacity() {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.events.push_back(LogEvent {
            time,
            seq,
            level,
            target,
            fields,
        });
    });
}

/// Merge every thread's ring into one deterministically ordered log.
/// Returns `(events, total_evicted)`; eviction counts make silent
/// truncation visible in reports (snapshots surface the total as the
/// `obs.ring_evicted` counter).
pub(crate) fn merged() -> (Vec<LogEvent>, u64) {
    let mut out = Vec::new();
    let mut evicted = 0;
    for ring in all_rings().lock().expect("obs rings").iter() {
        let ring = ring.lock().expect("obs ring");
        out.extend(ring.events.iter().cloned());
        evicted += ring.evicted;
    }
    out.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then(a.seq.cmp(&b.seq))
            .then(a.target.cmp(b.target))
            .then_with(|| a.render().cmp(&b.render()))
    });
    (out, evicted)
}

/// Clear every ring (sequence numbers restart too).
pub(crate) fn clear() {
    for ring in all_rings().lock().expect("obs rings").iter() {
        let mut ring = ring.lock().expect("obs ring");
        ring.events.clear();
        ring.next_seq = 0;
        ring.evicted = 0;
    }
}

/// Log a structured event with a sim-time stamp and `key => value`
/// fields. While obs is disabled this costs one relaxed load and builds
/// nothing.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:literal, $time:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::log_event(
                $level,
                $target,
                $time,
                vec![$(($k, $crate::Value::from($v))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn events_merge_sorted_by_time_then_seq() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        event!(Level::Info, "ev.test.b", 2.0, "x" => 1u64);
        event!(Level::Info, "ev.test.a", 1.0);
        event!(Level::Warn, "ev.test.c", 1.0, "why" => "tie broken by seq");
        crate::set_enabled(false);
        let (events, evicted) = merged();
        assert_eq!(evicted, 0);
        let targets: Vec<&str> = events.iter().map(|e| e.target).collect();
        assert_eq!(targets, vec!["ev.test.a", "ev.test.c", "ev.test.b"]);
        assert!(events[1].render().contains("why=tie broken by seq"));
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        for i in 0..(ring_capacity() + 10) {
            event!(Level::Debug, "ev.test.flood", 0.0, "i" => i);
        }
        crate::set_enabled(false);
        let (events, evicted) = merged();
        assert_eq!(events.len(), ring_capacity());
        assert_eq!(evicted, 10);
        // Oldest were evicted: the first surviving seq is 10.
        assert_eq!(events.first().unwrap().seq, 10);
    }

    #[test]
    fn capacity_parses_with_floor_and_default() {
        assert_eq!(parse_capacity(None), RING_CAPACITY);
        assert_eq!(parse_capacity(Some("8192")), 8192);
        assert_eq!(parse_capacity(Some("1")), 16);
        assert_eq!(parse_capacity(Some("not-a-number")), RING_CAPACITY);
    }

    #[test]
    fn level_labels_round_trip() {
        for l in [Level::Debug, Level::Info, Level::Warn] {
            assert_eq!(Level::from_label(l.label()), Some(l));
        }
        assert_eq!(Level::from_label("nope"), None);
    }
}
