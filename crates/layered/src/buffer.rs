//! Per-layer receiver buffer.
//!
//! The receiver holds arrived-but-not-yet-played data per layer (figure 2's
//! horizontal arrival→playout bars). The quality-adaptation analysis only
//! needs byte counts, but the buffer also tracks arrival metadata so the
//! experiments can reconstruct the paper's figure-2 playout diagram and
//! measure actual (not estimated) occupancy.

use std::collections::VecDeque;

/// One buffered chunk (usually one packet's payload).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferedChunk {
    /// Arrival time at the receiver (seconds).
    pub arrival: f64,
    /// Bytes in the chunk.
    pub bytes: f64,
}

/// FIFO byte buffer for one layer.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerBuffer {
    chunks: VecDeque<BufferedChunk>,
    buffered: f64,
    /// Cumulative bytes that were demanded but missing (underflow volume).
    starved: f64,
    /// Number of distinct consume calls that hit an empty/short buffer.
    underflow_events: u64,
}

impl LayerBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `bytes` that arrived at time `arrival`.
    pub fn push(&mut self, arrival: f64, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        self.chunks.push_back(BufferedChunk { arrival, bytes });
        self.buffered += bytes;
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> f64 {
        self.buffered
    }

    /// Total bytes that could not be supplied on demand.
    pub fn starved_bytes(&self) -> f64 {
        self.starved
    }

    /// Number of consume calls that found insufficient data.
    pub fn underflow_events(&self) -> u64 {
        self.underflow_events
    }

    /// Arrival time of the oldest buffered chunk, if any.
    pub fn oldest_arrival(&self) -> Option<f64> {
        self.chunks.front().map(|c| c.arrival)
    }

    /// Consume up to `bytes` from the head of the buffer; returns the bytes
    /// actually supplied. A short supply is recorded as an underflow.
    pub fn consume(&mut self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let mut remaining = bytes;
        while remaining > 0.0 {
            match self.chunks.front_mut() {
                None => break,
                Some(chunk) => {
                    if chunk.bytes > remaining {
                        chunk.bytes -= remaining;
                        self.buffered -= remaining;
                        remaining = 0.0;
                    } else {
                        remaining -= chunk.bytes;
                        self.buffered -= chunk.bytes;
                        self.chunks.pop_front();
                    }
                }
            }
        }
        if remaining > 1e-9 {
            self.starved += remaining;
            self.underflow_events += 1;
        }
        bytes - remaining
    }

    /// Discard everything (e.g. when the layer is dropped and its data is
    /// written off for recovery purposes).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.buffered = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_consume_round_trip() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 1_000.0);
        b.push(0.1, 500.0);
        assert_eq!(b.buffered(), 1_500.0);
        assert_eq!(b.consume(600.0), 600.0);
        assert_eq!(b.buffered(), 900.0);
        assert_eq!(b.underflow_events(), 0);
    }

    #[test]
    fn consume_across_chunk_boundaries() {
        let mut b = LayerBuffer::new();
        for i in 0..10 {
            b.push(i as f64, 100.0);
        }
        assert_eq!(b.consume(950.0), 950.0);
        assert!((b.buffered() - 50.0).abs() < 1e-9);
        assert_eq!(b.oldest_arrival(), Some(9.0));
    }

    #[test]
    fn underflow_recorded_once_per_call() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 100.0);
        assert_eq!(b.consume(250.0), 100.0);
        assert_eq!(b.underflow_events(), 1);
        assert_eq!(b.starved_bytes(), 150.0);
        assert_eq!(b.buffered(), 0.0);
    }

    #[test]
    fn zero_and_negative_ops_are_noops() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 0.0);
        b.push(0.0, -5.0);
        assert_eq!(b.buffered(), 0.0);
        assert_eq!(b.consume(0.0), 0.0);
        assert_eq!(b.consume(-1.0), 0.0);
        assert_eq!(b.underflow_events(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut b = LayerBuffer::new();
        b.push(0.0, 100.0);
        b.consume(200.0);
        b.push(1.0, 300.0);
        b.clear();
        assert_eq!(b.buffered(), 0.0);
        assert_eq!(b.underflow_events(), 1);
        assert_eq!(b.oldest_arrival(), None);
    }
}
