//! # laqa-obs — runtime observability for the QA/RAP/sim stack
//!
//! The paper's whole argument is about *internal* dynamics — filling and
//! draining phases, per-layer buffer trajectories, add/drop decisions —
//! yet until this crate the workspace could only see them post-hoc
//! through figure CSVs and campaign fingerprints. `laqa-obs` provides
//! the runtime substrate:
//!
//! * a **metrics registry** ([`registry`]) of named counters, gauges and
//!   fixed-bucket histograms backed by relaxed atomics;
//! * **span timing** ([`span`]) — RAII guards recording count / total /
//!   max wall time per scope via `std::time::Instant` (the same clock
//!   the `laqa-bench` harness times with);
//! * a bounded **per-thread ring-buffer event log** ([`events`]) with
//!   levels and `key=value` fields, merged deterministically by
//!   `(sim-time, seq)` at export;
//! * a **flight recorder** ([`flight`]) — per-session timeline traces
//!   (QA state spans, layer add/drop and backoff instants, buffer-level
//!   samples) behind its own enable flag, exportable as Chrome
//!   trace-event JSON for Perfetto via `laqa obs-trace`;
//! * **exporters** ([`export`]) that render everything through
//!   `laqa-trace` — JSON files for `campaign --obs <dir>` and aligned
//!   text tables for `laqa obs-report`.
//!
//! ## Determinism / inertness contract
//!
//! Observability must never perturb a simulation:
//!
//! * **Disabled** (the default), every instrumentation site costs one
//!   relaxed atomic load (the global [`enabled`] flag) and returns.
//! * **Enabled**, instrumentation only *reads* simulation state; it
//!   never touches `SimRng`, never schedules events, and never feeds
//!   back into any control path. Campaign trace fingerprints are
//!   bit-identical with obs on and off (`crates/sim/tests/`
//!   `obs_inertness.rs` and `scripts/verify.sh` step 5 enforce this).
//!
//! ## Usage
//!
//! ```
//! laqa_obs::set_enabled(true);
//! laqa_obs::counter!("demo.widgets").inc();
//! {
//!     let _guard = laqa_obs::span!("demo.work");
//!     // ... timed scope ...
//! }
//! laqa_obs::event!(laqa_obs::Level::Info, "demo.tick", 1.5,
//!                  "n" => 3u64, "rate" => 2.5f64);
//! let snap = laqa_obs::snapshot();
//! assert_eq!(snap.counter("demo.widgets"), Some(1));
//! laqa_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod events;
pub mod export;
pub mod flight;
pub mod registry;
pub mod span;

pub use events::{log_event, Level, LogEvent, Value};
pub use export::Snapshot;
pub use flight::{FlightKind, FlightRecord, FlightTrace};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, LOG_MS_BOUNDS, LOG_NS_BOUNDS};
pub use span::{Span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is live. One relaxed load — this is the
/// entire cost of a disabled instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable instrumentation. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Snapshot every registered metric, span and the merged event log.
pub fn snapshot() -> Snapshot {
    Snapshot::collect()
}

/// Zero all counters/gauges/histograms/spans and clear the event and
/// flight-recorder rings. Intended for tests and for isolating
/// consecutive `--obs` exports.
pub fn reset() {
    registry::reset_metrics();
    span::reset_spans();
    events::clear();
    flight::clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The enabled flag and the registries are process-global; tests that
    /// toggle them serialize on this lock.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(false);
        counter!("lib.test.ctr").inc();
        gauge!("lib.test.gauge").set(4.0);
        {
            let _s = span!("lib.test.span");
        }
        event!(Level::Info, "lib.test.ev", 0.0, "k" => 1u64);
        let snap = snapshot();
        // Disabled sites return before registering, so the snapshot has
        // either no entry or a zeroed one (if a prior enabled test
        // registered the name).
        assert_eq!(snap.counter("lib.test.ctr").unwrap_or(0), 0);
        assert!(snap.events.is_empty());
        assert_eq!(snap.span("lib.test.span").map_or(0, |s| s.count), 0);
        assert!(snap.is_empty());
    }

    #[test]
    fn enabled_sites_record_and_reset_clears() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        counter!("lib.test2.ctr").add(3);
        {
            let _s = span!("lib.test2.span");
        }
        event!(Level::Warn, "lib.test2.ev", 2.0, "x" => "y");
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test2.ctr"), Some(3));
        assert_eq!(snap.span("lib.test2.span").map(|s| s.count), Some(1));
        assert_eq!(snap.events.len(), 1);
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test2.ctr"), Some(0));
        assert!(snap.events.is_empty());
    }
}
