//! The `K_max` knob: short-term quality vs stability (§3.1).
//!
//! Sweeps the smoothing factor on the same congested-backbone workload and
//! prints the tradeoff the paper's figure 12 illustrates: higher `K_max`
//! means fewer quality changes but more buffering (and slower climbs to
//! the best short-term quality).
//!
//! ```sh
//! cargo run --release -p laqa-apps --example smoothing_tradeoff
//! ```

use laqa_sim::{run_scenario, ScenarioConfig};

fn main() {
    let duration = 45.0;
    println!("K_max  quality-changes  mean-layers  peak-buffer(B)  stalls");
    println!("------------------------------------------------------------");
    for k_max in [1u32, 2, 3, 4, 6] {
        let cfg = ScenarioConfig::t1(k_max, duration, 42);
        let out = run_scenario(&cfg);
        let steady: Vec<f64> = out
            .traces
            .n_active
            .points
            .iter()
            .filter(|&&(t, _)| t > 15.0)
            .map(|&(_, v)| v)
            .collect();
        let mean_layers = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
        let changes = steady
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 1e-9)
            .count();
        let peak_buf: f64 = (0..out.traces.buffer[0].points.len())
            .map(|i| {
                out.traces
                    .buffer
                    .iter()
                    .map(|b| b.points.get(i).map(|&(_, v)| v.max(0.0)).unwrap_or(0.0))
                    .sum::<f64>()
            })
            .fold(0.0, f64::max);
        println!(
            "{k_max:>5}  {changes:>15}  {mean_layers:>11.2}  {peak_buf:>14.0}  {:>6}",
            out.metrics.stalls()
        );
    }
    println!();
    println!("higher K_max: fewer changes, more buffering — the paper's fig. 12.");
}
