//! Configuration for the quality-adaptation controller.
//!
//! The paper's analysis (§2) assumes linearly spaced layers: every layer is
//! consumed at the same constant rate `C`. That assumption is captured by
//! [`QaConfig::layer_rate`]. Non-linear layer spacing (listed as future work
//! in §7) is supported by the `laqa-layered` crate's encodings and by the
//! generalized band geometry in [`crate::geometry`], but the controller's
//! closed-form buffer states use the linear model, exactly as the paper does.

use std::fmt;

/// Errors produced when validating a [`QaConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `layer_rate` must be a finite, strictly positive number of bytes/s.
    NonPositiveLayerRate,
    /// `max_layers` must be at least 1 (the base layer always exists).
    ZeroMaxLayers,
    /// `k_max` (the smoothing factor) must be at least 1; `K_max = 1` is the
    /// un-smoothed single-backoff mechanism of §2.
    ZeroKMax,
    /// `initial_layers` must be between 1 and `max_layers`.
    BadInitialLayers,
    /// `fill_horizon_backoffs` must be at least `k_max`.
    HorizonBelowKMax,
    /// `min_slope` must be finite and strictly positive.
    NonPositiveMinSlope,
    /// `startup_buffer_secs` must be finite and non-negative.
    NegativeStartupBuffer,
    /// `underflow_slack_bytes` must be finite and non-negative.
    NegativeUnderflowSlack,
    /// `decrease_factor` must be finite and strictly inside `(0, 1)`.
    BadDecreaseFactor,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositiveLayerRate => {
                write!(f, "layer_rate must be finite and > 0 bytes/s")
            }
            ConfigError::ZeroMaxLayers => write!(f, "max_layers must be >= 1"),
            ConfigError::ZeroKMax => write!(f, "k_max (smoothing factor) must be >= 1"),
            ConfigError::BadInitialLayers => {
                write!(f, "initial_layers must be in 1..=max_layers")
            }
            ConfigError::HorizonBelowKMax => {
                write!(f, "fill_horizon_backoffs must be >= k_max")
            }
            ConfigError::NonPositiveMinSlope => {
                write!(f, "min_slope must be finite and > 0 bytes/s^2")
            }
            ConfigError::NegativeStartupBuffer => {
                write!(f, "startup_buffer_secs must be finite and >= 0")
            }
            ConfigError::NegativeUnderflowSlack => {
                write!(f, "underflow_slack_bytes must be finite and >= 0")
            }
            ConfigError::BadDecreaseFactor => {
                write!(f, "decrease_factor must be finite and in (0, 1)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of the quality-adaptation mechanism.
///
/// Rates are in **bytes per second**, buffer amounts in **bytes**, times in
/// **seconds**, and the additive-increase slope `S` in **bytes per second
/// per second** — the units used throughout the paper's Appendix A once its
/// "one packet per RTT" increase is expressed as a rate slope.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QaConfig {
    /// Per-layer consumption rate `C` (bytes/s). The paper's simulations use
    /// `C = 10 KB/s` (figure 11's consumption-rate gridlines).
    pub layer_rate: f64,
    /// Hard cap on the number of encoded layers available at the server.
    pub max_layers: usize,
    /// Smoothing factor `K_max` (§3.1): the number of backoffs the receiver
    /// buffer must be able to absorb, in both extremal scenarios, before a
    /// new layer may be added.
    pub k_max: u32,
    /// Number of layers transmitted at session start (the paper starts with
    /// the base layer only; figure 2 shows layers coming up one at a time).
    pub initial_layers: usize,
    /// When every `k <= k_max` state is satisfied but the add conditions do
    /// not hold (e.g. the 2.9-layer modem link of §3.1), filling continues
    /// toward states with `k` up to this horizon so spare bandwidth is still
    /// invested in protective buffering rather than discarded.
    pub fill_horizon_backoffs: u32,
    /// Lower bound applied to the estimated additive-increase slope `S`
    /// before it is used in the deficit geometry. Guards against division by
    /// a near-zero slope when the RTT estimate spikes (§2.2 lists a wrong
    /// slope estimate as a source of "critical situations").
    pub min_slope: f64,
    /// Slack (bytes) used when comparing a buffer level against a target, so
    /// floating-point dust does not flap add/drop decisions.
    pub epsilon_bytes: f64,
    /// Playout starts once the base layer has buffered this many seconds of
    /// data (the paper's target environment demands low startup latency,
    /// §1.1; a fraction of a second of base-layer data is enough to ride
    /// out packetization jitter).
    pub startup_buffer_secs: f64,
    /// How far (bytes) a layer's sender-side buffer estimate may go
    /// negative before it is declared a real underflow. The estimate is a
    /// fluid model of a packetized stream: a layer fed exactly at its
    /// consumption rate oscillates by up to a couple of packets around
    /// zero, which is jitter, not starvation. Typically 2–4 packet sizes.
    pub underflow_slack_bytes: f64,
    /// Multiplicative decrease factor of the underlying congestion
    /// controller: a backoff from rate `R` lands at `R · decrease_factor`.
    /// The paper assumes clean AIMD halvings (`0.5`, the default, which
    /// also keeps every pre-existing trajectory bit-identical); gentler
    /// controllers (BBR-style 0.85, NADA-style variable γ) thread their
    /// nominal factor here so the deficit-triangle geometry anticipates
    /// the backoffs they actually perform. Must lie strictly in `(0, 1)`.
    pub decrease_factor: f64,
}

impl Default for QaConfig {
    fn default() -> Self {
        // The paper's simulation setup: C = 10 KB/s per layer, K_max = 2,
        // and enough layers that the 800 Kb/s bottleneck is never the cap.
        QaConfig {
            layer_rate: 10_000.0,
            max_layers: 10,
            k_max: 2,
            initial_layers: 1,
            fill_horizon_backoffs: 16,
            min_slope: 1.0,
            epsilon_bytes: 1.0,
            startup_buffer_secs: 0.5,
            underflow_slack_bytes: 2_000.0,
            decrease_factor: 0.5,
        }
    }
}

impl QaConfig {
    /// Validate the configuration, returning it unchanged on success.
    pub fn validated(self) -> Result<Self, ConfigError> {
        if !(self.layer_rate.is_finite() && self.layer_rate > 0.0) {
            return Err(ConfigError::NonPositiveLayerRate);
        }
        if self.max_layers == 0 {
            return Err(ConfigError::ZeroMaxLayers);
        }
        if self.k_max == 0 {
            return Err(ConfigError::ZeroKMax);
        }
        if self.initial_layers == 0 || self.initial_layers > self.max_layers {
            return Err(ConfigError::BadInitialLayers);
        }
        if self.fill_horizon_backoffs < self.k_max {
            return Err(ConfigError::HorizonBelowKMax);
        }
        if !(self.min_slope.is_finite() && self.min_slope > 0.0) {
            return Err(ConfigError::NonPositiveMinSlope);
        }
        if !(self.startup_buffer_secs.is_finite() && self.startup_buffer_secs >= 0.0) {
            return Err(ConfigError::NegativeStartupBuffer);
        }
        if !(self.underflow_slack_bytes.is_finite() && self.underflow_slack_bytes >= 0.0) {
            return Err(ConfigError::NegativeUnderflowSlack);
        }
        if !(self.decrease_factor.is_finite()
            && self.decrease_factor > 0.0
            && self.decrease_factor < 1.0)
        {
            return Err(ConfigError::BadDecreaseFactor);
        }
        Ok(self)
    }

    /// Aggregate consumption rate `n_a * C` for `n_active` layers.
    pub fn consumption(&self, n_active: usize) -> f64 {
        n_active as f64 * self.layer_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        QaConfig::default()
            .validated()
            .expect("default must validate");
    }

    #[test]
    fn rejects_zero_layer_rate() {
        let cfg = QaConfig {
            layer_rate: 0.0,
            ..QaConfig::default()
        };
        assert_eq!(
            cfg.validated().unwrap_err(),
            ConfigError::NonPositiveLayerRate
        );
    }

    #[test]
    fn rejects_nan_layer_rate() {
        let cfg = QaConfig {
            layer_rate: f64::NAN,
            ..QaConfig::default()
        };
        assert_eq!(
            cfg.validated().unwrap_err(),
            ConfigError::NonPositiveLayerRate
        );
    }

    #[test]
    fn rejects_zero_k_max() {
        let cfg = QaConfig {
            k_max: 0,
            ..QaConfig::default()
        };
        assert_eq!(cfg.validated().unwrap_err(), ConfigError::ZeroKMax);
    }

    #[test]
    fn rejects_zero_max_layers() {
        let cfg = QaConfig {
            max_layers: 0,
            initial_layers: 0,
            ..QaConfig::default()
        };
        assert_eq!(cfg.validated().unwrap_err(), ConfigError::ZeroMaxLayers);
    }

    #[test]
    fn rejects_initial_layers_above_max() {
        let cfg = QaConfig {
            max_layers: 3,
            initial_layers: 4,
            ..QaConfig::default()
        };
        assert_eq!(cfg.validated().unwrap_err(), ConfigError::BadInitialLayers);
    }

    #[test]
    fn rejects_horizon_below_k_max() {
        let cfg = QaConfig {
            k_max: 8,
            fill_horizon_backoffs: 4,
            ..QaConfig::default()
        };
        assert_eq!(cfg.validated().unwrap_err(), ConfigError::HorizonBelowKMax);
    }

    #[test]
    fn rejects_decrease_factor_outside_unit_interval() {
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let cfg = QaConfig {
                decrease_factor: bad,
                ..QaConfig::default()
            };
            assert_eq!(
                cfg.validated().unwrap_err(),
                ConfigError::BadDecreaseFactor,
                "factor {bad} must be rejected"
            );
        }
        for ok in [0.1, 0.5, 0.7, 0.85, 0.99] {
            let cfg = QaConfig {
                decrease_factor: ok,
                ..QaConfig::default()
            };
            assert!(cfg.validated().is_ok(), "factor {ok} must validate");
        }
    }

    #[test]
    fn consumption_scales_linearly() {
        let cfg = QaConfig::default();
        assert_eq!(cfg.consumption(0), 0.0);
        assert_eq!(cfg.consumption(3), 3.0 * cfg.layer_rate);
    }
}

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;

    #[test]
    fn config_value_round_trip() {
        let cfg = QaConfig {
            layer_rate: 1_250.0,
            max_layers: 7,
            k_max: 3,
            ..QaConfig::default()
        };
        let value = serde::Serialize::to_value(&cfg);
        let back: QaConfig = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(cfg, back);
        let json = serde::to_string(&cfg);
        assert!(json.contains("\"layer_rate\":1250"), "json: {json}");
    }
}
