//! # laqa-sim — packet-level discrete-event network simulator
//!
//! The ns-2 subset the paper's evaluation needs, rebuilt: a deterministic
//! event engine ([`engine`]), links with drop-tail queues ([`link`]),
//! dumbbell topologies ([`topology`]), and protocol agents ([`agents`]):
//! RAP sources/sinks, a NewReno-style TCP for competing traffic, CBR
//! bursts, and the quality-adaptive RAP streaming pair under test.
//! [`scenarios`] assembles the paper's T1/T2 workloads, and [`campaign`]
//! fans grids of them across worker threads with bit-reproducible
//! per-seed results.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arena;
pub mod campaign;
pub mod engine;
pub mod faults;
pub mod link;
pub mod mega;
pub mod packet;
pub mod rng;
pub mod scenarios;
pub mod sched;
pub mod stats;
pub mod time;
pub mod topology;

/// Protocol agents (RAP, TCP, CBR, quality-adaptive streaming pair).
pub mod agents {
    pub mod bond;
    pub mod cbr;
    pub mod monitor;
    pub mod qa;
    pub mod qa_window;
    pub mod rap;
    pub mod tcp;
}

pub use campaign::{
    hash_outcome, run_campaign, run_campaign_fold, run_campaign_opts, run_campaign_with,
    run_session, run_session_pooled, run_session_with, CampaignFold, CampaignOptions,
    CampaignResult, CampaignSpec, SessionResult, SessionSpec, TestKind,
};
pub use engine::{Agent, Ctx, World, WorldSalvage};
pub use faults::{FaultInjector, FaultPlan, FaultStats, FaultWiring};
pub use link::{
    Link, LinkConfig, LinkStats, LinkTraceState, QueueKind, RedConfig, TraceDriver, TraceSchedule,
};
pub use mega::{MegaEngine, MegaSessionView, SessionId};
pub use packet::{AgentId, LinkId, Packet, PacketKind, Route};
pub use scenarios::{
    run_scenario, run_scenario_pooled, run_scenario_with, run_scenarios_mega,
    run_scenarios_mega_staggered, ScenarioConfig, ScenarioOutcome, TraceKind, Transport, WorldPool,
};
pub use sched::{
    ambient_scheduler, set_ambient_scheduler, AnyScheduler, EventKey, HeapScheduler, Scheduler,
    SchedulerKind, TimerWheelScheduler,
};
pub use stats::{jain_fairness, summarize_sharing, SharingSummary};
pub use topology::{Dumbbell, DumbbellConfig};
