//! Criterion benchmarks for the wire codec used by the tokio endpoints —
//! the per-datagram cost of the real-socket experiments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use laqa_net::Message;
use laqa_rap::AckInfo;

fn bench_wire(c: &mut Criterion) {
    let data = Message::Data {
        flow: 1,
        seq: 123456,
        layer: 2,
        n_active: 4,
        send_ts_us: 42_000_000,
        payload: bytes::Bytes::from(vec![0xAB; 1_000]),
    };
    let ack = Message::Ack {
        flow: 1,
        info: AckInfo {
            ack_seq: 99,
            cum_seq: 95,
            highest: 99,
            mask: 0xF7,
        },
    };
    let data_bytes = data.encode();
    let ack_bytes = ack.encode();

    let mut g = c.benchmark_group("wire");
    g.bench_function("encode_data_1k", |b| b.iter(|| black_box(&data).encode()));
    g.bench_function("decode_data_1k", |b| {
        b.iter(|| Message::decode(black_box(data_bytes.clone())).unwrap())
    });
    g.bench_function("encode_ack", |b| b.iter(|| black_box(&ack).encode()));
    g.bench_function("decode_ack", |b| {
        b.iter(|| Message::decode(black_box(ack_bytes.clone())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
