//! Differential replay: the megasession engine must be observationally
//! indistinguishable from per-world runs.
//!
//! Every test runs the same workloads once through isolated `World`s and
//! once multiplexed on a shared [`laqa_sim::MegaEngine`] (via the
//! `run_scenarios_mega*` helpers or the campaign mega executor) and
//! requires bit-identical per-session trace fingerprints. The per-world
//! path is the oracle — it is the original engine kept verbatim — so any
//! divergence is a multiplexing bug (cross-session state bleed, event
//! misordering, RNG stream sharing), not a tolerance question. Covered
//! surface: the goldens' scenario configs (T1/T2 across `K_max`), the
//! fault suite across intensities, staggered global start times, and the
//! threaded campaign grid under every combination of scheduler kind,
//! warm/cold pools and steal-chunk size.

use laqa_sim::campaign::{run_campaign_opts, CampaignOptions, CampaignSpec, TestKind};
use laqa_sim::faults::FaultPlan;
use laqa_sim::{
    hash_outcome, run_scenario_with, run_scenarios_mega, run_scenarios_mega_staggered,
    ScenarioConfig, SchedulerKind,
};

/// Run every config isolated and all of them multiplexed on one engine
/// (under both scheduler kinds) and assert identical outcome hashes
/// session by session.
fn assert_mega_agrees(cfgs: &[ScenarioConfig], what: &str) {
    for kind in SchedulerKind::ALL {
        let mega = run_scenarios_mega(cfgs, kind);
        assert_eq!(mega.len(), cfgs.len());
        for (i, (cfg, out)) in cfgs.iter().zip(&mega).enumerate() {
            let solo = run_scenario_with(cfg, kind);
            assert_eq!(
                hash_outcome(&solo),
                hash_outcome(out),
                "{what} session {i} under {}: mega trace diverged from per-world oracle",
                kind.label()
            );
            assert_eq!(
                solo.events_processed, out.events_processed,
                "{what} session {i} under {}: event counts diverged",
                kind.label()
            );
            assert_eq!(solo.fault_stats, out.fault_stats);
        }
    }
}

#[test]
fn goldens_scenarios_agree_with_per_world_runs() {
    // The scenario configs underlying the repo's golden traces — T1 across
    // the K_max values the figures sweep plus T2 with its CBR burst — all
    // multiplexed into ONE engine at once, so heterogeneous sessions
    // interleave on the shared queue.
    let cfgs = vec![
        ScenarioConfig::t1(1, 10.0, 7),
        ScenarioConfig::t1(2, 10.0, 7),
        ScenarioConfig::t1(4, 10.0, 7),
        ScenarioConfig::t2(2, 12.0, 21),
    ];
    assert_mega_agrees(&cfgs, "goldens");
}

#[test]
fn fault_suite_agrees_with_per_world_runs_across_intensities() {
    // Faults exercise paths a clean run never touches: cancels from
    // link-down flushes, same-tick cascades from burst loss, long-horizon
    // churn timers. Mixing intensities in one engine also proves the
    // injectors' RNG streams stay private to their sessions.
    let cfgs: Vec<ScenarioConfig> = [0.0, 0.5, 1.0]
        .iter()
        .map(|&intensity| {
            let mut cfg = ScenarioConfig::t1(2, 12.0, 7);
            cfg.faults = FaultPlan::suite(intensity);
            cfg
        })
        .collect();
    assert_mega_agrees(&cfgs, "fault suite");
}

#[test]
fn staggered_starts_do_not_change_any_session() {
    // Sessions running at global offsets compute in local time: shifting
    // WHEN a session runs must not shift WHAT it computes, even while
    // other sessions' events interleave with it at every offset.
    let cfgs = vec![
        (ScenarioConfig::t1(2, 8.0, 7), 0.0),
        (ScenarioConfig::t1(2, 8.0, 21), 0.35),
        (ScenarioConfig::t2(2, 9.0, 7), 1.2),
    ];
    for kind in SchedulerKind::ALL {
        let staggered = run_scenarios_mega_staggered(&cfgs, kind);
        for (i, ((cfg, offset), out)) in cfgs.iter().zip(&staggered).enumerate() {
            let solo = run_scenario_with(cfg, kind);
            assert_eq!(
                hash_outcome(&solo),
                hash_outcome(out),
                "session {i} at offset {offset} under {} diverged",
                kind.label()
            );
        }
    }
}

#[test]
fn campaign_smoke_grid_agrees_across_executors() {
    // The full cross product: {per-cell, mega} × {cold, warm} ×
    // {1, 8} threads × both schedulers × steal-chunk sizes must give one
    // fingerprint. Chunk 1 degenerates to one-session-at-a-time batches
    // (maximum engine reuse churn); chunk 32 swallows the whole grid into
    // a single batch per worker.
    let spec = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &[7, 21], 6.0);
    let reference = run_campaign_opts(&spec, CampaignOptions::new(1).cold());
    let fp = reference.fingerprint();
    for kind in SchedulerKind::ALL {
        for threads in [1, 8] {
            for warm in [false, true] {
                for chunk in [1, 5, 32] {
                    let mut opts = CampaignOptions::new(threads)
                        .sched(kind)
                        .mega()
                        .mega_chunk(chunk);
                    if !warm {
                        opts = opts.cold();
                    }
                    let got = run_campaign_opts(&spec, opts);
                    assert_eq!(
                        got.fingerprint(),
                        fp,
                        "mega campaign diverged under {} threads={threads} warm={warm} chunk={chunk}",
                        kind.label()
                    );
                }
            }
        }
    }
}

#[test]
fn service_slice_sweep_agrees_across_executors() {
    // PR 10's sliced service loop: how long the engine stays on one hot
    // session before re-scanning the hot column is pure scheduling
    // policy, so every slice — one-event-per-visit (0.0) through
    // run-to-completion (infinite) — must reproduce the cold per-cell
    // fingerprint, under both schedulers and with work-stealing workers.
    let spec = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &[7, 21], 6.0);
    let fp = run_campaign_opts(&spec, CampaignOptions::new(1).cold()).fingerprint();
    for kind in SchedulerKind::ALL {
        for threads in [1, 8] {
            for slice in [0.0, 0.002, f64::INFINITY] {
                let got = run_campaign_opts(
                    &spec,
                    CampaignOptions::new(threads)
                        .sched(kind)
                        .mega()
                        .mega_slice(slice),
                );
                assert_eq!(
                    got.fingerprint(),
                    fp,
                    "mega campaign diverged under {} threads={threads} slice={slice}",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn faulted_campaign_mega_matches_per_cell_cell_by_cell() {
    let spec = CampaignSpec::faults_grid(&[TestKind::T1], &[2], &[0.0, 1.0], &[7], 12.0);
    let per_cell = run_campaign_opts(&spec, CampaignOptions::new(2));
    let mega = run_campaign_opts(&spec, CampaignOptions::new(2).mega());
    assert_eq!(per_cell.fingerprint(), mega.fingerprint());
    for (a, b) in per_cell.sessions.iter().zip(&mega.sessions) {
        assert_eq!(a.trace_hash, b.trace_hash, "cell {} diverged", a.spec.label());
        assert_eq!(a.fault_transitions, b.fault_transitions);
        assert_eq!(a.events_processed, b.events_processed);
    }
}
