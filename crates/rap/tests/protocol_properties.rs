//! Property-based tests for the RAP protocol machinery: arbitrary loss,
//! reordering and duplication patterns must never wedge the sender,
//! corrupt its accounting, or break AIMD invariants.
//!
//! Randomization comes from `laqa_check` (a seeded in-repo harness) rather
//! than proptest, so the suite runs with zero registry access.

use laqa_check::{cases, Gen};
use laqa_rap::{AckInfo, RapConfig, RapEvent, RapReceiverState, RapSender};

/// Random per-packet fate codes in `0..=3` (see `run_fates`).
fn fate_vec(g: &mut Gen, len_lo: usize, len_hi: usize) -> Vec<u8> {
    let len = g.usize_in(len_lo, len_hi);
    (0..len).map(|_| g.u32_in(0, 3) as u8).collect()
}

/// Replay a randomized path: per-packet fates (delivered / lost /
/// duplicated) and a bounded reorder depth.
fn run_fates(fates: &[u8], reorder: usize) -> (RapSender, u64, u64) {
    let mut s = RapSender::new(
        RapConfig {
            initial_rate: 10_000.0,
            initial_rtt: 0.05,
            ..RapConfig::default()
        },
        0.0,
    );
    let mut rx = RapReceiverState::new();
    let owd = 0.02;
    let mut now = 0.0;
    let mut pipeline: Vec<(f64, u64)> = Vec::new();
    let mut acked = 0u64;
    let mut lost = 0u64;
    let mut i = 0usize;
    while i < fates.len() {
        now += 0.001;
        s.poll_timers(now);
        // Deliver due packets (allowing bounded reordering).
        while !pipeline.is_empty() && pipeline[0].0 <= now {
            let take = if pipeline.len() > reorder
                && reorder > 0
                && fates[i % fates.len()].is_multiple_of(2)
            {
                reorder.min(pipeline.len() - 1)
            } else {
                0
            };
            let (_, seq) = pipeline.remove(take);
            let ack = rx.on_data(seq);
            s.on_ack(now, ack);
        }
        if now >= s.next_send_time() {
            let seq = s.register_send(now, 1_000.0, (seq_tag(i)) as u32);
            match fates[i] % 4 {
                0 | 1 => pipeline.push((now + owd, seq)), // delivered
                2 => {
                    // duplicated
                    pipeline.push((now + owd, seq));
                    pipeline.push((now + owd + 0.001, seq));
                }
                _ => {} // lost
            }
            i += 1;
        }
        for e in s.take_events() {
            match e {
                RapEvent::PacketAcked { .. } => acked += 1,
                RapEvent::PacketLost { .. } => lost += 1,
                _ => {}
            }
        }
    }
    // Drain the tail of the pipeline.
    for _ in 0..10_000 {
        now += 0.001;
        s.poll_timers(now);
        while !pipeline.is_empty() && pipeline[0].0 <= now {
            let (_, seq) = pipeline.remove(0);
            let ack = rx.on_data(seq);
            s.on_ack(now, ack);
        }
        if pipeline.is_empty() && s.in_flight() == 0 {
            break;
        }
    }
    for e in s.take_events() {
        match e {
            RapEvent::PacketAcked { .. } => acked += 1,
            RapEvent::PacketLost { .. } => lost += 1,
            _ => {}
        }
    }
    (s, acked, lost)
}

fn seq_tag(i: usize) -> u8 {
    (i % 5) as u8
}

#[test]
fn every_packet_resolves_exactly_once() {
    cases("every_packet_resolves_exactly_once", 24, |g, _| {
        let fates = fate_vec(g, 50, 199);
        let reorder = g.usize_in(0, 2);
        let (s, acked, lost) = run_fates(&fates, reorder);
        // After the drain loop, nothing is in flight and the sum of
        // resolutions equals the number of sends (duplicates resolve once).
        assert_eq!(s.in_flight(), 0, "unresolved packets remain");
        assert_eq!(
            (acked + lost) as usize,
            fates.len(),
            "acked {acked} + lost {lost} != sent {}",
            fates.len()
        );
        // Rate stays within sane bounds.
        assert!(s.rate() >= 1_000.0 - 1e-9);
        assert!(s.rate().is_finite());
    });
}

#[test]
fn srtt_stays_positive_and_finite() {
    cases("srtt_stays_positive_and_finite", 24, |g, _| {
        let fates = fate_vec(g, 50, 149);
        let (s, _, _) = run_fates(&fates, 0);
        assert!(s.srtt() > 0.0 && s.srtt().is_finite());
        assert!(s.slope() > 0.0 && s.slope().is_finite());
    });
}

#[test]
fn receiver_ack_info_is_self_consistent() {
    cases("receiver_ack_info_is_self_consistent", 24, |g, _| {
        let n = g.usize_in(1, 299);
        let seqs: Vec<u64> = (0..n).map(|_| g.u64_in(0, 499)).collect();
        let mut rx = RapReceiverState::new();
        let mut last: Option<AckInfo> = None;
        for &seq in &seqs {
            let ack = rx.on_data(seq);
            // The ack proves its own trigger and the cumulative prefix.
            assert!(ack.proves_received(ack.ack_seq));
            if ack.cum_seq != u64::MAX {
                assert!(ack.proves_received(ack.cum_seq));
                assert!(ack.cum_seq <= ack.highest);
            }
            assert!(ack.ack_seq <= ack.highest);
            // Highest and cum never move backwards.
            if let Some(prev) = last {
                assert!(ack.highest >= prev.highest);
                if prev.cum_seq != u64::MAX {
                    assert!(ack.cum_seq != u64::MAX && ack.cum_seq >= prev.cum_seq);
                }
            }
            last = Some(ack);
        }
    });
}

#[test]
fn backoffs_never_exceed_loss_events() {
    cases("backoffs_never_exceed_loss_events", 24, |g, _| {
        let fates = fate_vec(g, 80, 199);
        // Count backoffs vs distinct losses: cluster suppression means
        // backoffs <= losses (and also <= sends).
        let mut s = RapSender::new(
            RapConfig {
                initial_rate: 20_000.0,
                initial_rtt: 0.05,
                ..RapConfig::default()
            },
            0.0,
        );
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipeline: Vec<(f64, u64)> = Vec::new();
        let mut backoffs = 0u64;
        let mut losses = 0u64;
        let mut i = 0;
        while i < fates.len() {
            now += 0.001;
            s.poll_timers(now);
            while !pipeline.is_empty() && pipeline[0].0 <= now {
                let (_, seq) = pipeline.remove(0);
                s.on_ack(now, rx.on_data(seq));
            }
            if now >= s.next_send_time() {
                let seq = s.register_send(now, 1_000.0, 0);
                if fates[i] != 3 {
                    pipeline.push((now + 0.02, seq));
                }
                i += 1;
            }
            for e in s.take_events() {
                match e {
                    RapEvent::Backoff { .. } => backoffs += 1,
                    RapEvent::PacketLost { .. } => losses += 1,
                    _ => {}
                }
            }
        }
        assert!(backoffs <= losses + 1, "backoffs {backoffs} losses {losses}");
    });
}
