//! Property tests for the TraceLink schedule machinery.
//!
//! These pin the contracts the hostile-network axis leans on:
//!
//! - sampling a schedule is a monotone step function of time, and looping
//!   wrap-around lands exactly on the same step (no discontinuity);
//! - the seeded LTE / bufferbloat generators are pure functions of their
//!   seed — two runs produce identical schedules, and a longer horizon is
//!   a strict extension of a shorter one (chunk-boundary identity);
//! - replaying a schedule through [`LinkTraceState`] visits the same values
//!   as direct sampling, across cycle boundaries.

use laqa_sim::{LinkTraceState, TraceSchedule};
use laqa_trace::LinkTracePoint;

fn pt(at: f64, bandwidth: f64) -> LinkTracePoint {
    LinkTracePoint {
        at,
        bandwidth,
        delay: None,
        loss: None,
    }
}

#[test]
fn sample_is_a_monotone_step_function_of_time() {
    // The step selected for time t must never move backwards as t grows
    // within a cycle: the active point's `at` is non-decreasing in t.
    for seed in [7u64, 21, 99] {
        let s = TraceSchedule::lte(seed, 100_000.0, 30.0);
        let pts = s.points();
        assert!(pts.len() > 10, "LTE over 30s must produce many swings");
        for w in pts.windows(2) {
            assert!(w[0].at < w[1].at, "points strictly increasing in time");
        }
        let mut last_at = f64::NEG_INFINITY;
        let mut t = 0.0;
        while t < 30.0 {
            let active = s.sample(t);
            // Find the point we sampled; its `at` must not regress.
            let at = pts
                .iter()
                .rev()
                .find(|p| p.at <= t)
                .map(|p| p.at)
                .unwrap_or(pts[0].at);
            assert_eq!(active.bandwidth, s.sample(t).bandwidth);
            assert!(at >= last_at, "step regressed at t={t}");
            last_at = at;
            t += 0.05;
        }
    }
}

#[test]
fn looping_wraps_without_discontinuity() {
    let s = TraceSchedule::diurnal(100_000.0, 60.0);
    let period = s.period().expect("diurnal loops");
    assert_eq!(period, 60.0);
    let mut t = 0.0;
    while t < 2.0 * period {
        let a = s.sample(t);
        let b = s.sample(t + period);
        assert_eq!(
            a.bandwidth, b.bandwidth,
            "wrap must be bitwise-identical at t={t}"
        );
        t += 0.73;
    }
    // The diurnal curve actually dips: min well below max.
    let bws: Vec<f64> = s.points().iter().map(|p| p.bandwidth).collect();
    let max = bws.iter().cloned().fold(f64::MIN, f64::max);
    let min = bws.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min < 0.5 * max, "diurnal trough must be a real dip");
}

#[test]
fn seeded_generators_are_pure_functions_of_their_seed() {
    for seed in [1u64, 42, 1337] {
        assert_eq!(
            TraceSchedule::lte(seed, 100_000.0, 20.0),
            TraceSchedule::lte(seed, 100_000.0, 20.0),
            "LTE generator must be deterministic"
        );
        assert_eq!(
            TraceSchedule::bufferbloat(seed, 100_000.0, 20.0),
            TraceSchedule::bufferbloat(seed, 100_000.0, 20.0),
            "bufferbloat generator must be deterministic"
        );
    }
    assert_ne!(
        TraceSchedule::lte(1, 100_000.0, 20.0),
        TraceSchedule::lte(2, 100_000.0, 20.0),
        "different seeds must diverge"
    );
    assert_ne!(
        TraceSchedule::lte(1, 100_000.0, 20.0),
        TraceSchedule::bufferbloat(1, 100_000.0, 20.0),
        "generator salts must keep the families independent"
    );
}

#[test]
fn longer_horizon_extends_shorter_without_perturbing_the_prefix() {
    // Chunk-boundary identity: a schedule generated for 2×D seconds agrees
    // point-for-point with the D-second schedule over [0, D). Megasession
    // chunking and staggered admission both rely on this — the schedule a
    // session sees must not depend on how far ahead it was materialized.
    for seed in [7u64, 21] {
        let short = TraceSchedule::lte(seed, 100_000.0, 15.0);
        let long = TraceSchedule::lte(seed, 100_000.0, 30.0);
        let prefix: Vec<_> = long
            .points()
            .iter()
            .take(short.points().len())
            .cloned()
            .collect();
        assert_eq!(short.points(), &prefix[..], "LTE prefix must be stable");

        let short = TraceSchedule::bufferbloat(seed, 100_000.0, 15.0);
        let long = TraceSchedule::bufferbloat(seed, 100_000.0, 30.0);
        let prefix: Vec<_> = long
            .points()
            .iter()
            .take(short.points().len())
            .cloned()
            .collect();
        assert_eq!(short.points(), &prefix[..], "bloat prefix must be stable");
    }
}

#[test]
fn state_replay_matches_direct_sampling_across_cycles() {
    let s = TraceSchedule::from_points(
        vec![pt(0.0, 100_000.0), pt(1.5, 40_000.0), pt(3.0, 80_000.0)],
        Some(4.0),
    )
    .unwrap();
    let mut st = LinkTraceState::new(s.clone());
    let mut cfg = laqa_sim::LinkConfig::default();
    // Walk two full cycles through the cursor API; after consuming every
    // point due at or before t, the config must equal the direct sample.
    let mut applied = 0u32;
    while let Some(at) = st.next_change_at() {
        if at >= 8.0 {
            break;
        }
        assert!(st.apply_next(&mut cfg));
        applied += 1;
        assert_eq!(
            cfg.bandwidth,
            s.sample(at).bandwidth,
            "cursor replay diverged from sample() at t={at}"
        );
    }
    assert_eq!(applied, 6, "3 points x 2 cycles inside 8s");
}

#[test]
fn recorded_traces_round_trip_through_the_parser() {
    let text = "# t  bw  delay  loss\n0.0 100000 0.02 -\n2.0 50000 - 0.01\n4.5 75000 - -\n";
    let pts = laqa_trace::parse_link_trace(text).unwrap();
    let s = TraceSchedule::from_recorded(text, Some(6.0)).unwrap();
    assert_eq!(s.points(), &pts[..]);
    assert_eq!(s.sample(3.0).bandwidth, 50_000.0);
    assert_eq!(s.sample(3.0).loss, Some(0.01));
    assert_eq!(s.sample(6.5).bandwidth, 100_000.0, "wraps");
    assert!(
        TraceSchedule::from_recorded("0 1000\n0 2000\n", None).is_err(),
        "parser errors must propagate"
    );
}
