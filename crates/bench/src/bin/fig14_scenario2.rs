//! **Figure 14 / Appendix A.4** — the Scenario-2 construction, verified
//! numerically.
//!
//! The appendix computes `Buf_total` for Scenario 2 as one initial triangle
//! (the first `k₁` backoffs at the peak bring the rate just below the
//! consumption rate) plus `k − k₁` identical triangles (each subsequent
//! backoff fires exactly when the rate has recovered to `n_a·C`). This
//! binary *simulates* that worst-case loss pattern — literally driving an
//! AIMD rate trajectory with backoffs at the prescribed instants — and
//! integrates the deficit, confirming the closed form the controller uses.

use laqa_bench::outdir;
use laqa_core::scenario::{buf_total, min_backoffs_below, Scenario};
use laqa_trace::{RunSummary, Table};

/// Numerically integrate the deficit of the figure-14 trajectory.
fn simulate_scenario2(rate: f64, n: usize, c: f64, slope: f64, k: u32) -> f64 {
    let consumption = n as f64 * c;
    let k1 = min_backoffs_below(rate, consumption);
    if k < k1 {
        return 0.0;
    }
    let mut r = rate / 2f64.powi(k1 as i32); // k₁ instantaneous backoffs
    let mut remaining = k - k1;
    let dt = 1e-4;
    let mut deficit_area = 0.0;
    // Walk until the final recovery completes.
    loop {
        if r < consumption {
            deficit_area += (consumption - r) * dt;
        } else if remaining > 0 {
            // Recovered to the consumption rate: the next spread backoff
            // fires here (figure 14's sequential triangles).
            r = consumption / 2.0;
            remaining -= 1;
            continue;
        } else {
            break;
        }
        r += slope * dt;
    }
    deficit_area
}

fn main() {
    let c = 10_000.0;
    let slope = 12_500.0;
    let mut tbl = Table::new(
        "Figure 14 / A.4: Scenario-2 closed form vs simulated worst case",
        &[
            "n_a",
            "R",
            "k",
            "k1",
            "closed form (B)",
            "simulated (B)",
            "err",
        ],
    );
    let dir = outdir("fig14");
    let mut worst_err = 0.0f64;
    for n in [2usize, 3, 5] {
        for &rate in &[40_000.0, 90_000.0, 150_000.0] {
            for k in 1..=5u32 {
                let k1 = min_backoffs_below(rate, n as f64 * c);
                let closed = buf_total(Scenario::Two, k, rate, n, c, slope);
                let sim = simulate_scenario2(rate, n, c, slope, k);
                let err = if closed > 0.0 {
                    (closed - sim).abs() / closed
                } else {
                    (closed - sim).abs()
                };
                worst_err = worst_err.max(err);
                if k >= k1 {
                    tbl.row(vec![
                        n.to_string(),
                        format!("{rate:.0}"),
                        k.to_string(),
                        k1.to_string(),
                        format!("{closed:.0}"),
                        format!("{sim:.0}"),
                        format!("{:.2}%", 100.0 * err),
                    ]);
                }
            }
        }
    }
    println!("{}", tbl.render());
    println!("worst relative error: {:.3}%", 100.0 * worst_err);
    println!("expected shape: the appendix decomposition (one k1-deep triangle");
    println!("plus (k-k1) half-consumption triangles) matches the integrated");
    println!("deficit of the literal figure-14 trajectory to numerical accuracy.");

    let mut summary = RunSummary::new("fig14");
    summary.metric("worst_relative_error", worst_err);
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());
    assert!(worst_err < 0.01, "closed form must match the construction");
}
