//! Round-trip-time estimation (Jacobson/Karels, as used by RAP and TCP).
//!
//! RAP adjusts its rate once per smoothed RTT and derives its timeout from
//! the same estimator TCP uses: an exponentially weighted moving average of
//! RTT samples plus four mean deviations.


/// Jacobson/Karels RTT estimator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    /// True until the first sample seeds the estimator.
    seeded: bool,
    /// Lower bound on the returned RTO (seconds).
    min_rto: f64,
    /// Upper bound on the returned RTO (seconds).
    max_rto: f64,
    /// Karn-style exponential backoff exponent: each timeout doubles the
    /// RTO (capped), a fresh sample resets it.
    backoff: u32,
}

/// Cap on the backoff exponent: 2^6 = 64× the base RTO, which already
/// exceeds `max_rto` for any plausible path — further doubling only risks
/// overflow-style pathologies under RTO storms.
const MAX_BACKOFF_EXP: u32 = 6;

impl RttEstimator {
    /// New estimator with an initial guess of `initial_rtt` seconds.
    pub fn new(initial_rtt: f64) -> Self {
        let initial = if initial_rtt.is_finite() && initial_rtt > 0.0 {
            initial_rtt
        } else {
            0.5
        };
        RttEstimator {
            srtt: initial,
            rttvar: initial / 2.0,
            seeded: false,
            min_rto: 0.2,
            max_rto: 60.0,
            backoff: 0,
        }
    }

    /// Smoothed RTT (seconds).
    pub fn srtt(&self) -> f64 {
        self.srtt
    }

    /// RTT mean deviation (seconds).
    pub fn rttvar(&self) -> f64 {
        self.rttvar
    }

    /// Whether at least one sample has been absorbed.
    pub fn seeded(&self) -> bool {
        self.seeded
    }

    /// Retransmission/idle timeout: `srtt + 4·rttvar`, doubled per
    /// unanswered timeout (Karn backoff), clamped to `[min_rto, max_rto]`.
    pub fn rto(&self) -> f64 {
        // Backoff multiplies the clamped base (classic Karn/BSD behaviour):
        // a path whose raw base sits below `min_rto` must still double from
        // `min_rto`, not silently absorb the first few doublings; the
        // product is re-clamped so a storm can never push the timeout past
        // the hard ceiling.
        let base = (self.srtt + 4.0 * self.rttvar).max(self.min_rto);
        (base * f64::from(1u32 << self.backoff)).min(self.max_rto)
    }

    /// Current backoff exponent (0 when no timeout is outstanding).
    pub fn backoff_exponent(&self) -> u32 {
        self.backoff
    }

    /// Clear the timeout backoff (e.g. on any ACK progress, even one that
    /// yields no usable RTT sample).
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// Absorb an RTT sample (seconds). Non-finite or non-positive samples
    /// are ignored.
    pub fn sample(&mut self, rtt: f64) {
        if !(rtt.is_finite() && rtt > 0.0) {
            return;
        }
        // Karn: a valid sample means the path is answering again.
        self.backoff = 0;
        if !self.seeded {
            self.srtt = rtt;
            self.rttvar = rtt / 2.0;
            self.seeded = true;
            return;
        }
        // RFC 6298 coefficients: alpha = 1/8, beta = 1/4.
        let err = rtt - self.srtt;
        self.srtt += err / 8.0;
        self.rttvar += (err.abs() - self.rttvar) / 4.0;
    }

    /// Exponentially back off the RTO after a timeout. The estimate itself
    /// (`srtt`/`rttvar`) is left alone — mutating the variance here both
    /// corrupted the estimator with non-measurements and clamped `rttvar`
    /// against `max_rto`, a bound on a different quantity entirely. The
    /// multiplier is capped so repeated timeouts saturate instead of
    /// overflowing.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(MAX_BACKOFF_EXP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_directly() {
        let mut e = RttEstimator::new(0.5);
        e.sample(0.1);
        assert!((e.srtt() - 0.1).abs() < 1e-12);
        assert!((e.rttvar() - 0.05).abs() < 1e-12);
        assert!(e.seeded());
    }

    #[test]
    fn ewma_converges_to_constant_rtt() {
        let mut e = RttEstimator::new(1.0);
        for _ in 0..200 {
            e.sample(0.04);
        }
        assert!((e.srtt() - 0.04).abs() < 1e-6);
        assert!(e.rttvar() < 1e-3);
    }

    #[test]
    fn rto_clamped_to_min() {
        let mut e = RttEstimator::new(0.01);
        for _ in 0..100 {
            e.sample(0.01);
        }
        assert!((e.rto() - 0.2).abs() < 1e-12, "rto = {}", e.rto());
    }

    #[test]
    fn rto_grows_with_variance() {
        let mut e = RttEstimator::new(0.2);
        for i in 0..50 {
            e.sample(if i % 2 == 0 { 0.1 } else { 0.5 });
        }
        assert!(e.rto() > e.srtt());
        assert!(e.rttvar() > 0.05);
    }

    #[test]
    fn ignores_garbage_samples() {
        let mut e = RttEstimator::new(0.3);
        e.sample(f64::NAN);
        e.sample(-1.0);
        e.sample(0.0);
        assert!(!e.seeded());
        assert!((e.srtt() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn timeout_doubles_rto_not_variance() {
        let mut e = RttEstimator::new(0.2);
        e.sample(0.2);
        let v = e.rttvar();
        let rto = e.rto();
        e.on_timeout();
        assert!((e.rttvar() - v).abs() < 1e-12, "estimate untouched");
        assert!((e.srtt() - 0.2).abs() < 1e-12, "estimate untouched");
        assert!((e.rto() - 2.0 * rto).abs() < 1e-12, "RTO doubled");
        assert_eq!(e.backoff_exponent(), 1);
    }

    #[test]
    fn repeated_timeouts_saturate_at_caps() {
        let mut e = RttEstimator::new(0.2);
        e.sample(0.2);
        // Far more timeouts than the exponent cap: the multiplier must
        // saturate (no overflow, no runaway) and the RTO must respect the
        // hard ceiling.
        for _ in 0..1_000 {
            e.on_timeout();
        }
        assert_eq!(e.backoff_exponent(), 6);
        let base = e.srtt() + 4.0 * e.rttvar();
        assert!((e.rto() - (base * 64.0).min(60.0)).abs() < 1e-12);
        assert!(e.rto() <= 60.0, "RTO never exceeds max_rto");
        assert!(e.rto().is_finite());
    }

    #[test]
    fn sample_and_reset_clear_backoff() {
        let mut e = RttEstimator::new(0.2);
        e.sample(0.2);
        e.on_timeout();
        e.on_timeout();
        assert_eq!(e.backoff_exponent(), 2);
        e.sample(0.2);
        assert_eq!(e.backoff_exponent(), 0, "valid sample clears backoff");
        e.on_timeout();
        e.reset_backoff();
        assert_eq!(e.backoff_exponent(), 0);
        // A garbage sample is ignored entirely and must not clear backoff.
        e.on_timeout();
        e.sample(f64::NAN);
        assert_eq!(e.backoff_exponent(), 1);
    }

    #[test]
    fn bad_initial_falls_back() {
        let e = RttEstimator::new(f64::NAN);
        assert!((e.srtt() - 0.5).abs() < 1e-12);
    }
}
