//! **Figure 11** — the detailed T1 trace: 1 quality-adaptive RAP flow
//! co-existing with 9 RAP flows and 10 TCP flows through an 800 Kb/s,
//! 40 ms-RTT bottleneck, `K_max = 2`.
//!
//! Reproduces all five panels as CSV series and prints terminal strip
//! charts: total transmit + consumption rates, per-layer transmit
//! breakdown, per-layer bandwidth share, per-layer drain rate, and
//! per-layer accumulated buffering.

use laqa_bench::{ascii_plot, outdir, window_mean};
use laqa_sim::{run_scenario, ScenarioConfig};
use laqa_trace::{Recorder, RunSummary};

fn main() {
    let duration = 45.0;
    let cfg = ScenarioConfig::t1(2, duration, 7);
    let out = run_scenario(&cfg);

    println!("== Figure 11: first 40 s of the K_max=2 T1 trace ==");
    println!(
        "(QA flow joins at t={}s; panels below start there)\n",
        cfg.qa_start
    );
    println!("total tx rate   : {}", ascii_plot(&out.traces.tx_rate, 72));
    println!(
        "consumption     : {}",
        ascii_plot(&out.traces.consumption, 72)
    );
    println!("active layers   : {}", ascii_plot(&out.traces.n_active, 72));
    for i in 0..6 {
        println!(
            "L{i} tx rate     : {}",
            ascii_plot(&out.traces.layer_rate[i], 72)
        );
    }
    for i in 0..6 {
        println!(
            "L{i} drain rate  : {}",
            ascii_plot(&out.traces.drain_rate[i], 72)
        );
    }
    for i in 0..6 {
        println!(
            "L{i} buffer      : {}",
            ascii_plot(&out.traces.buffer[i], 72)
        );
    }

    let steady = (15.0, duration);
    let mean_rate = window_mean(&out.traces.tx_rate, steady.0, steady.1).unwrap_or(0.0);
    let mean_layers = window_mean(&out.traces.n_active, steady.0, steady.1).unwrap_or(0.0);
    let max_buf: f64 = out
        .traces
        .buffer
        .iter()
        .map(|b| b.max().unwrap_or(0.0))
        .fold(0.0, f64::max);

    println!();
    println!("steady-state (t>{:.0}s):", steady.0);
    println!("  QA mean tx rate     : {mean_rate:.0} B/s");
    println!("  QA mean layer count : {mean_layers:.2}");
    println!("  peak per-layer buf  : {max_buf:.0} B");
    println!("  backoffs            : {}", out.backoffs);
    println!(
        "  base-layer stalls   : {} (sender) / {} (receiver)",
        out.metrics.stalls(),
        out.rx_base_underflows
    );
    println!("  quality changes     : {}", out.metrics.quality_changes());
    println!();
    println!("expected shape: sawtooth tx rate; consumption staircase tracking");
    println!("its long-term level; most bandwidth variation absorbed by the");
    println!("lowest layers' buffer fill/drain spikes; base layer never stalls.");

    let dir = outdir("fig11");
    let mut rec = Recorder::new();
    rec.insert(out.traces.tx_rate.clone());
    rec.insert(out.traces.consumption.clone());
    rec.insert(out.traces.n_active.clone());
    for i in 0..cfg.qa.max_layers {
        rec.insert(out.traces.layer_rate[i].clone());
        rec.insert(out.traces.drain_rate[i].clone());
        rec.insert(out.traces.buffer[i].clone());
    }
    for ts in &out.rx_buffers {
        rec.insert(ts.clone());
    }
    rec.write_csv_dir(&dir).expect("csv");
    // Ready-to-run gnuplot script reproducing the stacked panels.
    let panels = [
        laqa_trace::Panel::new(
            "total transmit + consumption",
            "B/s",
            &["tx_rate", "consumption"],
        ),
        laqa_trace::Panel::new("active layers", "count", &["n_active"]),
        laqa_trace::Panel::new(
            "per-layer transmit rate",
            "B/s",
            &[
                "layer_rate_0",
                "layer_rate_1",
                "layer_rate_2",
                "layer_rate_3",
            ],
        ),
        laqa_trace::Panel::new(
            "per-layer drain rate",
            "B/s",
            &[
                "drain_rate_0",
                "drain_rate_1",
                "drain_rate_2",
                "drain_rate_3",
            ],
        ),
        laqa_trace::Panel::new(
            "per-layer buffer",
            "bytes",
            &["buffer_0", "buffer_1", "buffer_2", "buffer_3"],
        ),
    ];
    std::fs::write(
        dir.join("plot.gp"),
        laqa_trace::render_script("fig11", &panels),
    )
    .expect("gnuplot script");

    let mut summary = RunSummary::new("fig11");
    summary
        .param("k_max", 2)
        .param("duration", duration)
        .param("bottleneck_bw", cfg.dumbbell.bottleneck_bw)
        .param("n_rap", cfg.n_rap)
        .param("n_tcp", cfg.n_tcp)
        .metric("mean_rate_steady", mean_rate)
        .metric("mean_layers_steady", mean_layers)
        .metric("peak_layer_buffer", max_buf)
        .metric("backoffs", out.backoffs as f64)
        .metric("quality_changes", out.metrics.quality_changes() as f64)
        .metric("base_stalls", out.metrics.stalls() as f64)
        .metric("rx_base_underflows", out.rx_base_underflows as f64)
        .note("layer rate scaled to C=1.25 KB/s so the 800 Kb/s / 20-flow fair share spans 3-5 layers, preserving the paper's ratios (see EXPERIMENTS.md)");
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    println!("wrote {}", dir.display());
}
