//! Microbenchmarks for the RAP protocol machinery (per-packet and per-ACK
//! costs of figure 1's sender and the streaming endpoints). Std-only
//! (`laqa_bench::timing`), no criterion.

use laqa_bench::timing::Runner;
use laqa_rap::{RapConfig, RapReceiverState, RapSender};
use std::hint::black_box;

fn main() {
    let mut r = Runner::from_args();

    {
        let mut rx = RapReceiverState::new();
        let mut seq = 0u64;
        r.bench("rap_receiver/on_data_in_order", || {
            let ack = rx.on_data(black_box(seq));
            seq += 1;
            ack
        });
    }
    {
        let mut rx = RapReceiverState::new();
        let mut seq = 0u64;
        r.bench("rap_receiver/on_data_with_gaps", || {
            // every 7th packet missing
            seq += if seq % 7 == 6 { 2 } else { 1 };
            rx.on_data(black_box(seq))
        });
    }

    {
        let mut s = RapSender::new(RapConfig::default(), 0.0);
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        r.bench("rap_sender/register_send", || {
            let seq = s.register_send(now, 1_000.0, 0);
            // keep the history bounded: ack immediately
            s.on_ack(now + 0.01, rx.on_data(seq));
            s.take_events();
            now += 0.001;
            seq
        });
    }
    {
        let mut s = RapSender::new(RapConfig::default(), 0.0);
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        r.bench("rap_sender/ack_round_trip", || {
            now += 0.001;
            s.poll_timers(now);
            let seq = s.register_send(now, 1_000.0, 0);
            let ack = rx.on_data(black_box(seq));
            s.on_ack(now + 0.04, ack);
            s.take_events().len()
        });
    }

    r.finish();
}
