//! Named counters, gauges and fixed-bucket histograms behind relaxed
//! atomics.
//!
//! Handles are `const`-constructible so an instrumentation site is one
//! `static` plus one method call. The first touch of a handle registers
//! its cell in the process-global store; every later touch is a cached
//! pointer load. When [`crate::enabled`] is false, the mutating methods
//! return after a single relaxed atomic load.
//!
//! If two sites declare the same metric name, snapshots merge them
//! (counters and histogram buckets sum; for gauges the **last written**
//! cell wins — each `set` takes a global write stamp, so the snapshot
//! reflects the most recent value regardless of which call site stored
//! it or in what order the sites first registered).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Powers-of-two nanosecond ladder for latency histograms: 16 ns up to
/// ~8.6 s (2^33 ns), 31 buckets including overflow. Wide enough for both
/// sub-microsecond dispatch latencies and multi-second timer-wheel slack.
pub const LOG_NS_BOUNDS: &[f64] = &[
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    2048.0,
    4096.0,
    8192.0,
    16384.0,
    32768.0,
    65536.0,
    131072.0,
    262144.0,
    524288.0,
    1048576.0,
    2097152.0,
    4194304.0,
    8388608.0,
    16777216.0,
    33554432.0,
    67108864.0,
    134217728.0,
    268435456.0,
    536870912.0,
    1073741824.0,
    2147483648.0,
    4294967296.0,
    8589934592.0,
];

/// Powers-of-two millisecond ladder for wall-time histograms: 0.25 ms up
/// to ~65.5 s.
pub const LOG_MS_BOUNDS: &[f64] = &[
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    8192.0, 16384.0, 32768.0, 65536.0,
];

pub(crate) struct CounterCell {
    name: &'static str,
    value: AtomicU64,
}

/// Strictly increasing stamp handed to every gauge write so duplicate
/// gauge names merge by most-recent-write, not registration order.
static GAUGE_STAMP: AtomicU64 = AtomicU64::new(0);

pub(crate) struct GaugeCell {
    name: &'static str,
    bits: AtomicU64,
    /// Stamp of this cell's latest `set` (0 = never written).
    stamp: AtomicU64,
}

pub(crate) struct HistogramCell {
    name: &'static str,
    bounds: &'static [f64],
    /// One slot per bound plus a final overflow slot.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

#[derive(Default)]
struct Store {
    counters: Mutex<Vec<Arc<CounterCell>>>,
    gauges: Mutex<Vec<Arc<GaugeCell>>>,
    histograms: Mutex<Vec<Arc<HistogramCell>>>,
}

static STORE: OnceLock<Store> = OnceLock::new();

fn store() -> &'static Store {
    STORE.get_or_init(Store::default)
}

/// A monotonically increasing event count (e.g. layer drops, backoffs).
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<CounterCell>>,
}

impl Counter {
    /// Const handle; the cell registers on first use.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<CounterCell> {
        self.cell.get_or_init(|| {
            let cell = Arc::new(CounterCell {
                name: self.name,
                value: AtomicU64::new(0),
            });
            store().counters.lock().expect("obs store").push(cell.clone());
            cell
        })
    }

    /// Add 1. No-op (one relaxed load) while obs is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op (one relaxed load) while obs is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell().value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (reads regardless of the enabled flag).
    pub fn get(&self) -> u64 {
        self.cell().value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (e.g. a queue depth).
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<GaugeCell>>,
}

impl Gauge {
    /// Const handle; the cell registers on first use.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<GaugeCell> {
        self.cell.get_or_init(|| {
            let cell = Arc::new(GaugeCell {
                name: self.name,
                bits: AtomicU64::new(0f64.to_bits()),
                stamp: AtomicU64::new(0),
            });
            store().gauges.lock().expect("obs store").push(cell.clone());
            cell
        })
    }

    /// Store `v`. No-op (one relaxed load) while obs is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let cell = self.cell();
        cell.bits.store(v.to_bits(), Ordering::Relaxed);
        let stamp = GAUGE_STAMP.fetch_add(1, Ordering::Relaxed) + 1;
        cell.stamp.store(stamp, Ordering::Relaxed);
    }

    /// Current value (reads regardless of the enabled flag).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell().bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `bounds` are inclusive upper edges, with an
/// implicit final overflow bucket.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [f64],
    cell: OnceLock<Arc<HistogramCell>>,
}

impl Histogram {
    /// Const handle; `bounds` must be sorted ascending.
    pub const fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        Histogram {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<HistogramCell> {
        self.cell.get_or_init(|| {
            let cell = Arc::new(HistogramCell {
                name: self.name,
                bounds: self.bounds,
                counts: (0..=self.bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            });
            store()
                .histograms
                .lock()
                .expect("obs store")
                .push(cell.clone());
            cell
        })
    }

    /// Record one observation. No-op (one relaxed load) while disabled.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let cell = self.cell();
        let idx = cell
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(cell.bounds.len());
        cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        // f64 accumulation via CAS on the bit pattern (std has no atomic
        // float); contention is negligible at telemetry rates.
        let mut cur = cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations (reads regardless of the flag).
    pub fn count(&self) -> u64 {
        self.cell().count.load(Ordering::Relaxed)
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Inclusive upper bucket edges (the final overflow bucket is
    /// implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts,
    /// Prometheus-style: find the bucket holding the `q·count`-th
    /// observation and interpolate linearly between its edges (the first
    /// bucket's lower edge is 0). An estimate landing in the open-ended
    /// overflow bucket reports that bucket's lower edge — the largest
    /// finite bound — so tails are never extrapolated past what was
    /// measured. `None` when the histogram is empty or `q` is out of
    /// range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c as f64;
            if cum >= target {
                return Some(match self.bounds.get(i) {
                    Some(&hi) => {
                        let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                        let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
                        lo + (hi - lo) * frac
                    }
                    None => self.bounds.last().copied().unwrap_or(f64::NAN),
                });
            }
        }
        // Unreachable: the cumulative count reaches `count >= target`.
        None
    }
}

/// Snapshot all counters (merged by name, summed).
pub(crate) fn snapshot_counters() -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for cell in store().counters.lock().expect("obs store").iter() {
        *out.entry(cell.name.to_string()).or_insert(0) += cell.value.load(Ordering::Relaxed);
    }
    out
}

/// Snapshot all gauges. Duplicate names merge by **most recent write**:
/// the cell with the highest write stamp supplies the value (cells that
/// were never written all carry stamp 0 and report the 0.0 default).
pub(crate) fn snapshot_gauges() -> BTreeMap<String, f64> {
    let mut out: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for cell in store().gauges.lock().expect("obs store").iter() {
        let stamp = cell.stamp.load(Ordering::Relaxed);
        let value = f64::from_bits(cell.bits.load(Ordering::Relaxed));
        let entry = out.entry(cell.name.to_string()).or_insert((stamp, value));
        if stamp > entry.0 {
            *entry = (stamp, value);
        }
    }
    out.into_iter().map(|(k, (_, v))| (k, v)).collect()
}

/// Snapshot all histograms (merged by name when bounds agree).
pub(crate) fn snapshot_histograms() -> Vec<HistogramSnapshot> {
    let mut by_name: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for cell in store().histograms.lock().expect("obs store").iter() {
        let counts: Vec<u64> = cell
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = cell.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(cell.sum_bits.load(Ordering::Relaxed));
        match by_name.get_mut(cell.name) {
            Some(existing) if existing.bounds == cell.bounds => {
                for (acc, c) in existing.counts.iter_mut().zip(&counts) {
                    *acc += c;
                }
                existing.count += count;
                existing.sum += sum;
            }
            Some(_) => {} // same name, different bounds: first wins
            None => {
                by_name.insert(
                    cell.name.to_string(),
                    HistogramSnapshot {
                        name: cell.name.to_string(),
                        bounds: cell.bounds.to_vec(),
                        counts,
                        count,
                        sum,
                    },
                );
            }
        }
    }
    by_name.into_values().collect()
}

/// Zero every registered metric (cells stay registered).
pub(crate) fn reset_metrics() {
    let s = store();
    for cell in s.counters.lock().expect("obs store").iter() {
        cell.value.store(0, Ordering::Relaxed);
    }
    for cell in s.gauges.lock().expect("obs store").iter() {
        cell.bits.store(0f64.to_bits(), Ordering::Relaxed);
        cell.stamp.store(0, Ordering::Relaxed);
    }
    for cell in s.histograms.lock().expect("obs store").iter() {
        for c in &cell.counts {
            c.store(0, Ordering::Relaxed);
        }
        cell.count.store(0, Ordering::Relaxed);
        cell.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Declare (or reuse) a [`Counter`] named by a string literal; expands to
/// a `&'static Counter` backed by a per-call-site `static`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __LAQA_OBS_COUNTER: $crate::Counter = $crate::Counter::new($name);
        &__LAQA_OBS_COUNTER
    }};
}

/// Declare (or reuse) a [`Gauge`] named by a string literal.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static __LAQA_OBS_GAUGE: $crate::Gauge = $crate::Gauge::new($name);
        &__LAQA_OBS_GAUGE
    }};
}

/// Declare (or reuse) a [`Histogram`] with const bucket bounds.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $bounds:expr) => {{
        static __LAQA_OBS_HIST: $crate::Histogram = $crate::Histogram::new($name, $bounds);
        &__LAQA_OBS_HIST
    }};
}

#[cfg(test)]
mod tests {
    use crate::tests::TEST_LOCK;

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        let c = counter!("registry.test.ctr");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = gauge!("registry.test.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = histogram!("registry.test.hist", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            h.observe(v);
        }
        crate::set_enabled(false);
        let snaps = super::snapshot_histograms();
        let snap = snaps
            .iter()
            .find(|s| s.name == "registry.test.hist")
            .unwrap();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 562.5).abs() < 1e-9);
        assert!((snap.mean().unwrap() - 112.5).abs() < 1e-9);
    }

    #[test]
    fn boundary_values_land_in_lower_bucket() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        let h = histogram!("registry.test.edges", &[1.0, 2.0]);
        h.observe(1.0); // inclusive upper edge
        h.observe(2.0);
        crate::set_enabled(false);
        let snaps = super::snapshot_histograms();
        let snap = snaps
            .iter()
            .find(|s| s.name == "registry.test.edges")
            .unwrap();
        assert_eq!(snap.counts, vec![1, 1, 0]);
    }

    #[test]
    fn duplicate_counter_names_merge_in_snapshot() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        counter!("registry.test.dup").add(2);
        counter!("registry.test.dup").add(3); // distinct call site, same name
        crate::set_enabled(false);
        let counters = super::snapshot_counters();
        assert_eq!(counters.get("registry.test.dup"), Some(&5));
    }

    #[test]
    fn duplicate_gauge_names_merge_by_last_write_not_registration() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        // Two call sites share one name; writes interleave. The snapshot
        // must report the most recent write even though it landed in the
        // FIRST-registered cell.
        gauge!("registry.test.dupg").set(1.0);
        gauge!("registry.test.dupg").set(2.0); // second site registers later
        gauge!("registry.test.dupg").set(3.0); // back to the first site
        crate::set_enabled(false);
        let gauges = super::snapshot_gauges();
        assert_eq!(gauges.get("registry.test.dupg"), Some(&3.0));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let snap = super::HistogramSnapshot {
            name: "q".into(),
            bounds: vec![10.0, 20.0, 40.0],
            // 10 observations in (10, 20], 10 in (20, 40].
            counts: vec![0, 10, 10, 0],
            count: 20,
            sum: 0.0,
        };
        // p50 sits exactly at the first bucket's upper edge.
        assert!((snap.quantile(0.5).unwrap() - 20.0).abs() < 1e-9);
        // p25 is halfway through the (10, 20] bucket.
        assert!((snap.quantile(0.25).unwrap() - 15.0).abs() < 1e-9);
        // p75 is halfway through the (20, 40] bucket.
        assert!((snap.quantile(0.75).unwrap() - 30.0).abs() < 1e-9);
        assert!((snap.quantile(1.0).unwrap() - 40.0).abs() < 1e-9);
        // q=0 reports the populated range's lower edge.
        assert!((snap.quantile(0.0).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(snap.quantile(1.5), None);
        assert_eq!(snap.quantile(-0.1), None);
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_largest_bound() {
        let snap = super::HistogramSnapshot {
            name: "q".into(),
            bounds: vec![1.0, 2.0],
            counts: vec![1, 0, 9], // tail lives in the overflow bucket
            count: 10,
            sum: 0.0,
        };
        assert!((snap.quantile(0.99).unwrap() - 2.0).abs() < 1e-9);
        let empty = super::HistogramSnapshot {
            name: "q".into(),
            bounds: vec![1.0],
            counts: vec![0, 0],
            count: 0,
            sum: 0.0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }
}
