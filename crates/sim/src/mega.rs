//! Megasession engine: many QA/RAP sessions multiplexed on one engine
//! with per-session private event queues and time-sliced batched service.
//!
//! A campaign of N sessions used to be N independent [`World`]s run one
//! after another, paying per-session executor overhead (steal, build,
//! extract) N times with no locality between sessions. The first
//! megasession engine (PR 6) went to the other extreme — one *shared*
//! queue whose events carried a `(session, epoch)` tag — and measured
//! 0.53x the warm per-cell executor: every event paid the tag, an epoch
//! check, an indirect queue hop, and a stable sort to regroup events by
//! session that the shared queue had just finished interleaving.
//!
//! PR 10 replaces the shared queue with the layout the profile asked
//! for: each session keeps its **own** [`EventQueue`] (exactly the solo
//! world's, session-local times, private `seq`), and the engine keeps a
//! hot struct-of-arrays column — [`HotSlot`]: next global fire time,
//! offset, end, epoch — that the service loop scans to pick the session
//! with the earliest due event. That session is then serviced for a
//! whole *time slice* (`service_slice_ns`; by default unbounded, i.e.
//! up to the `run_until` bound — see [`DEFAULT_SLICE_NS`]): its events
//! dispatch back-to-back through the same
//! [`crate::engine::dispatch_event`] code a solo world runs, with the
//! queue, links, RNG, and agents all cache-resident. No per-event tags,
//! no epoch checks, no sorting.
//!
//! **Equivalence argument.** Sessions share no mutable state at all —
//! not even a queue. A session's events live in its own queue with its
//! own `seq` counter, so the dispatch subsequence it experiences under
//! any slice schedule is *by construction* the solo `(time, seq)` order;
//! slicing only chooses how much of that fixed sequence runs before the
//! engine looks at other sessions, which no session can observe. The
//! global min-scan merely guarantees every session reaches the run
//! bound. `tests/mega_differential.rs` and `tests/mega_properties.rs`
//! pin this, including a slice-length sweep.
//!
//! **Teardown.** Retiring a session bumps its slot's epoch (stale
//! [`SessionId`] handles are rejected) and drops whatever events were
//! still pending in its private queue — in-flight timers past the
//! session's end that an isolated `run_until` would have left
//! unprocessed. Each dropped event is counted as `mega.token_recycles`,
//! keeping the PR 6 meaning: tokens of a dead session that never fired.

use crate::engine::{
    dispatch_event, start_agents, Agent, EventQueue, SessionCore, World, WorldSalvage,
};
use crate::link::{LinkConfig, LinkStats};
use crate::packet::{AgentId, LinkId};
use crate::sched::{ambient_scheduler, SchedulerKind};
use crate::time::{ns_to_secs, secs_to_ns};

/// Default service slice: how much simulated time one session is run
/// before the engine re-scans for the globally earliest session.
/// Default is run-to-completion (no slicing): each `run_until(t)` call
/// is itself the natural interleaving quantum — an incremental caller
/// that steps the engine in small bounds already interleaves sessions
/// at that cadence — and on the one-shot campaign path, finite slices
/// only add slot-switch cache refills (a measured 6–8 % at 2^28 ns on
/// the 64-session probe) without changing a single trajectory bit.
/// Callers that want finer batching inside one long `run_until` (e.g.
/// dense `sessions_live`-style gauge updates or flight batches) set it
/// via [`MegaEngine::set_service_slice`].
const DEFAULT_SLICE_NS: u64 = u64::MAX;

/// Parked marker for [`HotSlot::next_fire_ns`]: no runnable event (dead
/// slot, empty queue, or all remaining events past the session's end).
const PARKED: u64 = u64::MAX;

/// Handle to a session inside a [`MegaEngine`]: its table slot plus the
/// epoch the slot had when the session was admitted. Stale handles (from
/// before a slot was recycled) are detected and rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionId {
    slot: u32,
    epoch: u32,
}

impl SessionId {
    /// The session's slot index (stable while the session is live).
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

/// The hot per-slot scheduling state — everything the service loop's
/// min-scan touches, packed into one 32-byte row so scanning 64 sessions
/// reads two cache lines' worth of rows per slice instead of chasing
/// four parallel vectors.
struct HotSlot {
    /// Global time of the session's earliest pending event ([`PARKED`]
    /// when there is none). For an admitted-but-unstarted session this
    /// is its start offset (the `start()` sweep is the first service).
    next_fire_ns: u64,
    /// Global time of the session's local zero (its start offset).
    offset_ns: u64,
    /// Global time past which the session's events are dropped
    /// (an isolated `run_until` would have left them unprocessed).
    end_ns: u64,
    /// Slot reuse guard: bumped on retire, checked on handle use.
    epoch: u32,
    /// Whether the `start()` sweep has run.
    started: bool,
    /// Slot occupancy.
    live: bool,
}

/// Struct-of-arrays session state: index `i` of every column belongs to
/// the session in slot `i`. The scheduling-relevant state lives in the
/// dense [`HotSlot`] column; the cold side — engine cores (links, RNG,
/// counters), agent boxes, and the private queues — is only touched for
/// the one session being serviced.
#[derive(Default)]
struct SessionTable {
    /// Hot column: scanned every slice.
    hot: Vec<HotSlot>,
    /// Per-session private event queues (`None` for dead slots — the
    /// queue leaves with the retiring session's [`WorldSalvage`]).
    queues: Vec<Option<EventQueue>>,
    /// Per-session engine state (clock, links, RNG, counters).
    cores: Vec<SessionCore>,
    /// Per-session agent columns.
    agents: Vec<Vec<Option<Box<dyn Agent>>>>,
    /// Free slots, reused LIFO.
    free: Vec<u32>,
}

/// Read-only view of one live session inside a [`MegaEngine`], for stats
/// extraction after a run — the megasession analogue of the accessor
/// surface on [`World`].
pub struct MegaSessionView<'a> {
    core: &'a SessionCore,
    agents: &'a [Option<Box<dyn Agent>>],
}

impl MegaSessionView<'_> {
    /// Typed view of an agent (e.g. to pull stats after a run).
    pub fn agent<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agents.get(id)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Counters of a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.core.links[link].stats
    }

    /// Current configuration of a link.
    pub fn link_config(&self, link: LinkId) -> LinkConfig {
        self.core.links[link].cfg
    }

    /// Events dispatched for this session so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }
}

/// Multiplexes many sessions on one engine. See the module docs for the
/// layout, equivalence, and teardown story.
pub struct MegaEngine {
    /// Global clock (nanoseconds). Session-local time is
    /// `now_ns - hot[slot].offset_ns`.
    now_ns: u64,
    kind: SchedulerKind,
    table: SessionTable,
    /// Service quantum in simulated nanoseconds (see [`DEFAULT_SLICE_NS`]
    /// and [`MegaEngine::set_service_slice`]).
    slice_ns: u64,
    /// Per-session queue reserve applied at [`MegaEngine::add_world`]
    /// (set by [`MegaEngine::reserve`]) so wheel-slab/heap growth
    /// happens at admission, never mid-slice.
    events_hint: usize,
    /// Events dropped unprocessed when their session retired.
    token_recycles: u64,
    /// Live sessions.
    live_count: usize,
}

impl MegaEngine {
    /// New empty engine on the ambient scheduler kind.
    pub fn new() -> Self {
        Self::with_scheduler(ambient_scheduler())
    }

    /// New empty engine on an explicit scheduler kind. As with solo
    /// worlds, the kind changes wall-clock speed only, never results.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        MegaEngine {
            now_ns: 0,
            kind,
            table: SessionTable::default(),
            slice_ns: DEFAULT_SLICE_NS,
            events_hint: 0,
            token_recycles: 0,
            live_count: 0,
        }
    }

    /// Which event-scheduler implementation the sessions' queues run on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Current global simulation time (seconds).
    pub fn now(&self) -> f64 {
        ns_to_secs(self.now_ns)
    }

    /// Set the service quantum: how much *simulated* time one session is
    /// run before the engine re-scans for the globally earliest session.
    /// Purely a batching knob — any positive value (and the `0.0`
    /// degenerate case, one timestamp per slice) yields bit-identical
    /// trajectories, because no state crosses sessions; larger slices
    /// buy locality, smaller ones interleave sessions more finely.
    pub fn set_service_slice(&mut self, slice_secs: f64) {
        assert!(slice_secs >= 0.0, "service slice must be non-negative");
        // `secs_to_ns` clamps non-finite input to 0 — for this knob that
        // would silently turn "run to completion" into "one timestamp per
        // slice", the opposite extreme.
        self.slice_ns = if slice_secs.is_infinite() {
            u64::MAX
        } else {
            secs_to_ns(slice_secs)
        };
    }

    /// Events dropped unprocessed at retire: timers and packets a
    /// retired session still had pending (typically armed past its own
    /// end — an isolated `run_until` would have left them unprocessed
    /// too). The megasession analogue of lazy timer cancellation.
    pub fn token_recycles(&self) -> u64 {
        self.token_recycles
    }

    /// Live (admitted, not retired) sessions.
    pub fn sessions_live(&self) -> usize {
        self.live_count
    }

    /// Pre-size the session table for `sessions` more sessions, and
    /// remember `events_hint` (total, split evenly) as the per-session
    /// queue reserve applied when worlds are admitted — so wheel-slab /
    /// heap growth happens at admission, never mid-slice.
    pub fn reserve(&mut self, sessions: usize, events_hint: usize) {
        self.table.hot.reserve(sessions);
        self.table.queues.reserve(sessions);
        self.table.cores.reserve(sessions);
        self.table.agents.reserve(sessions);
        self.events_hint = self.events_hint.max(events_hint / sessions.max(1));
    }

    /// Absorb an unstarted [`World`] as a new session that starts (agents'
    /// `start()` callbacks) at global time `start_at` seconds — its local
    /// clock runs from zero there — and stops processing events
    /// `duration` simulated seconds later, exactly like an isolated
    /// `world.run_until(duration)`.
    ///
    /// The world's own queue must be empty (nothing schedules before
    /// start); it becomes the session's private queue and is handed back
    /// with the session's [`WorldSalvage`] at retire. Slots of retired
    /// sessions are reused LIFO.
    pub fn add_world(&mut self, world: World, start_at: f64, duration: f64) -> SessionId {
        let start_ns = secs_to_ns(start_at);
        assert!(
            start_ns >= self.now_ns,
            "session start {start_at}s precedes engine time {}s",
            self.now()
        );
        assert!(!world.started, "absorbed world must be unstarted");
        assert!(
            world.queue.is_empty(),
            "absorbed world must have an empty event queue"
        );
        let World {
            core,
            queue,
            agents,
            ..
        } = world;
        let mut queue = if queue.kind() == self.kind {
            queue
        } else {
            EventQueue::new(self.kind)
        };
        if self.events_hint > 0 {
            queue.reserve(self.events_hint);
        }
        let end_ns = start_ns.saturating_add(secs_to_ns(duration.max(0.0)));
        let slot = match self.table.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                let epoch = self.table.hot[i].epoch;
                self.table.hot[i] = HotSlot {
                    next_fire_ns: start_ns,
                    offset_ns: start_ns,
                    end_ns,
                    epoch,
                    started: false,
                    live: true,
                };
                self.table.queues[i] = Some(queue);
                self.table.cores[i] = core;
                self.table.agents[i] = agents;
                slot
            }
            None => {
                let slot = u32::try_from(self.table.hot.len()).expect("session table overflow");
                self.table.hot.push(HotSlot {
                    next_fire_ns: start_ns,
                    offset_ns: start_ns,
                    end_ns,
                    epoch: 0,
                    started: false,
                    live: true,
                });
                self.table.queues.push(Some(queue));
                self.table.cores.push(core);
                self.table.agents.push(agents);
                slot
            }
        };
        self.live_count += 1;
        laqa_obs::gauge!("mega.sessions_live").set(self.live_count as f64);
        SessionId {
            slot,
            epoch: self.table.hot[slot as usize].epoch,
        }
    }

    /// Read-only view of a live session for stats extraction.
    ///
    /// # Panics
    /// On a stale (already-retired slot) handle.
    pub fn session(&self, sid: SessionId) -> MegaSessionView<'_> {
        let i = sid.slot as usize;
        assert!(
            self.table.hot[i].live && self.table.hot[i].epoch == sid.epoch,
            "stale session handle: slot {} epoch {}",
            sid.slot,
            sid.epoch
        );
        MegaSessionView {
            core: &self.table.cores[i],
            agents: &self.table.agents[i],
        }
    }

    /// Retire a session, freeing its slot for reuse and returning its
    /// engine storage as a [`WorldSalvage`] — including its private
    /// queue (reset, capacity intact) — so warm pools recycle exactly
    /// what a solo [`World::salvage`] would have handed back. Events the
    /// session still had pending are dropped here and counted as token
    /// recycles.
    pub fn retire(&mut self, sid: SessionId) -> WorldSalvage {
        let i = sid.slot as usize;
        assert!(
            self.table.hot[i].live && self.table.hot[i].epoch == sid.epoch,
            "retire of a dead or recycled session: slot {} epoch {}",
            sid.slot,
            sid.epoch
        );
        let hot = &mut self.table.hot[i];
        hot.epoch = hot.epoch.wrapping_add(1);
        hot.live = false;
        hot.next_fire_ns = PARKED;
        self.table.free.push(sid.slot);
        self.live_count -= 1;
        laqa_obs::gauge!("mega.sessions_live").set(self.live_count as f64);

        let mut queue = self.table.queues[i].take().expect("live slot has a queue");
        let dropped = queue.len() as u64;
        if dropped > 0 {
            self.token_recycles += dropped;
            laqa_obs::counter!("mega.token_recycles").add(dropped);
        }
        queue.reset();
        let core = std::mem::replace(&mut self.table.cores[i], SessionCore::fresh(0));
        let mut agents = std::mem::take(&mut self.table.agents[i]);
        agents.clear();
        // Mirror World::salvage: link shells move to the spare pool in
        // creation order, the emptied links vector keeps its capacity.
        let SessionCore {
            mut links,
            mut spare_links,
            ..
        } = core;
        spare_links.clear();
        spare_links.append(&mut links);
        WorldSalvage {
            queue,
            links,
            spare_links,
            agents,
        }
    }

    /// Run every session's events up to *global* time `t_end` seconds
    /// (events at exactly `t_end` are processed, as in
    /// [`World::run_until`]). Service is sliced: the session with the
    /// globally earliest pending event runs for up to `slice_ns` of
    /// simulated time on its own queue, then the scan repeats. Sessions
    /// whose remaining events all lie past their own end are parked
    /// unprocessed, exactly as an isolated `run_until(duration)` would
    /// leave them.
    pub fn run_until(&mut self, t_end: f64) {
        let end_ns = secs_to_ns(t_end);
        loop {
            // Min-scan over the hot column: earliest due session wins,
            // ties broken by lowest slot (deterministic, and irrelevant
            // to results — sessions share no state).
            let mut best = usize::MAX;
            let mut best_ns = PARKED;
            for (i, h) in self.table.hot.iter().enumerate() {
                if h.next_fire_ns < best_ns {
                    best_ns = h.next_fire_ns;
                    best = i;
                }
            }
            if best == usize::MAX || best_ns > end_ns {
                break;
            }
            self.service_slice(best, best_ns, end_ns);
        }
        self.now_ns = self.now_ns.max(end_ns);
        // Sessions that outlived their own end keep their local clock at
        // the last dispatched event; pin it to the session end the way a
        // solo run_until pins `now` to its bound.
        for (i, h) in self.table.hot.iter().enumerate() {
            if h.live {
                let bound = h.end_ns.min(self.now_ns);
                let local_bound = bound.saturating_sub(h.offset_ns);
                let core = &mut self.table.cores[i];
                core.now_ns = core.now_ns.max(local_bound);
            }
        }
    }

    /// Service session `i` from its earliest pending event at global
    /// `fire_ns` up to `min(run bound, session end, fire + slice)`,
    /// entirely on its own queue, then refresh its hot-column fire time.
    fn service_slice(&mut self, i: usize, fire_ns: u64, end_ns: u64) {
        let hot = &mut self.table.hot[i];
        if fire_ns > hot.end_ns {
            // Everything left is past this session's end: an isolated
            // world's run_until(duration) would have stopped here with
            // those events unprocessed. Park until retire.
            hot.next_fire_ns = PARKED;
            return;
        }
        let bound_ns = end_ns.min(hot.end_ns).min(fire_ns.saturating_add(self.slice_ns));
        let offset_ns = hot.offset_ns;
        let local_bound = bound_ns - offset_ns;
        let core = &mut self.table.cores[i];
        let agents = &mut self.table.agents[i];
        let queue = self.table.queues[i].as_mut().expect("live slot has a queue");
        let flight = laqa_obs::flight::enabled();
        if flight {
            // Timeline records from these dispatches (QA transitions,
            // timer fires, ...) land on the session's own track.
            laqa_obs::flight::set_session(core.flight_id);
        }
        if !hot.started {
            // The solo engine's lazy start, at the session's offset: one
            // start() sweep over the agent column, local clock at zero.
            // Not counted in events_processed (World::ensure_started
            // doesn't count either).
            hot.started = true;
            core.now_ns = 0;
            start_agents(agents, core, queue);
        }
        let obs = laqa_obs::enabled();
        let mut serviced = 0u64;
        while let Some((time_ns, _, event)) = queue.pop_next_at_or_before(local_bound) {
            core.now_ns = time_ns;
            core.events_processed += 1;
            serviced += 1;
            let timed = obs.then(std::time::Instant::now);
            dispatch_event(core, agents, queue, event);
            if let Some(t0) = timed {
                laqa_obs::histogram!("mega.session_event_ns", laqa_obs::LOG_NS_BOUNDS)
                    .observe(t0.elapsed().as_nanos() as f64);
            }
        }
        if obs {
            // Batch shape: events serviced per slice (was: events per
            // shared-queue timestamp before the per-session-queue
            // layout, hence the much larger ladder).
            laqa_obs::histogram!(
                "mega.batch_size",
                &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0]
            )
            .observe(serviced as f64);
        }
        if flight {
            // Slice dispatches belong to the engine, not any one
            // session; their order reflects executor scheduling (see
            // the flight module docs on HOST_TRACK).
            laqa_obs::flight::set_session(laqa_obs::flight::HOST_TRACK);
            laqa_obs::flight::instant("mega.batch", ns_to_secs(fire_ns), serviced as f64);
        }
        hot.next_fire_ns = match queue.peek_next() {
            Some((local_ns, _)) => {
                let global_ns = local_ns.saturating_add(offset_ns);
                if global_ns > hot.end_ns {
                    PARKED
                } else {
                    global_ns
                }
            }
            None => PARKED,
        };
    }
}

impl Default for MegaEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, Route};
    use crate::Ctx;
    use std::any::Any;

    /// Sends `count` packets to `peer` at `interval`, starting at t=0.
    struct Pinger {
        peer: AgentId,
        route: Route,
        count: u32,
        interval: f64,
        sent: u32,
    }
    /// Records `(time, uid)` arrivals.
    struct Sink {
        arrivals: Vec<(f64, u64)>,
    }

    impl Agent for Pinger {
        fn start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_at(0.0, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            if self.sent >= self.count {
                return;
            }
            let uid = ctx.alloc_uid();
            ctx.send(Packet {
                uid,
                flow: 1,
                size: 1_000,
                kind: PacketKind::Cbr,
                dst: self.peer,
                route: self.route.clone(),
                hop: 0,
                sent_at: ctx.now,
            });
            self.sent += 1;
            ctx.set_timer_after(self.interval, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl Agent for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
            self.arrivals.push((ctx.now, pkt.uid));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A two-agent ping world whose trajectory depends on the seed (loss
    /// draws) — enough signal to detect any cross-session bleed.
    fn ping_world(seed: u64, count: u32) -> (World, AgentId) {
        let mut w = World::with_scheduler(seed, SchedulerKind::Wheel);
        let l = w.add_link(LinkConfig {
            bandwidth: 80_000.0,
            delay: 0.004,
            queue_packets: 4,
            loss_rate: 0.1,
            ..LinkConfig::default()
        });
        let sink = w.add_agent(Box::new(Sink { arrivals: vec![] }));
        let _src = w.add_agent(Box::new(Pinger {
            peer: sink,
            route: vec![l].into(),
            count,
            interval: 0.017,
            sent: 0,
        }));
        (w, sink)
    }

    fn solo_arrivals(seed: u64, count: u32, duration: f64) -> Vec<(f64, u64)> {
        let (mut w, sink) = ping_world(seed, count);
        w.run_until(duration);
        w.agent::<Sink>(sink).unwrap().arrivals.clone()
    }

    #[test]
    fn multiplexed_sessions_match_isolated_runs() {
        let mut engine = MegaEngine::with_scheduler(SchedulerKind::Wheel);
        let mut sids = Vec::new();
        for seed in [3u64, 7, 11, 42] {
            let (w, sink) = ping_world(seed, 40);
            sids.push((seed, engine.add_world(w, 0.0, 2.0), sink));
        }
        engine.run_until(2.0);
        for &(seed, sid, sink) in &sids {
            let mega = engine
                .session(sid)
                .agent::<Sink>(sink)
                .unwrap()
                .arrivals
                .clone();
            assert_eq!(
                mega,
                solo_arrivals(seed, 40, 2.0),
                "seed {seed} diverged under multiplexing"
            );
        }
    }

    #[test]
    fn slice_length_is_unobservable() {
        // The batching knob must be pure wall-clock tuning: the 0-length
        // degenerate slice (one timestamp per service), a tiny 1 ms
        // slice, and an infinite slice (run each session to the bound in
        // one go) all reproduce the isolated trajectories.
        for slice in [0.0, 0.001, f64::INFINITY] {
            let mut engine = MegaEngine::with_scheduler(SchedulerKind::Wheel);
            engine.set_service_slice(slice);
            let mut sids = Vec::new();
            for seed in [3u64, 7, 11] {
                let (w, sink) = ping_world(seed, 40);
                sids.push((seed, engine.add_world(w, 0.0, 2.0), sink));
            }
            engine.run_until(2.0);
            for &(seed, sid, sink) in &sids {
                let mega = engine
                    .session(sid)
                    .agent::<Sink>(sink)
                    .unwrap()
                    .arrivals
                    .clone();
                assert_eq!(
                    mega,
                    solo_arrivals(seed, 40, 2.0),
                    "seed {seed} diverged under slice {slice}"
                );
            }
        }
    }

    #[test]
    fn staggered_starts_run_in_local_time() {
        // The same seed started at three different global offsets must
        // produce identical local-time trajectories.
        let mut engine = MegaEngine::new();
        let mut sids = Vec::new();
        for (k, offset) in [0.0, 0.35, 1.2].into_iter().enumerate() {
            let (w, sink) = ping_world(9, 25);
            sids.push((k, offset, engine.add_world(w, offset, 1.5), sink));
        }
        engine.run_until(3.0);
        let reference = solo_arrivals(9, 25, 1.5);
        for &(k, offset, sid, sink) in &sids {
            let got = engine
                .session(sid)
                .agent::<Sink>(sink)
                .unwrap()
                .arrivals
                .clone();
            assert_eq!(got, reference, "offset {offset} (session {k}) diverged");
        }
    }

    #[test]
    fn retire_returns_salvage_and_frees_slot() {
        let mut engine = MegaEngine::new();
        let (w, sink) = ping_world(5, 10);
        let sid = engine.add_world(w, 0.0, 1.0);
        assert_eq!(engine.sessions_live(), 1);
        engine.run_until(1.0);
        let arrivals = engine
            .session(sid)
            .agent::<Sink>(sink)
            .unwrap()
            .arrivals
            .len();
        assert!(arrivals > 0);
        let salvage = engine.retire(sid);
        assert_eq!(engine.sessions_live(), 0);
        // The salvage is usable for a warm solo world.
        let mut w2 = World::with_salvage(5, SchedulerKind::Wheel, salvage);
        assert_eq!(w2.events_processed(), 0);
        w2.run_until(0.1);
    }

    #[test]
    fn stale_tokens_from_freed_sessions_never_reach_reused_slots() {
        // Session A is retired mid-run with timers and packets still
        // pending in its queue; session B immediately reuses its slot.
        // A's unprocessed events must be dropped (counted as token
        // recycles) and B's trajectory must stay bit-identical to an
        // isolated run — nothing of A may leak through the slot.
        let mut engine = MegaEngine::new();
        let (wa, _) = ping_world(21, 1_000);
        let sid_a = engine.add_world(wa, 0.0, 10.0);
        engine.run_until(0.5);
        let _ = engine.retire(sid_a);

        let (wb, sink_b) = ping_world(33, 30);
        let sid_b = engine.add_world(wb, engine.now(), 2.0);
        assert_eq!(
            sid_b.slot(),
            sid_a.slot(),
            "slot must be reused for the guard to be exercised"
        );
        engine.run_until(engine.now() + 2.0);

        assert!(
            engine.token_recycles() > 0,
            "retiring mid-run must drop the session's pending events"
        );
        let got = engine
            .session(sid_b)
            .agent::<Sink>(sink_b)
            .unwrap()
            .arrivals
            .clone();
        assert_eq!(
            got,
            solo_arrivals(33, 30, 2.0),
            "reused slot inherited state from the retired session"
        );
    }

    #[test]
    fn stale_session_handle_is_rejected() {
        let mut engine = MegaEngine::new();
        let (wa, _) = ping_world(21, 10);
        let sid_a = engine.add_world(wa, 0.0, 1.0);
        engine.run_until(1.0);
        let _ = engine.retire(sid_a);
        let (wb, _) = ping_world(33, 10);
        let sid_b = engine.add_world(wb, engine.now(), 1.0);
        assert_eq!(sid_b.slot(), sid_a.slot(), "slot must be reused");
        assert_ne!(sid_a, sid_b, "epoch bump must invalidate the old handle");
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = engine.session(sid_a);
        }));
        assert!(stale.is_err(), "stale handle must be rejected");
    }

    #[test]
    fn session_past_its_end_stops_processing() {
        // One long and one short session: the short one's agents must see
        // nothing after its own end even though the engine runs on.
        let mut engine = MegaEngine::new();
        let (w_short, sink_s) = ping_world(2, 1_000);
        let (w_long, sink_l) = ping_world(4, 1_000);
        let sid_s = engine.add_world(w_short, 0.0, 0.5);
        let sid_l = engine.add_world(w_long, 0.0, 2.0);
        engine.run_until(2.0);
        let short = engine
            .session(sid_s)
            .agent::<Sink>(sink_s)
            .unwrap()
            .arrivals
            .clone();
        assert_eq!(short, solo_arrivals(2, 1_000, 0.5));
        let long = engine
            .session(sid_l)
            .agent::<Sink>(sink_l)
            .unwrap()
            .arrivals
            .clone();
        assert_eq!(long, solo_arrivals(4, 1_000, 2.0));
    }

    #[test]
    fn engine_agrees_across_scheduler_kinds() {
        let run = |kind: SchedulerKind| {
            let mut engine = MegaEngine::with_scheduler(kind);
            let mut sids = Vec::new();
            for seed in [1u64, 2, 3] {
                let (w, sink) = ping_world(seed, 60);
                sids.push((engine.add_world(w, 0.2 * seed as f64, 2.0), sink));
            }
            engine.run_until(3.0);
            sids.iter()
                .map(|&(sid, sink)| {
                    engine
                        .session(sid)
                        .agent::<Sink>(sink)
                        .unwrap()
                        .arrivals
                        .clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(SchedulerKind::Reference), run(SchedulerKind::Wheel));
    }

    #[test]
    fn reserve_is_inert() {
        let run = |reserve: bool| {
            let mut engine = MegaEngine::new();
            if reserve {
                engine.reserve(64, 4096);
            }
            let (w, sink) = ping_world(13, 20);
            let sid = engine.add_world(w, 0.0, 1.0);
            engine.run_until(1.0);
            (
                engine.session(sid).events_processed(),
                engine
                    .session(sid)
                    .agent::<Sink>(sink)
                    .unwrap()
                    .arrivals
                    .clone(),
            )
        };
        assert_eq!(run(true), run(false), "reserve changed the trajectory");
    }
}
