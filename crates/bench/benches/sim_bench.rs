//! Criterion benchmarks for the discrete-event simulator: engine
//! throughput and the cost of the paper's scenario runs (figures 11–13,
//! tables 1–2) per simulated second.

use criterion::{criterion_group, criterion_main, Criterion};
use laqa_sim::{run_scenario, ScenarioConfig};

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.sample_size(10);
    g.bench_function("t1_10s", |b| {
        b.iter(|| run_scenario(&ScenarioConfig::t1(2, 10.0, 7)))
    });
    g.bench_function("t2_10s", |b| {
        b.iter(|| run_scenario(&ScenarioConfig::t2(2, 10.0, 7)))
    });
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
