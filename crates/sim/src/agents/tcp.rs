//! TCP sender/sink agents — the competing cross-traffic of the paper's
//! evaluation ("10 Sack-TCP flows").
//!
//! A compact NewReno-style TCP with a SACK-like high-water hint: slow
//! start, congestion avoidance, fast retransmit/fast recovery with NewReno
//! partial-ACK retransmission, and exponential-backoff RTO. Sequence space
//! is counted in packets (all segments are one packet). What matters for
//! the reproduction is the aggregate AIMD behaviour competing with RAP
//! through the shared drop-tail bottleneck; per-byte fidelity is not
//! needed.

use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, Packet, PacketKind, Route};
use laqa_rap::RttEstimator;
use std::any::Any;
use std::collections::BTreeSet;

const ACK_SIZE: u32 = 40;
/// Timer token: RTO check; the token payload carries an epoch so stale
/// timers can be ignored.
const RTO_BASE: u64 = 1 << 32;

/// TCP sender (greedy: always has data).
pub struct TcpAgent {
    /// Sink agent id.
    pub dst: AgentId,
    /// Forward route.
    pub route: Route,
    /// Flow id.
    pub flow: u32,
    packet_size: u32,
    /// Congestion window (packets, fractional during CA growth).
    cwnd: f64,
    ssthresh: f64,
    /// Next new sequence to send.
    next_seq: u64,
    /// Highest sequence ever sent (+1): after an RTO rolls `next_seq`
    /// back, anything below this is a retransmission.
    snd_max: u64,
    /// Next expected by the receiver (all below acked).
    cum: u64,
    dup_acks: u32,
    /// Fast-recovery state: recovery point (sequence that ends recovery).
    recovery: Option<u64>,
    rtt: RttEstimator,
    /// Segment whose RTT is being timed: (seq, send_time).
    timed: Option<(u64, f64)>,
    /// Highest sequence outstanding at the last RTO: the Karn backoff
    /// clears once the cumulative ACK passes this point (all data that
    /// was in flight when the timer fired has been delivered).
    rto_recover: u64,
    rto_epoch: u64,
    start_at: f64,
    /// Stats: segments sent (incl. retransmissions).
    pub sent: u64,
    /// Stats: retransmissions.
    pub retransmits: u64,
    /// Stats: timeouts.
    pub timeouts: u64,
}

impl TcpAgent {
    /// Historical RTT-estimator seed (seconds) used by [`TcpAgent::new`].
    ///
    /// Every seed-pinned golden in the repo was produced with this value,
    /// so `new` keeps it regardless of the scenario's actual path RTT;
    /// topology-aware construction goes through
    /// [`TcpAgent::with_rtt_seed`]. Before the first RTT sample the
    /// estimator's RTO from this seed is `0.2 + 4·0.1 = 0.6 s` — on paths
    /// whose RTT exceeds that, the very first ACK loses the race against
    /// the retransmission timer and the flow opens with a spurious
    /// timeout.
    pub const LEGACY_RTT_SEED: f64 = 0.2;

    /// New greedy TCP source starting at `start_at` seconds, with the
    /// RTT estimator at the legacy [`TcpAgent::LEGACY_RTT_SEED`].
    pub fn new(
        dst: AgentId,
        route: impl Into<Route>,
        flow: u32,
        packet_size: u32,
        start_at: f64,
    ) -> Self {
        Self::with_rtt_seed(dst, route, flow, packet_size, start_at, Self::LEGACY_RTT_SEED)
    }

    /// New greedy TCP source whose RTT estimator is seeded from the
    /// configured path RTT (e.g. [`crate::topology::DumbbellConfig::rtt`])
    /// instead of the fixed legacy default, so long-delay paths do not
    /// open with a spurious retransmission timeout.
    pub fn with_rtt_seed(
        dst: AgentId,
        route: impl Into<Route>,
        flow: u32,
        packet_size: u32,
        start_at: f64,
        rtt_seed: f64,
    ) -> Self {
        TcpAgent {
            dst,
            route: route.into(),
            flow,
            packet_size,
            cwnd: 2.0,
            ssthresh: 64.0,
            next_seq: 0,
            snd_max: 0,
            cum: 0,
            dup_acks: 0,
            recovery: None,
            rtt: RttEstimator::new(rtt_seed),
            timed: None,
            rto_recover: 0,
            rto_epoch: 0,
            start_at,
            sent: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window (packets).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.cum)
    }

    fn transmit(&mut self, ctx: &mut Ctx, seq: u64, retx: bool) {
        let uid = ctx.alloc_uid();
        ctx.send(Packet {
            uid,
            flow: self.flow,
            size: self.packet_size,
            kind: PacketKind::TcpData { seq, retx },
            dst: self.dst,
            route: self.route.clone(),
            hop: 0,
            sent_at: ctx.now,
        });
        self.sent += 1;
        if retx {
            self.retransmits += 1;
        } else if self.timed.is_none() {
            self.timed = Some((seq, ctx.now));
        }
    }

    fn try_send(&mut self, ctx: &mut Ctx) {
        let window = self.cwnd.floor().max(1.0) as u64;
        while self.flight() < window {
            let seq = self.next_seq;
            self.next_seq += 1;
            // Below `snd_max` the window is walking back over go-back-N
            // territory: those sends are retransmissions and must not be
            // RTT-timed (Karn's rule — the ACK would be ambiguous).
            let retx = seq < self.snd_max;
            self.snd_max = self.snd_max.max(self.next_seq);
            self.transmit(ctx, seq, retx);
        }
        self.arm_rto(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        if self.flight() == 0 {
            return;
        }
        self.rto_epoch += 1;
        // The estimator's RTO already carries the capped exponential
        // backoff; multiplying by a second local exponent compounded the
        // two into 4^n growth under repeated timeouts.
        let rto = self.rtt.rto();
        ctx.set_timer_after(rto, RTO_BASE | self.rto_epoch);
    }

    fn on_new_ack(&mut self, ctx: &mut Ctx, cum: u64) {
        // RTT sample from the timed segment (Karn's rule: the timed segment
        // is never a retransmission).
        if let Some((seq, t0)) = self.timed {
            if cum > seq {
                self.rtt.sample(ctx.now - t0);
                self.timed = None;
            }
        }
        self.cum = cum;
        self.dup_acks = 0;
        // Karn backoff ends only when everything outstanding at the
        // timeout has been acked: partial progress during a loss episode
        // keeps the timer conservative, but a recovered flow is not left
        // pinned at a 64x RTO waiting for a fresh RTT sample.
        if cum >= self.rto_recover {
            self.rtt.reset_backoff();
        }
        match self.recovery {
            Some(point) if cum > point => {
                // Full recovery: deflate to ssthresh.
                self.recovery = None;
                self.cwnd = self.ssthresh;
            }
            Some(_) => {
                // NewReno partial ACK: the next hole is also lost.
                self.transmit(ctx, cum, true);
            }
            None => {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
        }
    }

    fn on_dup_ack(&mut self, ctx: &mut Ctx) {
        if self.recovery.is_some() {
            // Window inflation during recovery.
            self.cwnd += 1.0;
            return;
        }
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            // Halve from cwnd, not raw flight: recovery inflation can push
            // the flight above cwnd, and flight-based ssthresh would then
            // ratchet the window upward across consecutive loss events.
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh + 3.0;
            self.recovery = Some(self.next_seq.saturating_sub(1));
            let seq = self.cum;
            self.transmit(ctx, seq, true);
        }
    }
}

impl Agent for TcpAgent {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer_at(self.start_at, 0);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let PacketKind::TcpAck { cum, high: _ } = pkt.kind else {
            return;
        };
        if cum > self.cum {
            self.on_new_ack(ctx, cum);
        } else {
            self.on_dup_ack(ctx);
        }
        self.try_send(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == 0 {
            // Start.
            self.try_send(ctx);
            return;
        }
        let epoch = token & (RTO_BASE - 1);
        if epoch != self.rto_epoch || self.flight() == 0 {
            return; // stale timer
        }
        // Retransmission timeout.
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.recovery = None;
        self.dup_acks = 0;
        self.rtt.on_timeout();
        self.rto_recover = self.next_seq;
        self.timed = None;
        // Go-back-N (BSD: snd_nxt = snd_una): everything past the
        // cumulative ACK is presumed lost. Without the rollback the dead
        // flight keeps `flight() >= cwnd` and the window can never open —
        // the flow is limited to one segment per exponentially backed-off
        // RTO, which starves it outright under a loss burst.
        self.next_seq = self.cum;
        self.try_send(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// TCP sink: cumulative ACKs with a high-water hint, one ACK per segment.
pub struct TcpSinkAgent {
    /// Sender agent id.
    pub src: AgentId,
    /// Reverse route.
    pub reverse_route: Route,
    /// Flow id.
    pub flow: u32,
    /// Next expected sequence.
    cum: u64,
    ooo: BTreeSet<u64>,
    /// Bytes of data received (including duplicates).
    pub bytes_received: u64,
    /// Segments received in order (goodput packets).
    pub delivered: u64,
}

impl TcpSinkAgent {
    /// New sink ACKing to `src`.
    pub fn new(src: AgentId, reverse_route: impl Into<Route>, flow: u32) -> Self {
        TcpSinkAgent {
            src,
            reverse_route: reverse_route.into(),
            flow,
            cum: 0,
            ooo: BTreeSet::new(),
            bytes_received: 0,
            delivered: 0,
        }
    }
}

impl Agent for TcpSinkAgent {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let PacketKind::TcpData { seq, .. } = pkt.kind else {
            return;
        };
        self.bytes_received += pkt.size as u64;
        if seq >= self.cum {
            self.ooo.insert(seq);
            while self.ooo.remove(&self.cum) {
                self.cum += 1;
                self.delivered += 1;
            }
        }
        let high = self.ooo.iter().next_back().copied().unwrap_or(self.cum);
        let uid = ctx.alloc_uid();
        ctx.send(Packet {
            uid,
            flow: self.flow,
            size: ACK_SIZE,
            kind: PacketKind::TcpAck {
                cum: self.cum,
                high,
            },
            dst: self.src,
            route: self.reverse_route.clone(),
            hop: 0,
            sent_at: ctx.now,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;
    use crate::link::LinkConfig;

    /// `n` TCP flows over one bottleneck; returns (world, sink ids, link).
    fn tcp_flows(n: usize, bw: f64, dur: f64) -> (World, Vec<AgentId>, crate::packet::LinkId) {
        let mut w = World::new(5);
        let fwd = w.add_link(LinkConfig {
            bandwidth: bw,
            delay: 0.01,
            queue_packets: 25,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        // ids 0..n are sinks, n..2n are senders.
        let mut sinks = Vec::new();
        for i in 0..n {
            let sink = w.add_agent(Box::new(TcpSinkAgent::new(n + i, vec![rev], i as u32)));
            sinks.push(sink);
        }
        for (i, &sink) in sinks.iter().enumerate() {
            let id = w.add_agent(Box::new(TcpAgent::new(
                sink,
                vec![fwd],
                i as u32,
                1_000,
                i as f64 * 0.05,
            )));
            assert_eq!(id, n + i);
        }
        w.run_until(dur);
        (w, sinks, fwd)
    }

    #[test]
    fn single_tcp_fills_bottleneck() {
        let (w, sinks, fwd) = tcp_flows(1, 100_000.0, 30.0);
        let s: &TcpSinkAgent = w.agent(sinks[0]).unwrap();
        let goodput = s.delivered as f64 * 1_000.0 / 30.0;
        assert!(goodput > 80_000.0, "goodput {goodput}");
        assert!(w.link_stats(fwd).dropped > 0, "loss-driven AIMD expected");
    }

    #[test]
    fn delivery_is_contiguous() {
        let (w, sinks, _) = tcp_flows(1, 50_000.0, 20.0);
        let s: &TcpSinkAgent = w.agent(sinks[0]).unwrap();
        // Everything delivered below cum is a contiguous prefix by
        // construction; sanity: delivered == cum.
        assert_eq!(s.delivered, s.cum);
        assert!(s.delivered > 500);
    }

    #[test]
    fn flows_share_capacity_roughly_fairly() {
        let (w, sinks, _) = tcp_flows(4, 200_000.0, 40.0);
        let goodputs: Vec<f64> = sinks
            .iter()
            .map(|&s| w.agent::<TcpSinkAgent>(s).unwrap().delivered as f64 * 1_000.0 / 40.0)
            .collect();
        let total: f64 = goodputs.iter().sum();
        assert!(total > 150_000.0, "aggregate goodput {total}");
        let max = goodputs.iter().cloned().fold(0.0, f64::max);
        let min = goodputs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min.max(1.0) < 3.0, "unfair: {goodputs:?}");
    }

    #[test]
    fn rtt_seed_avoids_spurious_timeouts_on_long_delay_paths() {
        // A clean 600 ms-RTT path: ACKs take three times the legacy
        // seed's pre-sample RTO (0.6 s), so a 0.2-seeded flow fires a
        // spurious retransmission timeout before its first ACK can land.
        // Seeding from the configured path RTT must eliminate that.
        let run = |seed: Option<f64>| {
            let mut w = World::new(11);
            let fwd = w.add_link(LinkConfig {
                bandwidth: 1_000_000.0,
                delay: 0.3, // one-way; RTT = 0.6 s
                queue_packets: 10_000,
                ..LinkConfig::default()
            });
            let rev = w.add_link(LinkConfig {
                delay: 0.3,
                ..LinkConfig::uncongested()
            });
            let sink = w.add_agent(Box::new(TcpSinkAgent::new(1, vec![rev], 0)));
            let agent = match seed {
                Some(s) => TcpAgent::with_rtt_seed(sink, vec![fwd], 0, 1_000, 0.0, s),
                None => TcpAgent::new(sink, vec![fwd], 0, 1_000, 0.0),
            };
            let src = w.add_agent(Box::new(agent));
            w.run_until(20.0);
            let a: &TcpAgent = w.agent(src).unwrap();
            let s: &TcpSinkAgent = w.agent(sink).unwrap();
            (a.timeouts, a.retransmits, s.delivered)
        };
        let (timeouts_legacy, retx_legacy, _) = run(None);
        let (timeouts_seeded, retx_seeded, delivered_seeded) = run(Some(0.6));
        assert!(
            timeouts_legacy > 0,
            "legacy 0.2 s seed must misfire on a 600 ms path"
        );
        assert_eq!(
            timeouts_seeded, 0,
            "path-RTT seed must not time out on a clean path"
        );
        assert_eq!(retx_seeded, 0, "no loss, no retransmissions");
        assert!(retx_legacy > 0, "spurious RTO forces go-back-N resends");
        assert!(delivered_seeded > 100, "flow must still make progress");
    }

    #[test]
    fn sender_recovers_from_timeout() {
        // A tiny queue forces bursts of loss; the flow must keep making
        // progress regardless.
        let mut w = World::new(9);
        let fwd = w.add_link(LinkConfig {
            bandwidth: 20_000.0,
            delay: 0.02,
            queue_packets: 2,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        let sink = w.add_agent(Box::new(TcpSinkAgent::new(1, vec![rev], 0)));
        let src = w.add_agent(Box::new(TcpAgent::new(sink, vec![fwd], 0, 1_000, 0.0)));
        w.run_until(30.0);
        let s: &TcpSinkAgent = w.agent(sink).unwrap();
        assert!(s.delivered > 300, "delivered {}", s.delivered);
        let a: &TcpAgent = w.agent(src).unwrap();
        assert!(a.retransmits > 0);
    }
}
