//! # laqa-layered — layered media model
//!
//! The hierarchically encoded stream substrate for the quality-adaptation
//! mechanism of Rejaie/Handley/Estrin (SIGCOMM 1999):
//!
//! * [`encoding`] — layer stacks (the paper's linear spacing plus the
//!   non-linear extension mentioned in its future work);
//! * [`stream`] — stored-stream packetization, playout deadlines, and
//!   deterministic payloads for end-to-end integrity checks;
//! * [`buffer`] — per-layer receiver FIFO buffers with underflow
//!   accounting;
//! * [`receiver`] — the playout engine combining buffers and a clock, the
//!   ground truth against which the sender's buffer estimates are judged;
//! * [`cache`] — proxy caching of layered streams with demand-driven
//!   prefetch (the paper's §7 closing future-work item).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod buffer;
pub mod cache;
pub mod encoding;
pub mod receiver;
pub mod stream;

pub use buffer::LayerBuffer;
pub use cache::{LayerCache, PrefetchPlanner};
pub use encoding::{EncodingError, LayerSpec, LayeredEncoding};
pub use receiver::{LayeredReceiver, ReceiverStats};
pub use stream::{LayeredStream, PacketId};
