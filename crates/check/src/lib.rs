//! # laqa-check — a tiny deterministic property-test harness
//!
//! The workspace's property suites were written for `proptest`, but the
//! tier-1 verify must run with **zero registry access** (see DESIGN.md,
//! "Hermetic offline builds"). This crate replaces the subset of proptest
//! the suites actually use: draw random-but-reproducible values from a
//! seeded generator and run a closure over many cases, reporting the case
//! number and seed on failure so any counterexample replays exactly.
//!
//! ```
//! laqa_check::cases("doubling is monotone", 256, |g, _case| {
//!     let x = g.f64_range(0.0, 1e6);
//!     assert!(2.0 * x >= x);
//! });
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Default number of cases for a property (mirrors proptest's 256).
pub const DEFAULT_CASES: usize = 256;

/// A PCG-XSH-RR 64/32 generator: 64-bit state, 32-bit output, seeded
/// through SplitMix64 so consecutive seeds give unrelated streams.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Gen {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = splitmix64(&mut s);
        let inc = splitmix64(&mut s) | 1;
        let mut g = Gen { state, inc };
        g.next_u32();
        g
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)` (proptest's `lo..hi` strategy).
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.f64_unit() * (hi - lo)
    }

    /// Uniform `usize` in `lo..=hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Uniform `u32` in `lo..=hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.usize_in(lo as usize, hi as usize) as u32
    }

    /// Uniform `u64` in `lo..=hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Vector of uniform `f64`s in `[lo, hi)` with a random length in
    /// `len_lo..=len_hi` (proptest's `vec(lo..hi, len_lo..len_hi)`).
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len_lo: usize, len_hi: usize) -> Vec<f64> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| self.f64_range(lo, hi)).collect()
    }

    /// One element of a slice, by reference.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len() - 1)]
    }
}

/// Derive a per-property base seed from its name (FNV-1a), so adding or
/// reordering properties never changes another property's cases.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `property` over `n` deterministic random cases. Panics from the
/// property are re-raised after printing the case index and the exact
/// seed, so a failure replays with [`Gen::new`] of that seed.
pub fn cases(name: &str, n: usize, mut property: impl FnMut(&mut Gen, usize)) {
    let base = name_seed(name);
    for case in 0..n {
        let seed = base.wrapping_add(case as u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Gen::new(seed);
            property(&mut g, case);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{n} \
                 (replay with laqa_check::Gen::new({seed:#x}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Gen::new(43);
        assert_ne!(Gen::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(7);
        for _ in 0..10_000 {
            let x = g.f64_range(-3.0, 5.5);
            assert!((-3.0..5.5).contains(&x));
            let n = g.usize_in(2, 9);
            assert!((2..=9).contains(&n));
            let k = g.u64_in(10, 10);
            assert_eq!(k, 10);
        }
    }

    #[test]
    fn f64_unit_covers_the_interval() {
        let mut g = Gen::new(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = g.f64_unit();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut g = Gen::new(3);
        for _ in 0..1_000 {
            let v = g.vec_f64(0.0, 1.0, 3, 7);
            assert!((3..=7).contains(&v.len()));
        }
    }

    #[test]
    fn cases_runs_requested_count() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        cases("counting", 37, |_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn same_property_name_same_cases() {
        let mut first = Vec::new();
        cases("stable", 5, |g, _| first.push(g.next_u64()));
        let mut second = Vec::new();
        cases("stable", 5, |g, _| second.push(g.next_u64()));
        assert_eq!(first, second);
    }
}
