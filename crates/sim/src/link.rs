//! Links with configurable queueing (drop-tail or RED) and an optional
//! random-loss process.
//!
//! The paper's ns-2 setup uses drop-tail bottlenecks (the default here).
//! RED is provided because the paper's premise — near-random loss patterns
//! (§3, citing Bolot) — is exactly what RED produces, making it the
//! natural ablation for the smoothing machinery; the per-packet random
//! loss models non-congestive (wireless/bit-error) drops.

use crate::packet::Packet;
use crate::rng::SimRng;
use laqa_trace::LinkTracePoint;
use std::collections::VecDeque;

/// Random Early Detection parameters (Floyd/Jacobson '93, simplified:
/// plain drop probability, no idle-time compensation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Average-queue threshold (packets) below which nothing is dropped.
    pub min_th: f64,
    /// Average-queue threshold (packets) above which everything is
    /// dropped.
    pub max_th: f64,
    /// Drop probability as the average reaches `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub wq: f64,
}

impl RedConfig {
    /// Reasonable defaults relative to a physical queue of `cap` packets.
    pub fn for_queue(cap: usize) -> Self {
        RedConfig {
            min_th: cap as f64 * 0.25,
            max_th: cap as f64 * 0.75,
            max_p: 0.1,
            wq: 0.002,
        }
    }
}

/// Queueing discipline of a link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QueueKind {
    /// Plain drop-tail (the paper's setting).
    #[default]
    DropTail,
    /// Random Early Detection on the average queue.
    Red(RedConfig),
}

/// Configuration of one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Propagation delay (seconds).
    pub delay: f64,
    /// Physical queue capacity in packets (excluding the one in service).
    pub queue_packets: usize,
    /// Queueing discipline.
    pub queue_kind: QueueKind,
    /// Probability of random (non-congestive) loss per packet.
    pub loss_rate: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            bandwidth: 125_000.0,
            delay: 0.01,
            queue_packets: 50,
            queue_kind: QueueKind::DropTail,
            loss_rate: 0.0,
        }
    }
}

impl LinkConfig {
    /// A high-capacity, low-delay access/return link that never congests.
    pub fn uncongested() -> Self {
        LinkConfig {
            bandwidth: 125_000_000.0,
            delay: 0.001,
            queue_packets: 10_000,
            ..LinkConfig::default()
        }
    }
}

/// A piecewise link-condition schedule: the *TraceLink* machinery.
///
/// Each [`LinkTracePoint`] names a time and the bandwidth (plus optional
/// delay and loss) the link switches to at that time — step changes, the
/// way recorded cellular traces and shaped links actually behave. Points
/// are strictly increasing in time; an optional `period` makes the
/// schedule loop forever (point times then repeat every period).
///
/// Schedules are *pre-materialized*: the seeded generators below draw
/// from their own salted [`SimRng`] at construction, so a schedule is a
/// plain value and replaying it never consumes world RNG. Advancement is
/// driven off the event scheduler by a [`TraceDriver`] agent, which makes
/// trace-driven runs bit-identical across heap-vs-wheel schedulers and
/// solo-vs-mega executors (pinned by `tests/trace_differential.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSchedule {
    points: Vec<LinkTracePoint>,
    period: Option<f64>,
}

/// Seed salts decoupling each generator's stream from the world RNG and
/// from each other (same idiom as the fault injector's salted stream).
const LTE_SALT: u64 = 0x17E5_EEDC_E111_0000;
const BLOAT_SALT: u64 = 0xB10A_75EE_DBAD_0000;
/// Salt distinguishing the second path of a bonded pair.
pub const BOND_PATH_SALT: u64 = 0xB0D0_5A17_0000_0000;

impl TraceSchedule {
    /// Schedule from explicit points. Validates what
    /// [`laqa_trace::parse_link_trace`] validates (strictly increasing
    /// non-negative times, positive bandwidth, loss in `[0, 1]`) plus
    /// that a looping `period` strictly exceeds the last point's time.
    pub fn from_points(
        points: Vec<LinkTracePoint>,
        period: Option<f64>,
    ) -> Result<Self, String> {
        if points.is_empty() {
            return Err("trace schedule needs at least one point".into());
        }
        let mut prev = f64::NEG_INFINITY;
        for p in &points {
            if !(p.at >= 0.0 && p.at > prev) {
                return Err(format!("point times must strictly increase (at {})", p.at));
            }
            if !(p.bandwidth.is_finite() && p.bandwidth > 0.0) {
                return Err(format!("bandwidth must be positive, got {}", p.bandwidth));
            }
            if let Some(d) = p.delay {
                if !(d.is_finite() && d >= 0.0) {
                    return Err(format!("delay must be non-negative, got {d}"));
                }
            }
            if let Some(l) = p.loss {
                if !(0.0..=1.0).contains(&l) {
                    return Err(format!("loss must be in [0, 1], got {l}"));
                }
            }
            prev = p.at;
        }
        if let Some(period) = period {
            if !(period.is_finite() && period > prev) {
                return Err(format!(
                    "loop period {period} must exceed the last point time {prev}"
                ));
            }
        }
        Ok(TraceSchedule { points, period })
    }

    /// Schedule parsed from a recorded trace file (the
    /// [`laqa_trace::linktrace`] format).
    pub fn from_recorded(text: &str, period: Option<f64>) -> Result<Self, String> {
        Self::from_points(laqa_trace::parse_link_trace(text)?, period)
    }

    /// LTE-style capacity trace: a multiplicative random walk around
    /// `nominal_bw` with dwell times uniform in 100 ms – 1 s (the
    /// fast-fading swing cadence of cellular schedulers), clamped to
    /// `[0.25, 1.5]×nominal`. Deterministic per seed; two calls with the
    /// same arguments produce identical schedules.
    pub fn lte(seed: u64, nominal_bw: f64, duration: f64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ LTE_SALT);
        let mut points = Vec::new();
        let mut t = 0.0;
        let mut factor = 1.0f64;
        while t < duration {
            points.push(LinkTracePoint {
                at: t,
                bandwidth: nominal_bw * factor,
                delay: None,
                loss: None,
            });
            t += 0.1 + 0.9 * rng.next_f64();
            // Swing by up to ±2x per step, then clamp to the walk band.
            factor = (factor * (-0.7 + 1.4 * rng.next_f64()).exp()).clamp(0.25, 1.5);
        }
        TraceSchedule {
            points,
            period: None,
        }
    }

    /// On-off bufferbloat trace: alternate full capacity (dwell 1–3 s)
    /// and a choked 30 % capacity (dwell 0.5–2 s). Paired with a deep
    /// standing drop-tail buffer (the scenario layer configures that),
    /// the choked phases fill the queue and inflate RTT by seconds — the
    /// classic bufferbloat signature. Deterministic per seed.
    pub fn bufferbloat(seed: u64, nominal_bw: f64, duration: f64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ BLOAT_SALT);
        let mut points = Vec::new();
        let mut t = 0.0;
        let mut choked = false;
        while t < duration {
            points.push(LinkTracePoint {
                at: t,
                bandwidth: if choked {
                    nominal_bw * 0.3
                } else {
                    nominal_bw
                },
                delay: None,
                loss: None,
            });
            t += if choked {
                0.5 + 1.5 * rng.next_f64()
            } else {
                1.0 + 2.0 * rng.next_f64()
            };
            choked = !choked;
        }
        TraceSchedule {
            points,
            period: None,
        }
    }

    /// Diurnal capacity ramp: one full cosine period over `period_secs`,
    /// dipping to 40 % of `nominal_bw` mid-cycle, sampled at 48 steps and
    /// looping forever. Fully deterministic (no seed).
    pub fn diurnal(nominal_bw: f64, period_secs: f64) -> Self {
        const STEPS: usize = 48;
        let points = (0..STEPS)
            .map(|i| {
                let phase = i as f64 / STEPS as f64;
                let dip = 0.5 - 0.5 * (std::f64::consts::TAU * phase).cos();
                LinkTracePoint {
                    at: phase * period_secs,
                    bandwidth: nominal_bw * (1.0 - 0.6 * dip),
                    delay: None,
                    loss: None,
                }
            })
            .collect();
        TraceSchedule {
            points,
            period: Some(period_secs),
        }
    }

    /// The schedule's points (strictly increasing times within a cycle).
    pub fn points(&self) -> &[LinkTracePoint] {
        &self.points
    }

    /// Loop period, if the schedule repeats.
    pub fn period(&self) -> Option<f64> {
        self.period
    }

    /// The point in effect at time `t` (step interpolation): the last
    /// point with `at <= t`, clamped to the first point before it takes
    /// effect. Looping schedules evaluate at `t mod period`, so
    /// `sample(t + period) == sample(t)` — the wrap is seamless by
    /// construction.
    pub fn sample(&self, t: f64) -> LinkTracePoint {
        let t = match self.period {
            Some(p) => t.rem_euclid(p),
            None => t,
        };
        match self.points.iter().rev().find(|p| p.at <= t) {
            Some(p) => *p,
            None => self.points[0],
        }
    }
}

/// Replay cursor of a [`TraceSchedule`] attached to a [`Link`].
///
/// The cursor counts points applied since the last (re)wind; for looping
/// schedules it keeps increasing across cycles (`cursor / len` is the
/// cycle number). It lives *on the link* — not in the driver agent — so
/// warm-pool salvage can prove it is rewound: [`Link::reset`] discards
/// it, which is what keeps a recycled link shell from replaying the
/// previous session's schedule mid-trace (pinned by
/// `crates/bench/tests/warm_trace.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTraceState {
    schedule: TraceSchedule,
    cursor: u64,
}

impl LinkTraceState {
    /// Fresh state with the cursor at the first point.
    pub fn new(schedule: TraceSchedule) -> Self {
        LinkTraceState {
            schedule,
            cursor: 0,
        }
    }

    /// The schedule being replayed.
    pub fn schedule(&self) -> &TraceSchedule {
        &self.schedule
    }

    /// Points applied since the last (re)wind.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Rewind to the first point (what a fresh session must see).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Absolute time (seconds) the next point takes effect, or `None`
    /// when a non-looping schedule is exhausted.
    pub fn next_change_at(&self) -> Option<f64> {
        let n = self.schedule.points.len() as u64;
        match self.schedule.period {
            None => self
                .schedule
                .points
                .get(self.cursor as usize)
                .map(|p| p.at),
            Some(period) => {
                let cycle = self.cursor / n;
                let idx = (self.cursor % n) as usize;
                Some(cycle as f64 * period + self.schedule.points[idx].at)
            }
        }
    }

    /// Apply the point under the cursor to `cfg` and advance. Returns
    /// `false` when the schedule is exhausted. Bandwidth is always
    /// overwritten; delay and loss only when the point carries them —
    /// which is also the fault-composition precedence rule: whatever a
    /// `FaultInjector` set on the link holds only until the trace's next
    /// schedule point reasserts its own value (last writer wins; see
    /// `tests/faults_replay.rs`).
    pub fn apply_next(&mut self, cfg: &mut LinkConfig) -> bool {
        let n = self.schedule.points.len() as u64;
        let idx = match self.schedule.period {
            None if self.cursor >= n => return false,
            _ => (self.cursor % n) as usize,
        };
        let p = self.schedule.points[idx];
        cfg.bandwidth = p.bandwidth;
        if let Some(d) = p.delay {
            cfg.delay = d;
        }
        if let Some(l) = p.loss {
            cfg.loss_rate = l.clamp(0.0, 1.0);
        }
        self.cursor += 1;
        true
    }
}

/// Runtime state of a link.
#[derive(Debug)]
pub struct Link {
    /// Static configuration.
    pub cfg: LinkConfig,
    /// Waiting packets (head is next to transmit).
    pub queue: VecDeque<Packet>,
    /// True while a packet is being serialized.
    pub busy: bool,
    /// RED average-queue estimate (packets).
    pub red_avg: f64,
    /// Counters.
    pub stats: LinkStats,
    /// Trace-replay cursor when this is a trace-driven link (see
    /// [`TraceSchedule`]); `None` for ordinary static links.
    pub trace: Option<LinkTraceState>,
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub enqueued: u64,
    /// Packets dropped at the tail (or by RED).
    pub dropped: u64,
    /// Packets dropped by the random-loss process.
    pub random_losses: u64,
    /// Bytes fully transmitted.
    pub bytes_out: u64,
    /// Peak queue length observed (packets).
    pub peak_queue: usize,
}

impl Link {
    /// New idle link.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            queue: VecDeque::new(),
            busy: false,
            red_avg: 0.0,
            stats: LinkStats::default(),
            trace: None,
        }
    }

    /// Reconfigure an idle-again link shell for a new session, keeping the
    /// queue's backing ring buffer allocated. State afterwards is
    /// indistinguishable from `Link::new(cfg)` apart from capacity.
    pub fn reset(&mut self, cfg: LinkConfig) {
        self.cfg = cfg;
        self.queue.clear();
        self.busy = false;
        self.red_avg = 0.0;
        self.stats = LinkStats::default();
        // Warm-pool correctness for stateful (trace-driven) links: a
        // salvaged shell must not carry the previous session's schedule
        // or a mid-trace cursor into the next session — the new session
        // attaches its own schedule (rewound by construction) if it wants
        // one. `crates/bench/tests/warm_trace.rs` pins warm == cold.
        self.trace = None;
    }

    /// Attach a trace schedule, making this a trace-driven link. The
    /// replay cursor starts at the first point; a [`TraceDriver`] agent
    /// advances it off the event scheduler.
    pub fn set_trace(&mut self, schedule: TraceSchedule) {
        self.trace = Some(LinkTraceState::new(schedule));
    }

    /// Offer a packet to the link. `u_loss` and `u_red` are uniform
    /// `[0, 1)` samples consumed by the loss and RED processes. Returns
    /// `true` when accepted (caller schedules the dequeue when the link
    /// was idle), `false` when dropped.
    pub fn offer(&mut self, pkt: Packet, u_loss: f64, u_red: f64) -> bool {
        // The head of a non-empty queue is in (or about to enter) service;
        // only the packets behind it occupy queue slots. This deliberately
        // ignores `busy`: in the window between an enqueue and its dequeue
        // scheduling the flag is still false, and counting by it let an
        // "idle" link with a non-empty queue accept unboundedly.
        let waiting = self.queue.len().saturating_sub(1);
        // RED's average-queue estimate must see *every* arrival — including
        // packets the random-loss process removes below — or the average is
        // biased low under non-congestive loss.
        let mut red_drop = false;
        if let QueueKind::Red(red) = self.cfg.queue_kind {
            self.red_avg = (1.0 - red.wq) * self.red_avg + red.wq * waiting as f64;
            if self.red_avg >= red.max_th {
                red_drop = true;
            } else if self.red_avg > red.min_th {
                let p =
                    red.max_p * (self.red_avg - red.min_th) / (red.max_th - red.min_th).max(1e-9);
                red_drop = u_red < p;
            }
        }
        if self.cfg.loss_rate > 0.0 && u_loss < self.cfg.loss_rate {
            self.stats.random_losses += 1;
            return false;
        }
        if red_drop {
            self.stats.dropped += 1;
            return false;
        }
        // Drop-tail bound on queue occupancy whenever the queue is
        // non-empty (an empty queue always accepts: the packet goes
        // straight into service).
        if !self.queue.is_empty() && waiting >= self.cfg.queue_packets {
            self.stats.dropped += 1;
            return false;
        }
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        // Peak counts *waiting* packets (excluding the head in service),
        // consistent with the admission bound above.
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len() - 1);
        true
    }

    /// Current queue length in packets (including the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Agent that advances one trace-driven link's schedule off the event
/// scheduler: it arms a timer for each schedule point and applies the
/// point when the timer fires (through [`crate::engine::Ctx`], with the
/// same runtime-mutation semantics as fault injection — bandwidth read at
/// serialize start, delay at serialize finish).
///
/// Driving the schedule through ordinary timer events — rather than
/// polling link state on some side channel — is what makes trace replay
/// bit-identical across heap-vs-wheel schedulers, warm-vs-cold pools and
/// solo-vs-mega executors: the `(time, seq)` event order fully determines
/// when each point lands relative to every packet.
///
/// The driver draws no world RNG (schedules are pre-materialized), so
/// attaching it perturbs nothing but the link parameters it writes.
pub struct TraceDriver {
    /// The trace-driven link this driver advances.
    pub link: crate::packet::LinkId,
    /// Schedule points applied so far (diagnostics + outcome hashing).
    pub changes: u64,
}

const TOK_TRACE: u64 = 0x7_ACE;

impl TraceDriver {
    /// Driver for `link` (which must have a schedule attached via
    /// [`Link::set_trace`] before the world starts).
    pub fn new(link: crate::packet::LinkId) -> Self {
        TraceDriver { link, changes: 0 }
    }
}

impl crate::engine::Agent for TraceDriver {
    fn start(&mut self, ctx: &mut crate::engine::Ctx) {
        if let Some(at) = ctx.link_trace_next(self.link) {
            ctx.set_timer_at(at, TOK_TRACE);
        }
    }

    fn on_packet(&mut self, _ctx: &mut crate::engine::Ctx, _pkt: Packet) {
        // Nothing routes to the driver; ignore strays defensively.
    }

    fn on_timer(&mut self, ctx: &mut crate::engine::Ctx, _token: u64) {
        self.changes += ctx.apply_link_trace(self.link);
        if let Some(at) = ctx.link_trace_next(self.link) {
            ctx.set_timer_at(at, TOK_TRACE);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            flow: 0,
            size: 1000,
            kind: PacketKind::Cbr,
            dst: 0,
            route: vec![].into(),
            hop: 0,
            sent_at: 0.0,
        }
    }

    fn offer(l: &mut Link, p: Packet) -> bool {
        l.offer(p, 0.99, 0.99)
    }

    #[test]
    fn drop_tail_when_full_and_busy() {
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 2,
            ..LinkConfig::default()
        });
        assert!(offer(&mut l, pkt(1)));
        l.busy = true; // first packet entered service
        assert!(offer(&mut l, pkt(2)));
        assert!(offer(&mut l, pkt(3)));
        assert!(
            !offer(&mut l, pkt(4)),
            "third queued packet must be dropped"
        );
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.enqueued, 3);
    }

    #[test]
    fn idle_link_always_accepts() {
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 0,
            ..LinkConfig::default()
        });
        assert!(
            offer(&mut l, pkt(1)),
            "idle link accepts even with zero queue"
        );
    }

    #[test]
    fn peak_queue_tracked() {
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 10,
            ..LinkConfig::default()
        });
        for i in 0..5 {
            offer(&mut l, pkt(i));
        }
        // Five in the queue = one in (or entering) service + four waiting;
        // peak counts the waiting packets, same as the admission bound.
        assert_eq!(l.stats.peak_queue, 4);
    }

    #[test]
    fn occupancy_bounded_even_when_not_marked_busy() {
        // Regression: in the window between enqueue and dequeue scheduling
        // `busy` is still false, and the old bound (`busy && ...`) let the
        // queue grow without limit.
        let mut l = Link::new(LinkConfig {
            bandwidth: 1e6,
            delay: 0.01,
            queue_packets: 2,
            ..LinkConfig::default()
        });
        assert!(offer(&mut l, pkt(1)), "empty queue accepts into service");
        assert!(offer(&mut l, pkt(2)));
        assert!(offer(&mut l, pkt(3)));
        assert!(!offer(&mut l, pkt(4)), "bound applies while busy is false");
        assert_eq!(l.queue.len(), 3);
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.peak_queue, 2);
    }

    #[test]
    fn random_loss_consumes_sample() {
        let mut l = Link::new(LinkConfig {
            loss_rate: 0.5,
            ..LinkConfig::default()
        });
        assert!(!l.offer(pkt(1), 0.4, 0.9), "u < p drops");
        assert!(l.offer(pkt(2), 0.6, 0.9), "u >= p passes");
        assert_eq!(l.stats.random_losses, 1);
        assert_eq!(l.stats.dropped, 0, "random losses counted separately");
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let red = RedConfig {
            min_th: 1.0,
            max_th: 5.0,
            max_p: 0.5,
            wq: 1.0,
        };
        let mut l = Link::new(LinkConfig {
            queue_packets: 100,
            queue_kind: QueueKind::Red(red),
            ..LinkConfig::default()
        });
        // Build the queue to avg = 3 (wq = 1 tracks instantaneously):
        l.busy = true;
        for i in 0..4 {
            assert!(l.offer(pkt(i), 0.9, 0.99), "low avg accepts");
        }
        // avg now 3 → p = 0.5 * (3-1)/(5-1) = 0.25.
        assert!(!l.offer(pkt(10), 0.9, 0.2), "u_red < p drops early");
        assert!(l.offer(pkt(11), 0.9, 0.3), "u_red >= p accepts");
    }

    #[test]
    fn red_hard_drops_above_max_th() {
        let red = RedConfig {
            min_th: 0.0,
            max_th: 2.0,
            max_p: 0.1,
            wq: 1.0,
        };
        let mut l = Link::new(LinkConfig {
            queue_packets: 100,
            queue_kind: QueueKind::Red(red),
            ..LinkConfig::default()
        });
        l.busy = true;
        for i in 0..3 {
            l.offer(pkt(i), 0.9, 0.99);
        }
        // avg >= 2 now: unconditional drop regardless of u_red.
        assert!(!l.offer(pkt(10), 0.9, 0.999));
    }

    #[test]
    fn red_average_updates_on_randomly_lost_arrivals() {
        // Regression: the random-loss process used to return before the RED
        // estimate was touched, biasing `red_avg` low under non-congestive
        // loss. Every arrival must update the average, lost or not.
        let red = RedConfig {
            min_th: 1.0,
            max_th: 50.0,
            max_p: 0.1,
            wq: 1.0,
        };
        let mut l = Link::new(LinkConfig {
            queue_packets: 100,
            queue_kind: QueueKind::Red(red),
            loss_rate: 1.0, // every offer is randomly lost
            ..LinkConfig::default()
        });
        l.queue.push_back(pkt(0));
        l.queue.push_back(pkt(1));
        l.queue.push_back(pkt(2));
        l.busy = true;
        assert!(!l.offer(pkt(10), 0.0, 0.99), "randomly lost");
        assert_eq!(l.stats.random_losses, 1);
        assert!(
            (l.red_avg - 2.0).abs() < 1e-12,
            "red_avg must track the 2 waiting packets, got {}",
            l.red_avg
        );
    }

    #[test]
    fn red_default_thresholds_scale_with_capacity() {
        let red = RedConfig::for_queue(100);
        assert_eq!(red.min_th, 25.0);
        assert_eq!(red.max_th, 75.0);
    }

    #[test]
    fn trace_schedule_rejects_degenerate_inputs() {
        use laqa_trace::LinkTracePoint;
        let p = |at, bandwidth| LinkTracePoint {
            at,
            bandwidth,
            delay: None,
            loss: None,
        };
        assert!(TraceSchedule::from_points(vec![], None).is_err(), "empty");
        assert!(
            TraceSchedule::from_points(vec![p(0.0, 1e5), p(0.0, 2e5)], None).is_err(),
            "non-increasing times"
        );
        assert!(
            TraceSchedule::from_points(vec![p(0.0, 0.0)], None).is_err(),
            "non-positive bandwidth"
        );
        assert!(
            TraceSchedule::from_points(vec![p(0.0, 1e5), p(5.0, 2e5)], Some(4.0)).is_err(),
            "period must cover the last point"
        );
        assert!(TraceSchedule::from_points(vec![p(0.0, 1e5), p(5.0, 2e5)], Some(6.0)).is_ok());
    }

    #[test]
    fn trace_sample_steps_and_wraps() {
        use laqa_trace::LinkTracePoint;
        let p = |at, bandwidth| LinkTracePoint {
            at,
            bandwidth,
            delay: None,
            loss: None,
        };
        let s = TraceSchedule::from_points(vec![p(1.0, 1e5), p(2.0, 5e4)], Some(4.0)).unwrap();
        // Before the first point the first point's value holds.
        assert_eq!(s.sample(0.0).bandwidth, 1e5);
        assert_eq!(s.sample(1.5).bandwidth, 1e5);
        assert_eq!(s.sample(2.0).bandwidth, 5e4);
        assert_eq!(s.sample(3.9).bandwidth, 5e4);
        // Wraps: t + period lands on the same step.
        assert_eq!(s.sample(4.0).bandwidth, s.sample(0.0).bandwidth);
        assert_eq!(s.sample(5.5).bandwidth, s.sample(1.5).bandwidth);
    }

    #[test]
    fn trace_state_applies_in_order_and_rewinds() {
        use laqa_trace::LinkTracePoint;
        let pts = vec![
            LinkTracePoint {
                at: 0.0,
                bandwidth: 1e5,
                delay: Some(0.02),
                loss: None,
            },
            LinkTracePoint {
                at: 1.0,
                bandwidth: 5e4,
                delay: None,
                loss: Some(0.01),
            },
        ];
        let s = TraceSchedule::from_points(pts, Some(2.0)).unwrap();
        let mut st = LinkTraceState::new(s);
        let mut cfg = LinkConfig::default();
        assert_eq!(st.next_change_at(), Some(0.0));
        assert!(st.apply_next(&mut cfg));
        assert_eq!(cfg.bandwidth, 1e5);
        assert_eq!(cfg.delay, 0.02);
        assert_eq!(st.next_change_at(), Some(1.0));
        assert!(st.apply_next(&mut cfg));
        assert_eq!(cfg.bandwidth, 5e4);
        // Sparse columns leave the previous value in place.
        assert_eq!(cfg.delay, 0.02);
        assert_eq!(cfg.loss_rate, 0.01);
        // Looping: the next cycle starts one period later.
        assert_eq!(st.next_change_at(), Some(2.0));
        st.rewind();
        assert_eq!(st.cursor(), 0);
        assert_eq!(st.next_change_at(), Some(0.0));
    }

    #[test]
    fn link_reset_discards_trace_state() {
        // Warm-pool contract: a recycled link shell must not carry the
        // previous session's schedule or mid-trace cursor
        // (crates/bench/tests/warm_trace.rs pins the end-to-end version).
        let mut l = Link::new(LinkConfig::default());
        l.set_trace(TraceSchedule::lte(7, 1e5, 10.0));
        let mut cfg = LinkConfig::default();
        l.trace.as_mut().unwrap().apply_next(&mut cfg);
        assert!(l.trace.as_ref().unwrap().cursor() > 0);
        l.reset(LinkConfig::default());
        assert!(l.trace.is_none(), "reset must clear trace-replay state");
    }
}
