//! Round-trip-time estimation (Jacobson/Karels, as used by RAP and TCP).
//!
//! RAP adjusts its rate once per smoothed RTT and derives its timeout from
//! the same estimator TCP uses: an exponentially weighted moving average of
//! RTT samples plus four mean deviations.


/// Jacobson/Karels RTT estimator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    /// True until the first sample seeds the estimator.
    seeded: bool,
    /// Lower bound on the returned RTO (seconds).
    min_rto: f64,
    /// Upper bound on the returned RTO (seconds).
    max_rto: f64,
}

impl RttEstimator {
    /// New estimator with an initial guess of `initial_rtt` seconds.
    pub fn new(initial_rtt: f64) -> Self {
        let initial = if initial_rtt.is_finite() && initial_rtt > 0.0 {
            initial_rtt
        } else {
            0.5
        };
        RttEstimator {
            srtt: initial,
            rttvar: initial / 2.0,
            seeded: false,
            min_rto: 0.2,
            max_rto: 60.0,
        }
    }

    /// Smoothed RTT (seconds).
    pub fn srtt(&self) -> f64 {
        self.srtt
    }

    /// RTT mean deviation (seconds).
    pub fn rttvar(&self) -> f64 {
        self.rttvar
    }

    /// Whether at least one sample has been absorbed.
    pub fn seeded(&self) -> bool {
        self.seeded
    }

    /// Retransmission/idle timeout: `srtt + 4·rttvar`, clamped.
    pub fn rto(&self) -> f64 {
        (self.srtt + 4.0 * self.rttvar).clamp(self.min_rto, self.max_rto)
    }

    /// Absorb an RTT sample (seconds). Non-finite or non-positive samples
    /// are ignored.
    pub fn sample(&mut self, rtt: f64) {
        if !(rtt.is_finite() && rtt > 0.0) {
            return;
        }
        if !self.seeded {
            self.srtt = rtt;
            self.rttvar = rtt / 2.0;
            self.seeded = true;
            return;
        }
        // RFC 6298 coefficients: alpha = 1/8, beta = 1/4.
        let err = rtt - self.srtt;
        self.srtt += err / 8.0;
        self.rttvar += (err.abs() - self.rttvar) / 4.0;
    }

    /// Double the variance term after a timeout (exponential RTO backoff is
    /// applied by the caller via repeated calls).
    pub fn on_timeout(&mut self) {
        self.rttvar = (self.rttvar * 2.0).min(self.max_rto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_directly() {
        let mut e = RttEstimator::new(0.5);
        e.sample(0.1);
        assert!((e.srtt() - 0.1).abs() < 1e-12);
        assert!((e.rttvar() - 0.05).abs() < 1e-12);
        assert!(e.seeded());
    }

    #[test]
    fn ewma_converges_to_constant_rtt() {
        let mut e = RttEstimator::new(1.0);
        for _ in 0..200 {
            e.sample(0.04);
        }
        assert!((e.srtt() - 0.04).abs() < 1e-6);
        assert!(e.rttvar() < 1e-3);
    }

    #[test]
    fn rto_clamped_to_min() {
        let mut e = RttEstimator::new(0.01);
        for _ in 0..100 {
            e.sample(0.01);
        }
        assert!((e.rto() - 0.2).abs() < 1e-12, "rto = {}", e.rto());
    }

    #[test]
    fn rto_grows_with_variance() {
        let mut e = RttEstimator::new(0.2);
        for i in 0..50 {
            e.sample(if i % 2 == 0 { 0.1 } else { 0.5 });
        }
        assert!(e.rto() > e.srtt());
        assert!(e.rttvar() > 0.05);
    }

    #[test]
    fn ignores_garbage_samples() {
        let mut e = RttEstimator::new(0.3);
        e.sample(f64::NAN);
        e.sample(-1.0);
        e.sample(0.0);
        assert!(!e.seeded());
        assert!((e.srtt() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn timeout_doubles_variance() {
        let mut e = RttEstimator::new(0.2);
        e.sample(0.2);
        let v = e.rttvar();
        e.on_timeout();
        assert!((e.rttvar() - 2.0 * v).abs() < 1e-12);
    }

    #[test]
    fn bad_initial_falls_back() {
        let e = RttEstimator::new(f64::NAN);
        assert!((e.srtt() - 0.5).abs() < 1e-12);
    }
}
