//! # laqa-rap — the Rate Adaptation Protocol
//!
//! A transport-agnostic implementation of RAP (Rejaie, Handley, Estrin),
//! the TCP-friendly, rate-based AIMD congestion-control scheme the quality
//! adaptation paper builds on. RAP paces packets with an inter-packet gap,
//! increases its rate by one packet per SRTT every SRTT, halves it on each
//! loss event (with cluster-loss suppression), and collapses on timeout —
//! producing the clean sawtooth of the paper's figure 1.
//!
//! Modules:
//!
//! * [`aimd`] — rate/IPG state and the AIMD update rules;
//! * [`rtt`] — Jacobson/Karels RTT estimation and RTO;
//! * [`history`] — transmission history and ACK-inferred loss detection;
//! * [`receiver`] — the receiver's reception state and redundant ACKs;
//! * [`sender`] — [`sender::RapSender`], the full sender state machine;
//! * [`finegrain`] — the optional delay-based fine-grain adaptation (the
//!   paper evaluates the variant without it; kept for ablation);
//! * [`window`] — an ACK-clocked (TCP-like) AIMD sender with the same
//!   event interface, for the paper's "other AIMD schemes" future work;
//! * [`controller`] — the [`controller::RateController`] trait: the exact
//!   surface the quality-adaptation layer consumes, so any of the senders
//!   here (and the [`bbr`]/[`nada`] controllers) can sit underneath it;
//! * [`bbr`] — a BBR-style delivery-rate-model sender (windowed max
//!   bandwidth filter, min-RTT filter, pacing-gain probe cycle);
//! * [`nada`] — a NADA-style delay-gradient sender (unified delay+loss
//!   congestion signal with a proportional rate update).
//!
//! The same state machines drive both the packet-level simulator
//! (`laqa-sim`) and the real tokio/UDP transport (`laqa-net`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod aimd;
pub mod bbr;
pub mod controller;
pub mod finegrain;
pub mod history;
pub mod nada;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod window;

pub use aimd::AimdState;
pub use bbr::{BbrConfig, BbrSender};
pub use controller::RateController;
pub use finegrain::FineGrain;
pub use history::{LostPacket, PacketRecord, TransmissionHistory};
pub use nada::{NadaConfig, NadaSender};
pub use receiver::{AckInfo, RapReceiverState};
pub use rtt::RttEstimator;
pub use sender::{BackoffCause, RapConfig, RapEvent, RapSender};
pub use window::{WindowConfig, WindowSender};
